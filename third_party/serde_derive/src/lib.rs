//! Offline-vendored `#[derive(Serialize)]`.
//!
//! The build environment has no crates.io access, so this derive is written
//! against `proc_macro` alone (no `syn`/`quote`): it hand-parses the item's
//! token stream and emits the impl as source text. It supports exactly the
//! shapes the workspace serializes — structs with named fields and enums
//! with unit variants — and fails with a clear message on anything else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`, rendering named-field structs as JSON
/// objects and unit-variant enums as JSON strings.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (kind, name, body) = parse_item(&tokens);
    let impl_src = match kind {
        ItemKind::Struct => struct_impl(&name, &named_fields(&body)),
        ItemKind::Enum => enum_impl(&name, &unit_variants(&body)),
    };
    impl_src
        .parse()
        .expect("serde_derive generated invalid Rust")
}

enum ItemKind {
    Struct,
    Enum,
}

/// Finds the item keyword, its name, and its `{ ... }` body, skipping
/// attributes (`#[...]`), doc comments, and visibility modifiers.
fn parse_item(tokens: &[TokenTree]) -> (ItemKind, String, Vec<TokenTree>) {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: `#` (+ optional `!`) + bracketed group.
                i += 1;
                if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '!') {
                    i += 1;
                }
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                let kind = match id.to_string().as_str() {
                    "struct" => ItemKind::Struct,
                    "enum" => ItemKind::Enum,
                    other => panic!("derive(Serialize): unsupported item `{other}`"),
                };
                let name = match &tokens[i + 1] {
                    TokenTree::Ident(n) => n.to_string(),
                    t => panic!("derive(Serialize): expected item name, got `{t}`"),
                };
                match &tokens[i + 2] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        return (kind, name, g.stream().into_iter().collect());
                    }
                    t => panic!(
                        "derive(Serialize): only braced items without generics are \
                         supported, got `{t}` after `{name}`"
                    ),
                }
            }
            t => panic!("derive(Serialize): unexpected token `{t}`"),
        }
    }
    panic!("derive(Serialize): no struct or enum found");
}

/// Splits a brace-group body on top-level commas. Angle brackets are
/// `Punct`s, not groups, so the splitter tracks `<`/`>` depth to keep the
/// comma of e.g. `BTreeMap<String, CacheReport>` inside its field.
fn split_on_commas(body: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut pieces = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                pieces.push(std::mem::take(&mut cur));
            }
            t => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

/// Strips leading attributes and visibility from one field/variant piece.
fn strip_attrs_and_vis(piece: &[TokenTree]) -> Vec<TokenTree> {
    let mut i = 0;
    while i < piece.len() {
        match &piece[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(piece.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    piece[i..].to_vec()
}

fn named_fields(body: &[TokenTree]) -> Vec<String> {
    split_on_commas(body)
        .iter()
        .map(|piece| {
            let rest = strip_attrs_and_vis(piece);
            match (rest.first(), rest.get(1)) {
                (Some(TokenTree::Ident(name)), Some(TokenTree::Punct(p)))
                    if p.as_char() == ':' =>
                {
                    name.to_string()
                }
                _ => panic!("derive(Serialize): only named struct fields are supported"),
            }
        })
        .collect()
}

fn unit_variants(body: &[TokenTree]) -> Vec<String> {
    split_on_commas(body)
        .iter()
        .map(|piece| {
            let rest = strip_attrs_and_vis(piece);
            match (rest.first(), rest.len()) {
                (Some(TokenTree::Ident(name)), 1) => name.to_string(),
                _ => panic!("derive(Serialize): only unit enum variants are supported"),
            }
        })
        .collect()
}

fn struct_impl(name: &str, fields: &[String]) -> String {
    let mut body = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "::serde::write_json_str(out, \"{f}\");\n\
             out.push(':');\n\
             ::serde::Serialize::serialize(&self.{f}, out);\n"
        ));
    }
    body.push_str("out.push('}');");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
}

fn enum_impl(name: &str, variants: &[String]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| format!("{name}::{v} => ::serde::write_json_str(out, \"{v}\"),\n"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, out: &mut ::std::string::String) {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}
