//! Offline-vendored subset of `serde_json`: [`to_string`] and
//! [`to_string_pretty`] over the vendored `serde::Serialize` trait.
//!
//! The vendored `Serialize` renders straight to JSON text, so this crate is
//! a thin shim that matches the upstream call signatures (including the
//! `Result` return, which is infallible here).

#![warn(missing_docs)]

use serde::Serialize;

/// A serialization error. The vendored encoder is infallible, so this type
/// is never constructed; it exists to keep upstream call sites compiling.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json error")
    }
}

impl std::error::Error for Error {}

/// Encodes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Encodes `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON. Operates on the already-escaped text, so it only
/// needs to track whether it is inside a string literal.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_encodes_compactly() {
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("x").unwrap(), "\"x\"");
    }

    #[test]
    fn pretty_indents_and_preserves_strings() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        // Braces inside strings are untouched.
        let s = to_string_pretty("{:x}").unwrap();
        assert_eq!(s, "\"{:x}\"");
    }
}
