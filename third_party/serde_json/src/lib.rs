//! Offline-vendored subset of `serde_json`: [`to_string`] /
//! [`to_string_pretty`] over the vendored `serde::Serialize` trait, plus a
//! dynamic [`Value`] with a [`from_str`] parser for reading reports and
//! trace lines back.
//!
//! The vendored `Serialize` renders straight to JSON text, so the encoding
//! half is a thin shim that matches the upstream call signatures
//! (including the `Result` return, which is infallible there).

#![warn(missing_docs)]

use std::collections::BTreeMap;

use serde::Serialize;

/// A serialization or parse error. Encoding is infallible; parsing reports
/// the byte offset and a short message.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn parse(offset: usize, msg: &str) -> Error {
        Error(format!("at byte {offset}: {msg}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Encodes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Encodes `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON. Operates on the already-escaped text, so it only
/// needs to track whether it is inside a string literal.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let newline = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    depth += 1;
                    newline(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                newline(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, depth);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document. Numbers are kept as `f64` (every value the
/// workspace writes — counters, ratios, nanoseconds — fits exactly or is
/// itself an `f64`; nanosecond counts stay exact up to 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order normalized).
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Object member by key ([`Value::Null`] when absent or not an object).
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Object(o) => o.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Parses a JSON document into a [`Value`]. Rejects trailing non-space
/// input, unterminated strings, and malformed escapes.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::parse(p.pos, "trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, what))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(self.pos, "invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::parse(self.pos, "expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::parse(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by any writer
                            // in the workspace; map lone surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::parse(self.pos, "unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse(self.pos, "invalid utf-8"))?
                        .chars()
                        .next()
                        .expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::parse(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_encodes_compactly() {
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string("x").unwrap(), "\"x\"");
    }

    #[test]
    fn pretty_indents_and_preserves_strings() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        let pretty = to_string_pretty(&m).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        // Braces inside strings are untouched.
        let s = to_string_pretty("{:x}").unwrap();
        assert_eq!(s, "\"{:x}\"");
    }

    #[test]
    fn parse_round_trips_what_the_encoder_writes() {
        let mut m = BTreeMap::new();
        m.insert("xs".to_string(), vec![1u32, 2, 3]);
        let text = to_string_pretty(&m).unwrap();
        let v = from_str(&text).unwrap();
        assert_eq!(v["xs"][0], 1u64);
        assert_eq!(v["xs"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn parse_handles_every_value_shape() {
        let v = from_str(
            r#"{"b":true,"n":null,"f":-2.5e2,"s":"a\"b\nA","o":{"k":7},"a":[]}"#,
        )
        .unwrap();
        assert_eq!(v["b"], true);
        assert_eq!(v["n"], Value::Null);
        assert_eq!(v["f"], -250.0);
        assert_eq!(v["s"], "a\"b\nA");
        assert_eq!(v["o"]["k"], 7u64);
        assert!(v["a"].as_array().unwrap().is_empty());
        // Missing keys index to Null instead of panicking.
        assert_eq!(v["absent"]["deeper"], Value::Null);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["{", "[1,", "\"open", "{\"k\" 1}", "tru", "1 2", "{'k':1}"] {
            assert!(from_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn numbers_classify_as_u64_only_when_integral() {
        let v = from_str("[3, 3.5, -1]").unwrap();
        assert_eq!(v[0].as_u64(), Some(3));
        assert_eq!(v[1].as_u64(), None);
        assert_eq!(v[1].as_f64(), Some(3.5));
        assert_eq!(v[2].as_u64(), None);
    }
}
