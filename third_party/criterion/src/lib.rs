//! Offline-vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the surface its benches use: [`Criterion`] with the builder knobs
//! (`sample_size`, `measurement_time`, `warm_up_time`), `bench_function`,
//! benchmark groups with `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is real
//! wall-clock timing: a calibration phase sizes the per-sample iteration
//! count, then `sample_size` samples are collected and summarized as
//! mean / median / min per iteration.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Times one benchmark body over a fixed number of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One finished benchmark: its id and per-iteration nanosecond stats.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Full benchmark id (`group/param` for grouped benches).
    pub id: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
}

/// The benchmark harness configuration and result sink.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the calibration budget before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        self.run_one(id.to_string(), f);
        self
    }

    /// Opens a named group; ids inside become `name/param`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All summaries collected so far, in execution order.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        // Calibration: double the batch size until one batch costs at least
        // ~1/5 of the warm-up budget, so sample batches are long enough to
        // swamp timer overhead.
        let mut iters: u64 = 1;
        let warm_start = Instant::now();
        let per_iter_secs = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if warm_start.elapsed() >= self.warm_up_time
                || b.elapsed * 5 >= self.warm_up_time
                || iters >= 1 << 40
            {
                break (b.elapsed.as_secs_f64() / iters as f64).max(1e-10);
            }
            iters *= 2;
        };

        // Size the per-sample batch to fill the measurement budget.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let sample_iters = (budget / per_iter_secs).clamp(1.0, 1e12) as u64;

        let mut samples_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters: sample_iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / sample_iters as f64
            })
            .collect();
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));

        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median_ns = samples_ns[samples_ns.len() / 2];
        let min_ns = samples_ns[0];
        println!(
            "{id:<40} time: [{} {} {}]",
            format_ns(min_ns),
            format_ns(mean_ns),
            format_ns(samples_ns[samples_ns.len() - 1]),
        );
        self.summaries.push(Summary {
            id,
            mean_ns,
            median_ns,
            min_ns,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A parameterized benchmark id inside a group.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// An id labelled by `parameter`'s `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            param: format!("{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input` under `name/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.param);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
    }

    #[test]
    fn bench_function_records_a_summary() {
        let mut c = quick();
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let s = &c.summaries()[0];
        assert_eq!(s.id, "spin");
        assert!(s.mean_ns > 0.0);
        assert!(s.min_ns <= s.mean_ns * 1.001);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = quick();
        let mut g = c.benchmark_group("g");
        for n in [1u64, 4] {
            g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n * 50).sum::<u64>())
            });
        }
        g.finish();
        let ids: Vec<&str> = c.summaries().iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["g/1", "g/4"]);
    }
}
