//! Offline-vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the exact surface it uses: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). Sampling algorithms follow
//! the upstream designs (53-bit floats, Lemire-style bounded integers) so
//! statistical behaviour matches what callers expect from `rand`, though
//! streams are not bit-compatible with the upstream crate.

#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenience constructor shape as upstream `rand`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), as upstream does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased bounded `u64` via Lemire's widening-multiply rejection method.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::sample_standard(rng)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws one uniform value from `range`.
    fn gen_range<T, Rge>(&mut self, range: Rge) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore, SampleUniform};

    /// Random operations on slices: in-place shuffles and uniform picks.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_below(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for trait-level tests.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift(0x1234_5678_9ABC_DEF1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(3..=7);
            assert!((3..=7).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = XorShift(99);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = XorShift(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
