//! Offline-vendored [`ChaCha8Rng`]: the real ChaCha stream cipher with 8
//! rounds, driven as a deterministic random number generator.
//!
//! The workspace seeds every stochastic component from explicit `u64`s, so
//! all that matters is that the stream is high-quality and identical across
//! runs and platforms; this implementation follows RFC 7539's state layout
//! (constants, 256-bit key, 64-bit block counter) with the round count
//! dropped to 8, as in `rand_chacha`.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 and stream words of the initial state.
    key: [u32; 8],
    /// 64-bit block counter (words 12..14 of the state).
    counter: u64,
    /// Buffered output of the current block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` forces a refill.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonals.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, i) in state.iter_mut().zip(initial) {
            *o = o.wrapping_add(i);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.next_u64() != c.next_u64());
        assert!(differs);
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_reference() {
        // ChaCha8 keystream for an all-zero key/nonce/counter starts with
        // bytes 3e 00 ef 2f 89 5f 40 d6 (djb reference implementation),
        // i.e. little-endian words 0x2fef003e, 0xd6405f89.
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0x2fef_003e);
        assert_eq!(rng.next_u32(), 0xd640_5f89);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64 000 bits, expect ~32 000 set.
        assert!((31_000..33_000).contains(&ones), "ones {ones}");
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v: f64 = rng.gen();
        assert!((0.0..1.0).contains(&v));
        let k = rng.gen_range(0..10usize);
        assert!(k < 10);
    }
}
