//! Offline-vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of serde it uses: a [`Serialize`] trait that renders values
//! straight to JSON text, a `#[derive(Serialize)]` macro (re-exported from
//! the companion `serde_derive` crate), and impls for the std types the
//! experiment results contain. `serde_json::to_string` sits on top.

#![warn(missing_docs)]

// The derive macro emits `impl ::serde::Serialize`, so give this crate its
// own name for the in-crate derive test below.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A type that can render itself as JSON text.
///
/// This is a direct-to-JSON simplification of serde's data model: the
/// workspace only ever serializes results to JSON, so the intermediate
/// `Serializer` abstraction is unnecessary.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize(&self, out: &mut String);
}

/// Appends `s` to `out` as a JSON string literal with escaping.
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite float; non-finite values become `null` (as serde_json).
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        write_f64(out, *self);
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut String) {
        write_f64(out, *self as f64);
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        write_json_str(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(out, k.as_ref());
            out.push(':');
            v.serialize(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.serialize(&mut s);
        s
    }

    #[test]
    fn primitives_render_as_json() {
        assert_eq!(json(&42u64), "42");
        assert_eq!(json(&-3i64), "-3");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&0.5f64), "0.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers_render_as_json() {
        assert_eq!(json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(1u32)), "1");
        assert_eq!(json(&None::<u32>), "null");
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(json(&m), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn derive_handles_structs_and_unit_enums() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            y: u32,
        }

        #[derive(Serialize)]
        enum Tag {
            #[allow(dead_code)]
            Alpha,
            Beta,
        }

        assert_eq!(json(&Point { x: 1.5, y: 2 }), "{\"x\":1.5,\"y\":2}");
        assert_eq!(json(&Tag::Beta), "\"Beta\"");
    }
}
