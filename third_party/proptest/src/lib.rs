//! Offline-vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the property-testing surface its tests use: the [`proptest!`] runner
//! macro, `prop_assert!`/`prop_assert_eq!`, range/tuple/`Just`/oneof/vec
//! strategies with `prop_map` and `boxed`, and a deterministic per-test
//! RNG. There is no shrinking: a failing case panics with the generated
//! inputs printed, which is enough to reproduce (generation is
//! deterministic per test name).

#![warn(missing_docs)]

pub mod test_runner {
    //! The per-test configuration, error type, and deterministic RNG.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (produced by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The RNG driving generation: deterministic per test name, so failures
    /// reproduce run-to-run without recording a seed.
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// An RNG seeded from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy (the result is cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T: Debug>(Rc<dyn Strategy<Value = T>>);

    impl<T: Debug> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Picks uniformly among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T: Debug> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + Debug {
        /// The strategy `any` returns.
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A` — e.g. `any::<bool>()`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Uniform `bool` (the strategy behind `any::<bool>()`).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The result of [`vec`].
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-imported surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let a = &$a;
        let b = &$b;
        $crate::prop_assert!(a == b, "assertion failed: `{:?} == {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = &$a;
        let b = &$b;
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// A strategy choosing uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs its body over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs up front: the body may consume them.
                let inputs = format!("{:#?}", ($(&$arg,)+));
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn digit() -> impl Strategy<Value = u8> {
        0u8..10
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn maps_unions_and_vecs_compose(
            v in prop::collection::vec(
                prop_oneof![
                    digit().prop_map(|d| d as u32),
                    Just(99u32),
                    (0u8..3, 10u32..20).prop_map(|(a, b)| a as u32 + b),
                ],
                1..8,
            ),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for x in &v {
                prop_assert!(*x < 10 || *x == 99 || (10..23).contains(x));
            }
            // Tautology on purpose: exercises prop_assert_eq! on bools.
            #[allow(clippy::overly_complex_bool_expr)]
            {
                prop_assert_eq!(flag || !flag, true);
            }
        }

        #[test]
        fn boxed_strategies_clone(s in make_recursive(2)) {
            prop_assert!(!s.is_empty());
        }
    }

    fn make_recursive(depth: u32) -> BoxedStrategy<String> {
        if depth == 0 {
            Just("x".to_string()).boxed()
        } else {
            let sub = make_recursive(depth - 1);
            (sub.clone(), sub)
                .prop_map(|(a, b)| format!("({a}{b})"))
                .boxed()
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 3..4);
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
