//! Cross-crate integration: the full front-end → optimizer → obfuscator →
//! embedding pipeline on dataset programs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yali_core::Transformer;
use yali_embed::EmbeddingKind;
use yali_ir::verify_module;

#[test]
fn every_problem_flows_through_the_whole_pipeline() {
    // One author per 8th problem keeps this under a minute while touching
    // every corner of the template corpus.
    for pid in (0..yali_dataset::NUM_PROBLEMS).step_by(8) {
        let program = yali_dataset::solution(pid, 0xF00D + pid as u64);
        let module = yali_minic::lower(&program);
        verify_module(&module).unwrap_or_else(|e| panic!("problem {pid}: {e}"));

        // Optimize at every level.
        for level in yali_opt::OptLevel::ALL {
            let m = yali_opt::optimized(&module, level);
            verify_module(&m).unwrap_or_else(|e| panic!("problem {pid} {level}: {e}"));
        }
        // Obfuscate with every O-LLVM pass.
        for pass in yali_obf::IrObf::ALL {
            let mut m = module.clone();
            let mut rng = ChaCha8Rng::seed_from_u64(pid as u64);
            pass.apply(&mut m, &mut rng);
            verify_module(&m).unwrap_or_else(|e| panic!("problem {pid} {pass}: {e}"));
        }
        // Embed every way.
        for kind in EmbeddingKind::ALL {
            match kind.embed(&module) {
                yali_embed::Embedding::Vector(v) => assert!(!v.is_empty()),
                yali_embed::Embedding::Graph(g) => assert!(g.num_nodes() > 0),
            }
        }
    }
}

#[test]
fn obfuscate_then_optimize_round_trips_through_the_verifier() {
    // The Game-3 path: ollvm first, -O3 after, still valid IR.
    for pid in [2usize, 30, 55, 80] {
        let program = yali_dataset::solution(pid, 42);
        let mut m = yali_minic::lower(&program);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        yali_obf::ollvm(&mut m, &mut rng);
        yali_opt::optimize(&mut m, yali_opt::OptLevel::O3);
        verify_module(&m).unwrap_or_else(|e| panic!("problem {pid}: {e}"));
    }
}

#[test]
fn transformer_enum_covers_ir_text_round_trip() {
    // Printed IR of transformed programs re-parses to identical text.
    let program = yali_dataset::solution(7, 5);
    for t in Transformer::EVADERS {
        let m = t.apply(&program, 77);
        let text = yali_ir::print_module(&m);
        let again = yali_ir::parse_module(&text)
            .unwrap_or_else(|e| panic!("{t}: reparse failed: {e}"));
        assert_eq!(text, yali_ir::print_module(&again), "{t} round trip");
    }
}
