//! End-to-end game dynamics: the paper's qualitative findings on a small
//! corpus, exercised through the public yali-core API.

use yali_core::{play, ClassifierSpec, Corpus, Game, GameConfig, Transformer};
use yali_ml::ModelKind;

fn corpus() -> Corpus {
    Corpus::poj(5, 10, 1337)
}

#[test]
fn game0_all_models_beat_chance() {
    let corpus = corpus();
    for model in ModelKind::ALL {
        let cfg = GameConfig::game0(ClassifierSpec::histogram(model), 3);
        let r = play(&corpus, &cfg);
        assert!(
            r.accuracy > 0.2,
            "{model}: accuracy {} not above chance",
            r.accuracy
        );
    }
}

#[test]
fn knowledge_of_the_obfuscator_restores_accuracy() {
    // The paper's Game-2 headline: "knowledge of the obfuscation approach
    // is enough to give the classifier power to resist evasion".
    let corpus = corpus();
    let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 5);
    let evader = Transformer::Ir(yali_obf::IrObf::Fla);
    let g1 = play(&corpus, &base.clone().with_game(Game::Game1, evader));
    let g2 = play(&corpus, &base.clone().with_game(Game::Game2, evader));
    assert!(
        g2.accuracy >= g1.accuracy,
        "game2 ({}) below game1 ({})",
        g2.accuracy,
        g1.accuracy
    );
}

#[test]
fn drlsg_is_weaker_than_ollvm_and_dies_under_normalization() {
    // Figure 8 + Figure 11: drlsg (naive source obfuscation) is the
    // weaker evader, and optimization-based normalization (Game 3)
    // removes its effect entirely — "the SSA conversion reverts all the
    // effects of it". (At Game 1 our drlsg retains some bite because our
    // -O0 extraction runs no passes at all; see EXPERIMENTS.md.)
    // Evasion strength is a statistical claim: on a 10-sample challenge
    // set a single seed flips it easily, so compare means over several
    // seeds, and allow half-a-sample of slack in the drlsg-vs-ollvm
    // direction — at this scale the two evaders are nearly tied, and the
    // qualitative finding under test is that drlsg is *not stronger*.
    let corpus = corpus();
    let drlsg = Transformer::Source(yali_core::SourceStrategy::Drlsg);
    let ollvm = Transformer::Ir(yali_obf::IrObf::Ollvm);
    let seeds: Vec<u64> = (1..=8).collect();
    let (mut a_drlsg, mut a_ollvm, mut a_g3) = (0.0, 0.0, 0.0);
    for &seed in &seeds {
        let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), seed);
        a_drlsg += play(&corpus, &base.clone().with_game(Game::Game1, drlsg)).accuracy;
        a_ollvm += play(&corpus, &base.clone().with_game(Game::Game1, ollvm)).accuracy;
        a_g3 += play(&corpus, &base.clone().with_game(Game::Game3, drlsg)).accuracy;
    }
    let n = seeds.len() as f64;
    let (a_drlsg, a_ollvm, a_g3) = (a_drlsg / n, a_ollvm / n, a_g3 / n);
    assert!(
        a_drlsg + 0.05 >= a_ollvm,
        "drlsg (mean {a_drlsg}) evades substantially more than ollvm (mean {a_ollvm})"
    );
    assert!(
        a_g3 >= a_drlsg,
        "normalization should recover drlsg: mean {a_g3} vs {a_drlsg}"
    );
}

#[test]
fn optimization_is_an_effective_evader() {
    // RQ3: a classifier trained on -O0 code suffers against -O3 output.
    let corpus = corpus();
    let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Knn), 11);
    let g0 = play(&corpus, &base);
    let o3 = play(
        &corpus,
        &base
            .clone()
            .with_game(Game::Game1, Transformer::Opt(yali_opt::OptLevel::O3)),
    );
    assert!(
        o3.accuracy <= g0.accuracy,
        "O3 evasion failed: {} vs {}",
        o3.accuracy,
        g0.accuracy
    );
}

#[test]
fn game3_normalization_recovers_source_obfuscation() {
    // RQ4: -O3 normalization nullifies Zhang-style source transforms.
    let corpus = corpus();
    let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 13);
    let evader = Transformer::Source(yali_core::SourceStrategy::Rs);
    let g3 = play(&corpus, &base.clone().with_game(Game::Game3, evader));
    assert!(
        g3.accuracy > 0.4,
        "normalization failed to recover rs evasion: {}",
        g3.accuracy
    );
}

#[test]
fn results_serialize_for_the_harness() {
    let corpus = corpus();
    let cfg = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Lr), 2);
    let r = play(&corpus, &cfg);
    let json = serde_json::to_string(&r).expect("GameResult serializes");
    assert!(json.contains("accuracy"));
}
