//! Property-style semantic-preservation checks across the whole arena:
//! every transformer must leave every program's observable behaviour
//! untouched (Definition 2.4 requires evaders to preserve semantics).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yali_core::Transformer;
use yali_ir::interp::{run, ExecConfig, Val};

fn outputs(m: &yali_ir::Module, inputs: &[Val]) -> Vec<Val> {
    let cfg = ExecConfig {
        fuel: 30_000_000,
        ..Default::default()
    };
    run(m, "main", &[], inputs, &cfg)
        .unwrap_or_else(|e| panic!("execution failed: {e}"))
        .output
}

#[test]
fn all_transformers_preserve_program_behaviour() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFEED);
    let specs = yali_dataset::problems();
    // A spread of problems across all four template families.
    for pid in [1usize, 9, 20, 28, 40, 53, 61, 79, 90, 101] {
        let spec = &specs[pid];
        let program = spec.author_solution(pid as u64 * 3 + 1);
        let base = yali_minic::lower(&program);
        let inputs = spec.inputs.sample(&mut rng);
        let reference = outputs(&base, &inputs);
        for t in Transformer::EVADERS {
            let m = t.apply(&program, rng.gen());
            assert_eq!(
                outputs(&m, &inputs),
                reference,
                "{t} changed the behaviour of {} on {inputs:?}",
                spec.name
            );
        }
    }
}

#[test]
fn game3_normalization_preserves_behaviour_after_obfuscation() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCAFE);
    let specs = yali_dataset::problems();
    for pid in [4usize, 33, 66, 95] {
        let spec = &specs[pid];
        let program = spec.author_solution(17);
        let inputs = spec.inputs.sample(&mut rng);
        let reference = outputs(&yali_minic::lower(&program), &inputs);
        for evader in [
            Transformer::Ir(yali_obf::IrObf::Bcf),
            Transformer::Ir(yali_obf::IrObf::Fla),
            Transformer::Source(yali_core::SourceStrategy::Rs),
        ] {
            let mut m = evader.apply(&program, 55);
            yali_opt::optimize(&mut m, yali_opt::OptLevel::O3);
            assert_eq!(
                outputs(&m, &inputs),
                reference,
                "{evader}+O3 changed {} on {inputs:?}",
                spec.name
            );
        }
    }
}

#[test]
fn interpreter_cost_reflects_the_transformation_direction() {
    // Optimization lowers cost; obfuscation raises it — on real corpus
    // programs, not just micro-tests.
    let mut rng = ChaCha8Rng::seed_from_u64(0xC057);
    let specs = yali_dataset::problems();
    let mut o3_wins = 0;
    let mut ollvm_slows = 0;
    let mut n = 0;
    for pid in [10usize, 30, 60, 85] {
        let spec = &specs[pid];
        let program = spec.variant(0);
        let inputs = spec.inputs.sample(&mut rng);
        let cfg = ExecConfig {
            fuel: 30_000_000,
            ..Default::default()
        };
        let base = run(&yali_minic::lower(&program), "main", &[], &inputs, &cfg).unwrap();
        let fast = run(
            &Transformer::Opt(yali_opt::OptLevel::O3).apply(&program, 1),
            "main",
            &[],
            &inputs,
            &cfg,
        )
        .unwrap();
        let slow = run(
            &Transformer::Ir(yali_obf::IrObf::Ollvm).apply(&program, 1),
            "main",
            &[],
            &inputs,
            &cfg,
        )
        .unwrap();
        if fast.cost < base.cost {
            o3_wins += 1;
        }
        if slow.cost > base.cost {
            ollvm_slows += 1;
        }
        n += 1;
    }
    assert!(o3_wins >= n - 1, "O3 sped up only {o3_wins}/{n}");
    // Sampled inputs can make one program's hot path trivial (e.g. a loop
    // bound of zero), in which case obfuscation overhead vanishes; allow
    // the same one-miss slack the O3 direction gets.
    assert!(ollvm_slows >= n - 1, "ollvm slowed only {ollvm_slows}/{n}");
}
