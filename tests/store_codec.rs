//! Property tests for the artifact store's segment codec.
//!
//! The store's crash-safety story rests on the frame format: every record
//! is independently checksummed, so damage — a flipped byte from a bad
//! disk, a truncated tail from a killed writer — must be rejected with an
//! offset-bearing error while every intact record stays readable. These
//! proptests drive that contract with arbitrary record sets and arbitrary
//! damage locations.

use proptest::prelude::*;

use yali_core::store::{encode_record, encode_segment_header, scan_records, Namespace};

fn ns_strategy() -> impl Strategy<Value = Namespace> {
    prop_oneof![
        Just(Namespace::Embed),
        Just(Namespace::Transform),
        Just(Namespace::Model),
    ]
}

fn records_strategy() -> impl Strategy<Value = Vec<(Namespace, u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            ns_strategy(),
            0u64..u64::MAX,
            proptest::collection::vec(0u8..=255, 0..200),
        ),
        1..12,
    )
}

fn build_segment(records: &[(Namespace, u64, Vec<u8>)]) -> (Vec<u8>, Vec<usize>) {
    let mut seg = encode_segment_header();
    let mut frame_starts = Vec::with_capacity(records.len());
    for (ns, key, payload) in records {
        frame_starts.push(seg.len());
        seg.extend_from_slice(&encode_record(*ns, *key, payload));
    }
    (seg, frame_starts)
}

/// Maps a [0, 1) fraction onto a body offset of `seg` (past the header).
fn body_offset(seg_len: usize, frac: f64) -> usize {
    let body_start = encode_segment_header().len();
    let body_len = seg_len - body_start;
    body_start + ((body_len as f64 * frac) as usize).min(body_len - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary records written to a segment scan back verbatim, in
    /// order, with no errors.
    #[test]
    fn round_trips_arbitrary_records(records in records_strategy()) {
        let (seg, _) = build_segment(&records);
        let (scanned, errors) = scan_records(&seg);
        prop_assert!(errors.is_empty(), "clean segment scanned errors: {:?}", errors);
        prop_assert_eq!(scanned.len(), records.len());
        for (s, (ns, key, payload)) in scanned.iter().zip(&records) {
            prop_assert_eq!(s.ns, *ns);
            prop_assert_eq!(s.key, *key);
            prop_assert_eq!(
                &seg[s.payload_start..s.payload_start + s.payload_len],
                &payload[..]
            );
        }
    }

    /// Flipping one byte anywhere past the header damages at most the
    /// record it landed in: the scanner reports an offset-bearing error
    /// and every *other* record is recovered bit-exact.
    #[test]
    fn corruption_is_contained_to_one_record(
        records in records_strategy(),
        flip_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let (mut seg, frame_starts) = build_segment(&records);
        let pos = body_offset(seg.len(), flip_frac);
        seg[pos] ^= 1 << flip_bit;

        // Which record did the flip land in?
        let damaged_idx = frame_starts.iter().rposition(|&s| s <= pos).unwrap();

        let (scanned, errors) = scan_records(&seg);
        prop_assert!(!errors.is_empty(), "a flipped byte must be detected");
        for e in &errors {
            let rendered = e.to_string();
            prop_assert!(
                rendered.contains("offset"),
                "error must carry its offset: {}",
                rendered
            );
        }
        // Every record other than the damaged one must be recovered
        // exactly: a header flip at worst sends the scanner resyncing on
        // the next record magic, and the per-record checksums reject any
        // misparse along the way.
        for (i, (ns, key, payload)) in records.iter().enumerate() {
            if i == damaged_idx {
                continue;
            }
            let found = scanned.iter().any(|s| {
                s.ns == *ns
                    && s.key == *key
                    && seg[s.payload_start..s.payload_start + s.payload_len] == payload[..]
            });
            prop_assert!(
                found,
                "intact record {} lost to damage in record {}",
                i,
                damaged_idx
            );
        }
    }

    /// Truncating the segment at any point — a writer killed mid-append —
    /// keeps every fully committed record before the cut readable and
    /// loses only the torn one.
    #[test]
    fn truncation_keeps_the_committed_prefix(
        records in records_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (seg, frame_starts) = build_segment(&records);
        // Cut strictly inside the body so at least one byte is torn off.
        let cut_at = body_offset(seg.len(), cut_frac);
        let torn = &seg[..cut_at];

        let n_committed = frame_starts
            .iter()
            .enumerate()
            .filter(|&(i, &s)| {
                let end = frame_starts.get(i + 1).copied().unwrap_or(seg.len());
                let _ = s;
                end <= cut_at
            })
            .count();

        let (scanned, errors) = scan_records(torn);
        prop_assert_eq!(
            scanned.len(),
            n_committed,
            "exactly the fully committed prefix survives a torn tail"
        );
        for (s, (ns, key, payload)) in scanned.iter().zip(&records) {
            prop_assert_eq!(s.ns, *ns);
            prop_assert_eq!(s.key, *key);
            prop_assert_eq!(
                &torn[s.payload_start..s.payload_start + s.payload_len],
                &payload[..]
            );
        }
        if n_committed < records.len() {
            prop_assert!(!errors.is_empty(), "a torn record must be reported");
        }
    }
}
