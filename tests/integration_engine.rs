//! Engine determinism: a fixed-seed game must produce byte-identical
//! results at every thread count, and with cold or warm caches. This is
//! the contract that lets the experiment engine parallelize and cache
//! without perturbing any figure.

use proptest::prelude::*;
use yali_core::{engine, play, ClassifierSpec, Corpus, Game, GameConfig, Transformer};
use yali_ml::ModelKind;

// YALI_THREADS and the yali-obs enabled/trace state are process-global;
// the tests that touch either serialize here so neither can observe the
// other mid-flip (an in-flight game would otherwise write span opens into
// a trace that detaches before the matching closes).
static GLOBAL_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn play_once(seed: u64, game: Game) -> String {
    let corpus = Corpus::poj(3, 8, seed);
    // Rotate models so the RNG-seeded (rf), deterministic (knn), and
    // gradient-trained (mlp — the data-parallel minibatch path, and a
    // model-store round trip through serialized weights) trainers are all
    // exercised.
    let model = match seed % 3 {
        0 => ModelKind::Rf,
        1 => ModelKind::Knn,
        _ => ModelKind::Mlp,
    };
    let cfg = GameConfig::game0(ClassifierSpec::histogram(model), seed)
        .with_game(game, Transformer::Ir(yali_obf::IrObf::Ollvm));
    format!("{:?}", play(&corpus, &cfg))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    // All thread-count manipulation lives in this single test function so
    // no concurrently running test can observe a half-set YALI_THREADS.
    #[test]
    fn fixed_seed_games_are_identical_across_threads_and_caches(
        seed in 0u64..64,
        game_idx in 0usize..4,
    ) {
        let game = Game::ALL[game_idx];
        let _lock = GLOBAL_STATE.lock().unwrap();
        let run = |threads: &str, cold: bool| {
            std::env::set_var("YALI_THREADS", threads);
            if cold {
                engine::clear_caches();
            }
            let out = play_once(seed, game);
            std::env::remove_var("YALI_THREADS");
            out
        };
        let serial_cold = run("1", true);
        let parallel_cold = run("8", true);
        prop_assert_eq!(&serial_cold, &parallel_cold, "1 vs 8 threads, cold caches");
        let parallel_warm = run("8", false);
        prop_assert_eq!(&serial_cold, &parallel_warm, "cold vs warm caches");
        let serial_warm = run("1", false);
        prop_assert_eq!(&serial_cold, &serial_warm, "serial replay on warm caches");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    // The observability contract: flipping YALI_OBS/YALI_TRACE on must not
    // change a single byte of any result — instrumentation only times and
    // counts, it never reschedules work. Uses the programmatic overrides
    // (set_enabled/set_trace_path) so this test cannot race other tests on
    // process-global environment variables.
    #[test]
    fn observability_never_perturbs_results(
        seed in 0u64..32,
        game_idx in 0usize..4,
    ) {
        let game = Game::ALL[game_idx];
        let _lock = GLOBAL_STATE.lock().unwrap();
        yali_obs::set_enabled(false);
        let plain = play_once(seed, game);

        let trace_path = std::env::temp_dir().join(format!(
            "yali_trace_determinism_{seed}_{game_idx}.jsonl"
        ));
        let trace_path = trace_path.to_str().unwrap().to_string();
        yali_obs::set_enabled(true);
        yali_obs::set_trace_path(Some(&trace_path));
        let observed = play_once(seed, game);
        yali_obs::set_trace_path(None);
        yali_obs::set_enabled(false);

        prop_assert_eq!(&plain, &observed, "YALI_OBS=1 + trace changed a result");

        // The trace itself must be sane: non-empty, one JSON object per
        // line, with matching span open/close counts.
        let text = std::fs::read_to_string(&trace_path).expect("trace written");
        let _ = std::fs::remove_file(&trace_path);
        let (mut opens, mut closes) = (0usize, 0usize);
        for line in text.lines() {
            let v = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("bad trace line {line:?}: {e}"));
            match v["ev"].as_str() {
                Some("open") => opens += 1,
                Some("close") => closes += 1,
                _ => {}
            }
        }
        prop_assert!(opens > 0, "an instrumented game emitted no spans");
        prop_assert_eq!(opens, closes, "unbalanced span events");
    }
}

#[test]
fn par_map_with_matches_serial_on_real_embeddings() {
    // The same transform + embed pipeline, explicitly at several thread
    // counts via par_map_with (no env involved, safe to run in parallel
    // with other tests).
    let corpus = Corpus::poj(2, 6, 21);
    let refs: Vec<&yali_core::Sample> = corpus.samples.iter().collect();
    let modules = yali_core::transform_all(&refs, Transformer::None, 3);
    let serial: Vec<String> = engine::par_map_with(1, &modules, |_, m| {
        format!("{:?}", engine::embed_cached(m, yali_embed::EmbeddingKind::Ir2Vec))
    });
    for threads in [2, 4, 9] {
        let par: Vec<String> = engine::par_map_with(threads, &modules, |_, m| {
            format!("{:?}", engine::embed_cached(m, yali_embed::EmbeddingKind::Ir2Vec))
        });
        assert_eq!(serial, par, "{threads} threads");
    }
}
