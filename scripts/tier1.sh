#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a warning-free
# clippy pass over every target (benches and tests included).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# The ml suite again with SIMD dispatch forced off: every GEMM consumer
# must be green on the blocked scalar fallback too (the bit-oracle
# proptests then exercise scalar-vs-scalar, which is cheap).
YALI_SIMD=0 cargo test -q -p yali-ml

# The ml + core suites again with the artifact store live at a tempdir:
# the read-through layer must be invisible to every test that passed
# without it (the plain `cargo test` above already covers YALI_STORE
# unset).
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
YALI_STORE="$store_dir/artifacts" cargo test -q -p yali-ml -p yali-core

# The profiler's golden-fixture round trip: parse the committed trace,
# re-export it, demand a byte-identical Chrome file. Catches any drift
# in the trace schema, the parser, or the exporter.
target/release/yali-prof selfcheck

# Optional benchmark smoke: YALI_SMOKE=1 scripts/tier1.sh also runs the
# throughput + training benches and sanity-checks their JSON reports.
if [ "${YALI_SMOKE:-0}" = "1" ]; then
  scripts/bench.sh --smoke
fi
