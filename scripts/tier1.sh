#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a warning-free
# clippy pass over every target (benches and tests included).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
