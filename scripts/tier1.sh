#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, a warning-free
# clippy pass over every target (benches and tests included), and a
# round-trip smoke test of the yali-serve daemon.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

# The ml suite again with SIMD dispatch forced off: every GEMM consumer
# must be green on the blocked scalar fallback too (the bit-oracle
# proptests then exercise scalar-vs-scalar, which is cheap).
YALI_SIMD=0 cargo test -q -p yali-ml

# The ml + core suites again with the artifact store live at a tempdir:
# the read-through layer must be invisible to every test that passed
# without it (the plain `cargo test` above already covers YALI_STORE
# unset).
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
YALI_STORE="$store_dir/artifacts" cargo test -q -p yali-ml -p yali-core

# The profiler's golden-fixture round trip: parse the committed trace,
# re-export it, demand a byte-identical Chrome file. Catches any drift
# in the trace schema, the parser, or the exporter.
target/release/yali-prof selfcheck

# The multi-process stitcher's golden fixture: merge the two committed
# shard captures and demand a byte-identical Chrome file. Catches drift
# in the preamble clock handshake, lane remapping, or the merged export.
merged_out="$(mktemp -u).json"
target/release/yali-prof merge \
  crates/prof/fixtures/golden_shard0.jsonl \
  crates/prof/fixtures/golden_shard1.jsonl \
  -o "$merged_out" >/dev/null
cmp "$merged_out" crates/prof/fixtures/golden_merged_chrome.json \
  || { echo "yali-prof merge drifted from the golden fixture" >&2; exit 1; }
rm -f "$merged_out"

# The serving smoke test: boot the daemon on an ephemeral port with a
# tiny corpus, round-trip a liveness probe, a classification, and an
# anti-virus scan through the CLI client, then shut it down gracefully.
# Every client call runs under `timeout`, so a hung daemon fails the
# script instead of wedging it.
serve_bin=target/release/yali-serve
serve_log="$(mktemp)"
"$serve_bin" serve --addr 127.0.0.1:0 --models lr --classes 4 --per-class 6 \
  >"$serve_log" 2>&1 &
serve_pid=$!
cleanup_serve() {
  kill "$serve_pid" 2>/dev/null || true
  rm -f "$serve_log"
}
trap 'cleanup_serve; rm -rf "$store_dir"' EXIT
serve_addr=""
for _ in $(seq 1 100); do
  serve_addr="$(sed -n 's/^yali-serve: listening on //p' "$serve_log")"
  [ -n "$serve_addr" ] && break
  kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$serve_addr" ] || { echo "yali-serve never reported its port" >&2; exit 1; }
timeout 30 "$serve_bin" ping --addr "$serve_addr"
timeout 30 "$serve_bin" classify --addr "$serve_addr" --model lr \
  --code 'int f(int a) { return a * a + 3; }' | grep -q '^label '
timeout 30 "$serve_bin" scan --addr "$serve_addr" \
  --code 'int f(int a) { return a + 1; }' | grep -q '^malware '
# Live telemetry: the structured metrics op reports the lanes and a
# window header, and the top dashboard renders one frame non-interactively.
timeout 30 "$serve_bin" metrics --addr "$serve_addr" | grep -q '^window '
timeout 30 "$serve_bin" metrics --addr "$serve_addr" | grep -q '^lr '
timeout 30 "$serve_bin" top --addr "$serve_addr" --iterations 1 | grep -q 'yali-serve top'
# The flight recorder: a live dump must satisfy the strict yali-prof
# parser and feed the standard views — that is the recorder's contract.
flight_dump="$(mktemp -u).jsonl"
timeout 30 "$serve_bin" dump-trace --addr "$serve_addr" --out "$flight_dump"
grep -q '"ev":"recorder"' "$flight_dump"
target/release/yali-prof top "$flight_dump" --top 5
target/release/yali-prof export --chrome "$flight_dump" -o "$flight_dump.chrome.json"
rm -f "$flight_dump" "$flight_dump.chrome.json"
timeout 30 "$serve_bin" shutdown --addr "$serve_addr"
# A graceful shutdown means the process exits on its own.
serve_rc=0
for _ in $(seq 1 100); do
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
  echo "yali-serve did not exit after shutdown" >&2
  exit 1
fi
wait "$serve_pid" || serve_rc=$?
[ "$serve_rc" -eq 0 ] || { echo "yali-serve exited with $serve_rc" >&2; cat "$serve_log" >&2; exit 1; }
echo "serve smoke: ok (daemon on $serve_addr answered ping/classify/scan and drained)"

# Optional benchmark smoke: YALI_SMOKE=1 scripts/tier1.sh also runs the
# throughput + training benches and sanity-checks their JSON reports.
if [ "${YALI_SMOKE:-0}" = "1" ]; then
  scripts/bench.sh --smoke
fi
