#!/usr/bin/env bash
# Runs the engine benchmark suite and sanity-checks the JSON reports it
# writes at the repo root:
#
#   scripts/bench.sh          throughput + training + inference + store
#                             + serving benches, then verify
#                             BENCH_engine.json, BENCH_train.json,
#                             BENCH_infer.json, BENCH_store.json and
#                             BENCH_serve.json plus their companion
#                             RUNSTATS_*.json run reports, the
#                             observability overhead gate (the
#                             instrumented-but-disabled sweep must land
#                             within 5% of itself with YALI_OBS=1), and
#                             the store resume gate (warm-from-disk
#                             replay >= 10x over cold);
#                             finally analyze the TRACE_*.jsonl captures
#                             with yali-prof (profile + Chrome export +
#                             cross-process latency attribution), run a
#                             two-worker instrumented yali-grid sweep and
#                             gate its fleet report (fleet counters ==
#                             shard sums, straggler/drift via `yali-prof
#                             diff`, shard traces stitch into one Chrome
#                             timeline), and run `yali-prof diff` against
#                             the reports committed before the run
#   scripts/bench.sh --smoke  the same pass (the benches are already
#                             sized for smoke runs: Scale::SMALL corpora,
#                             10 Criterion samples) — the flag states
#                             intent for CI hooks like tier1.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

case "${1:-}" in
  ""|--smoke) ;;
  *) echo "usage: scripts/bench.sh [--smoke]" >&2; exit 2 ;;
esac

# Snapshot the committed reports before the benches overwrite them: the
# regression watch at the end of this script diffs each fresh report
# against the baseline that was here when the run started.
baseline_dir="$(mktemp -d)"
trap 'rm -rf "$baseline_dir"' EXIT
for f in RUNSTATS_engine.json RUNSTATS_train.json RUNSTATS_infer.json RUNSTATS_store.json \
         RUNSTATS_serve.json RUNSTATS_grid.json \
         BENCH_engine.json BENCH_train.json BENCH_infer.json BENCH_store.json \
         BENCH_serve.json; do
  [ -f "$f" ] && cp "$f" "$baseline_dir/$f"
done

cargo bench --bench throughput
cargo bench --bench training
cargo bench --bench inference
cargo bench --bench store
cargo bench --bench serve

# check_json FILE KEY... — the report parses, carries every KEY, records
# no degenerate (non-positive) timing, and every batched inference mode
# is at least as fast as its serial baseline.
check_json() {
  local file="$1"
  shift
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$file" "$@" <<'EOF'
import json
import sys

path, keys = sys.argv[1], sys.argv[2:]
with open(path) as f:
    report = json.load(f)
for key in keys:
    if key not in report:
        sys.exit(f"{path}: missing key {key!r}")
modes = report.get("modes", [])
if not modes:
    sys.exit(f"{path}: no benchmark modes recorded")
for m in modes:
    # The store bench's modes carry no serial baseline; default the
    # speedup to a passing value for reports that don't record one.
    speedup = m.get("speedup_vs_serial", 1.0)
    if not (m["mean_ns"] > 0 and speedup > 0):
        sys.exit(f"{path}: degenerate timing in {m['name']}")
    if "batched" in m["name"] and not speedup >= 1.0:
        sys.exit(
            f"{path}: batched mode {m['name']} slower than serial "
            f"({speedup:.2f}x)"
        )
print(f"{path}: ok ({len(modes)} modes)")
EOF
  else
    for key in "$@" modes; do
      grep -q "\"$key\"" "$file" || { echo "$file: missing key \"$key\"" >&2; exit 1; }
    done
    echo "$file: ok (grep fallback; python3 unavailable)"
  fi
}

check_json BENCH_engine.json speedup_serial_to_parallel_cached obs_overhead_pct embed_cache transform_cache
check_json BENCH_train.json speedup_serial_to_parallel_cached model_cache gemm_simd_kernel
check_json BENCH_infer.json speedup_serial_to_batched speedup_serial_to_batched_parallel n_queries int8_agreement f32_agreement
check_json BENCH_store.json speedup_cold_to_warm_disk bytes_on_disk disk_hit_ratio store_entries
check_json BENCH_serve.json qps_serial_to_batched p99_batched_over_serial n_clients requests_per_client live

# check_runstats FILE — the companion run report is well-formed JSON with
# coherent cache counters (hits + misses >= inserts, ratio in [0, 1]),
# non-negative phase wall times, and pool utilization in [0, 1].
check_runstats() {
  local file="$1"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$file" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)
if not report.get("obs_enabled"):
    sys.exit(f"{path}: report written without observability enabled")
for name, c in report["caches"].items():
    if c["hits"] + c["misses"] < c["inserts"]:
        sys.exit(f"{path}: cache {name}: hits+misses < inserts")
    if not 0.0 <= c["hit_ratio"] <= 1.0:
        sys.exit(f"{path}: cache {name}: hit_ratio {c['hit_ratio']} out of range")
for name, p in report["phases"].items():
    if p["total_ns"] < 0 or p["max_ns"] < 0 or p["mean_ns"] < 0:
        sys.exit(f"{path}: phase {name}: negative wall time")
    if p["count"] > 0 and p["total_ns"] == 0:
        sys.exit(f"{path}: phase {name}: {p['count']} entries but zero time")
util = report["pool"]["utilization"]
if not 0.0 <= util <= 1.0:
    sys.exit(f"{path}: pool utilization {util} out of range")
store = report.get("store")
if store is not None and store.get("active"):
    if not 0.0 <= store["disk_hit_ratio"] <= 1.0:
        sys.exit(f"{path}: store disk_hit_ratio {store['disk_hit_ratio']} out of range")
    if store["disk_hits"] + store["disk_misses"] < store["published"]:
        sys.exit(f"{path}: store hits+misses < published")
print(
    f"{path}: ok ({len(report['caches'])} caches, {len(report['phases'])} phases, "
    f"pool utilization {util:.2f})"
)
EOF
  else
    for key in obs_enabled caches phases pool counters; do
      grep -q "\"$key\"" "$file" || { echo "$file: missing key \"$key\"" >&2; exit 1; }
    done
    echo "$file: ok (grep fallback; python3 unavailable)"
  fi
}

check_runstats RUNSTATS_engine.json
check_runstats RUNSTATS_train.json
check_runstats RUNSTATS_infer.json
check_runstats RUNSTATS_store.json
check_runstats RUNSTATS_serve.json

# The observability overhead gate: with YALI_OBS unset every count!/span!
# call site must stay a single relaxed load, so the instrumented sweep's
# obs-on mode may cost at most 5% over the identical obs-off mode (the
# true cost measures well under 1%; the margin covers per-run code-layout
# and scheduler noise this box cannot resolve any tighter).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_engine.json") as f:
    report = json.load(f)
pct = report["obs_overhead_pct"]
if pct > 5.0:
    raise SystemExit(f"BENCH_engine.json: obs-on overhead {pct:.2f}% exceeds the 5% gate")
print(f"observability overhead gate: ok ({pct:.2f}% <= 5%)")
EOF
fi

# The SIMD kernel floor: the dispatched GEMM kernel must beat the blocked
# scalar kernel by at least 4x at the MLP-forward shape. Skipped (with a
# note) when CPU detection picked the scalar kernel — there is nothing to
# gate on a machine with no SIMD units, and tier-1 already proves the
# scalar path correct.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_train.json") as f:
    report = json.load(f)
kernel = report["gemm_simd_kernel"]
if kernel == "scalar":
    print("gemm simd floor: skipped (dispatch chose the scalar kernel)")
    raise SystemExit(0)
mean = {m["name"]: m["mean_ns"] for m in report["modes"]}
ratio = mean["gemm/blocked"] / mean["gemm/simd"]
if ratio < 4.0:
    raise SystemExit(
        f"BENCH_train.json: gemm/simd ({kernel}) only {ratio:.2f}x over "
        f"gemm/blocked, below the 4x floor"
    )
print(f"gemm simd floor: ok ({kernel} {ratio:.2f}x over blocked, >= 4x)")
EOF
fi

# The int8 accuracy gate: the quantized inference path must agree with
# the f64 verdicts on at least 99.5% of the subset labels (the bench
# asserts this too; re-checking the written report keeps the gate honest
# against a stale file).
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_infer.json") as f:
    report = json.load(f)
for key in ("int8_agreement", "f32_agreement"):
    agree = report[key]
    if agree < 0.995:
        raise SystemExit(f"BENCH_infer.json: {key} {agree:.4f} below the 99.5% gate")
mean = {m["name"]: m["mean_ns"] for m in report["modes"]}
speed = mean["infer/subset_f64"] / mean["infer/subset_int8"]
print(
    f"int8 gate: ok (agreement {report['int8_agreement']:.4f} >= 0.995, "
    f"f32 {report['f32_agreement']:.4f}, int8 {speed:.2f}x vs subset f64)"
)
EOF
fi

# The artifact-store resume gate: replaying the store bench's sweep from
# a populated store in a cold-cache process must beat recomputing it from
# scratch by at least 10x, and the replay must actually come from disk
# (hit ratio well above chance), or resuming an interrupted sweep is not
# worth the I/O.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_store.json") as f:
    report = json.load(f)
speedup = report["speedup_cold_to_warm_disk"]
ratio = report["disk_hit_ratio"]
if speedup < 10.0:
    raise SystemExit(
        f"BENCH_store.json: warm-disk replay only {speedup:.2f}x over cold, "
        f"below the 10x floor"
    )
if ratio < 0.5:
    raise SystemExit(f"BENCH_store.json: disk hit ratio {ratio:.3f} below 0.5")
if report["bytes_on_disk"] <= 0:
    raise SystemExit("BENCH_store.json: empty store after the sweep")
print(f"store resume gate: ok ({speedup:.2f}x >= 10x, hit ratio {ratio:.3f})")
EOF
fi

# The serving gate: deadline batching must sustain at least 2x the QPS of
# one-request-per-dispatch serial serving at a no-worse tail (the bench
# checks every served verdict bit-identical to direct predict while
# measuring, so this is a pure throughput/latency gate). The companion
# RUNSTATS must be coherent with itself: every batched row recorded a
# queue wait, the batch-size histogram is non-empty, and no batch
# exceeded INFER_CHUNK (32) rows.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json

with open("BENCH_serve.json") as f:
    report = json.load(f)
ratio = report["qps_serial_to_batched"]
if ratio < 2.0:
    raise SystemExit(
        f"BENCH_serve.json: batched serving only {ratio:.2f}x the serial QPS, "
        f"below the 2x floor"
    )
p99 = report["p99_batched_over_serial"]
if p99 > 1.0:
    raise SystemExit(
        f"BENCH_serve.json: batched p99 is {p99:.2f}x the serial p99 "
        f"(batching must not cost tail latency under saturation)"
    )
modes = {m["name"]: m for m in report["modes"]}
for name in ("serve/serial", "serve/batched"):
    m = modes.get(name)
    if m is None:
        raise SystemExit(f"BENCH_serve.json: missing mode {name}")
    if not (0 < m["p50_ns"] <= m["p95_ns"] <= m["p99_ns"]):
        raise SystemExit(f"BENCH_serve.json: {name}: percentiles not monotone")
    if m["qps"] <= 0:
        raise SystemExit(f"BENCH_serve.json: {name}: degenerate QPS")

with open("RUNSTATS_serve.json") as f:
    stats = json.load(f)
counters = stats["counters"]
phases = stats["phases"]
rows = counters.get("serve.batch.rows", 0)
batches = counters.get("serve.batches", 0)
if batches == 0 or rows == 0:
    raise SystemExit("RUNSTATS_serve.json: instrumented pass dispatched no batches")
waits = phases.get("serve.queue_wait_ns", {}).get("count", 0)
if waits != rows:
    raise SystemExit(
        f"RUNSTATS_serve.json: queue-wait samples ({waits}) != batched rows ({rows})"
    )
sizes = phases.get("serve.batch_size", {})
if sizes.get("count", 0) != batches:
    raise SystemExit(
        f"RUNSTATS_serve.json: batch-size samples ({sizes.get('count', 0)}) "
        f"!= batches ({batches})"
    )
# The batch-size recorder stores row counts; its max is the largest batch.
if sizes.get("max_ns", 0) > 32:
    raise SystemExit(
        f"RUNSTATS_serve.json: a batch carried {sizes['max_ns']} rows (> INFER_CHUNK)"
    )
by_trigger = sum(
    counters.get(k, 0)
    for k in ("serve.batches.full", "serve.batches.deadline", "serve.batches.drain")
)
if by_trigger != batches:
    raise SystemExit(
        f"RUNSTATS_serve.json: trigger counts ({by_trigger}) != batches ({batches})"
    )
print(
    f"serve gate: ok ({ratio:.2f}x QPS >= 2x, p99 ratio {p99:.2f}, "
    f"{batches} batches / {rows} rows coherent)"
)

# The live-telemetry gate: the daemon's own windowed view of the measured
# round must be populated and coherent with the client-observed
# percentiles (server-side enqueue-to-reply sits below client latency but
# within a loose envelope of it), and the always-armed flight recorder
# must cost at most 5% (measured by paired off/on rounds in the bench).
live = report["live"]
if live["window_count"] <= 0:
    raise SystemExit("BENCH_serve.json: live window saw no traffic")
overhead = live["recorder_overhead_pct"]
if overhead > 5.0:
    raise SystemExit(
        f"BENCH_serve.json: flight-recorder overhead {overhead:.2f}% exceeds the 5% gate"
    )
wp99 = live["windowed_p99_ns"]
lo = modes["serve/batched"]["p50_ns"] / 8.0
hi = 4.0 * max(modes["serve/serial"]["p99_ns"], modes["serve/batched"]["p99_ns"])
if not lo <= wp99 <= hi:
    raise SystemExit(
        f"BENCH_serve.json: windowed p99 {wp99:.0f}ns outside the "
        f"[{lo:.0f}, {hi:.0f}]ns envelope of the client percentiles"
    )
if live["recorder_events"] <= 0:
    raise SystemExit("BENCH_serve.json: the always-instrumented daemon recorded no spans")
print(
    f"serve live gate: ok (windowed p99 {wp99/1e6:.2f}ms in envelope, "
    f"{live['window_count']} rows, recorder overhead {overhead:.2f}% <= 5%)"
)
EOF
fi

# Trace analysis: every bench also wrote an untimed TRACE_*.jsonl
# capture. The strict parser accepting it proves balanced spans and
# monotone per-thread seqs; the Chrome export is what Perfetto loads.
cargo build --release -q -p yali-prof
prof=target/release/yali-prof
for t in TRACE_engine.jsonl TRACE_train.jsonl TRACE_infer.jsonl TRACE_store.jsonl \
         TRACE_serve.jsonl; do
  [ -f "$t" ] || { echo "$t: missing trace capture" >&2; exit 1; }
  "$prof" top "$t" --top 10
  "$prof" export --chrome "$t"
done

# Cross-process latency attribution: the serve bench's traced pass sent
# trace contexts over the wire, so the capture must let yali-prof walk a
# request from its client.request span through the server's queue-wait /
# batch-fill / infer / reply hops. An attribution failing to find a
# context-carrying client span means the propagation plumbing broke.
"$prof" cross-path TRACE_serve.jsonl

# The fleet observability gate: a two-worker instrumented yali-grid
# sweep writes RUNSTATS_grid.json (merged fleet + per-shard run reports)
# and one trace capture per process. Three checks: the fleet counters
# are exactly the sum of the shard counters, `yali-prof diff` holds the
# straggler/drift gates (against the committed baseline when present),
# and the per-process captures stitch into one Chrome timeline.
cargo build --release -q -p yali-grid
grid_dir="$(mktemp -d)"
trap 'rm -rf "$baseline_dir" "$grid_dir"' EXIT
YALI_OBS=1 YALI_TRACE="$grid_dir/grid.jsonl" target/release/yali-grid run \
  --workers 2 --out "$grid_dir/grid.json" --runstats RUNSTATS_grid.json \
  --games game0 --evaders none --models knn,rf --rounds 2 \
  --classes 3 --per-class 4
if command -v python3 >/dev/null 2>&1; then
  python3 - RUNSTATS_grid.json <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    report = json.load(f)
shards = report["shards"]
if report["n_shards"] != len(shards) or len(shards) != 2:
    sys.exit(f"{path}: expected 2 shard sections, found {len(shards)}")
fleet = report["fleet"]["counters"]
if not fleet:
    sys.exit(f"{path}: merged fleet recorded no counters")
for name, total in fleet.items():
    by_shard = sum(s["report"]["counters"].get(name, 0) for s in shards)
    if by_shard != total:
        sys.exit(f"{path}: counter {name}: fleet {total} != shard sum {by_shard}")
print(f"fleet coherence: ok ({len(fleet)} counters == shard sums across {len(shards)} shards)")
EOF
fi
grid_baseline="$baseline_dir/RUNSTATS_grid.json"
[ -f "$grid_baseline" ] || grid_baseline=RUNSTATS_grid.json
# The smoke sweep finishes in milliseconds, so per-phase means are pure
# scheduler noise run over run; the floor mutes them. What this diff
# actually gates — deterministic fleet counters, the straggler ceiling,
# the per-shard drift band — is unaffected by the floor.
"$prof" diff "$grid_baseline" RUNSTATS_grid.json --min-phase-ns 10000000
"$prof" merge "$grid_dir/grid.jsonl" "$grid_dir/grid.jsonl.shard0" \
  "$grid_dir/grid.jsonl.shard1" -o "$grid_dir/fleet_chrome.json"

# The run-over-run regression watch: diff each fresh report against the
# baseline snapshotted at the top of this script. Thresholds are loose
# (Criterion sizes iteration counts adaptively, so absolute counters
# move a few x between runs) but a real regression — a cache that
# stopped hitting, a phase that blew up, a speedup that collapsed —
# fails the script with the offending metric named.
for f in RUNSTATS_engine.json RUNSTATS_train.json RUNSTATS_infer.json RUNSTATS_store.json \
         RUNSTATS_serve.json \
         BENCH_engine.json BENCH_train.json BENCH_infer.json BENCH_store.json \
         BENCH_serve.json; do
  if [ -f "$baseline_dir/$f" ]; then
    "$prof" diff "$baseline_dir/$f" "$f"
  else
    echo "$f: no committed baseline, skipping diff (first run?)"
  fi
done
