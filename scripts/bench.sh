#!/usr/bin/env bash
# Runs the engine benchmark suite and sanity-checks the JSON reports it
# writes at the repo root:
#
#   scripts/bench.sh          throughput + training + inference benches,
#                             then verify BENCH_engine.json,
#                             BENCH_train.json and BENCH_infer.json
#   scripts/bench.sh --smoke  the same pass (the benches are already
#                             sized for smoke runs: Scale::SMALL corpora,
#                             10 Criterion samples) — the flag states
#                             intent for CI hooks like tier1.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

case "${1:-}" in
  ""|--smoke) ;;
  *) echo "usage: scripts/bench.sh [--smoke]" >&2; exit 2 ;;
esac

cargo bench --bench throughput
cargo bench --bench training
cargo bench --bench inference

# check_json FILE KEY... — the report parses, carries every KEY, records
# no degenerate (non-positive) timing, and every batched inference mode
# is at least as fast as its serial baseline.
check_json() {
  local file="$1"
  shift
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$file" "$@" <<'EOF'
import json
import sys

path, keys = sys.argv[1], sys.argv[2:]
with open(path) as f:
    report = json.load(f)
for key in keys:
    if key not in report:
        sys.exit(f"{path}: missing key {key!r}")
modes = report.get("modes", [])
if not modes:
    sys.exit(f"{path}: no benchmark modes recorded")
for m in modes:
    if not (m["mean_ns"] > 0 and m["speedup_vs_serial"] > 0):
        sys.exit(f"{path}: degenerate timing in {m['name']}")
    if "batched" in m["name"] and not m["speedup_vs_serial"] >= 1.0:
        sys.exit(
            f"{path}: batched mode {m['name']} slower than serial "
            f"({m['speedup_vs_serial']:.2f}x)"
        )
print(f"{path}: ok ({len(modes)} modes)")
EOF
  else
    for key in "$@" modes; do
      grep -q "\"$key\"" "$file" || { echo "$file: missing key \"$key\"" >&2; exit 1; }
    done
    echo "$file: ok (grep fallback; python3 unavailable)"
  fi
}

check_json BENCH_engine.json speedup_serial_to_parallel_cached embed_cache transform_cache
check_json BENCH_train.json speedup_serial_to_parallel_cached model_cache
check_json BENCH_infer.json speedup_serial_to_batched speedup_serial_to_batched_parallel n_queries
