//! The paper's Example 2.5, live: O-LLVM's instruction substitution
//! obfuscates `a + b`; a `-O1`-style pipeline normalizes it back.
//!
//! Run with: `cargo run -p yali-core --example normalization`

use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "int foo(int a, int b) { return a + b; }";
    let module = yali_minic::compile(source)?;
    println!("--- original (-O0) ---\n{}", yali_ir::print_module(&module));

    // The evader applies instruction substitution.
    let mut obfuscated = module.clone();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    yali_obf::sub::run_module(&mut obfuscated, &mut rng, 1.0);
    println!("--- after ollvm -sub ---\n{}", yali_ir::print_module(&obfuscated));

    // The classifier normalizes with -O1: the substitution dissolves.
    let mut normalized = obfuscated.clone();
    yali_opt::optimize(&mut normalized, yali_opt::OptLevel::O1);
    println!("--- after clang -O1 normalization ---\n{}", yali_ir::print_module(&normalized));

    let d_obf = yali_embed::euclidean(
        &yali_embed::histogram(&module),
        &yali_embed::histogram(&obfuscated),
    );
    let d_norm = yali_embed::euclidean(
        &yali_embed::histogram(&yali_opt::optimized(&module, yali_opt::OptLevel::O1)),
        &yali_embed::histogram(&normalized),
    );
    println!("histogram distance to the original: obfuscated {d_obf:.2}, normalized {d_norm:.2}");
    assert!(d_norm < d_obf);
    println!("normalization moved the program back toward the training distribution.");
    Ok(())
}
