//! The four games in one duel: a histogram+random-forest classifier
//! against the O-LLVM evader — the paper's Figure 1 in miniature.
//!
//! Run with: `cargo run -p yali-core --example obfuscation_duel`

use yali_core::{play, ClassifierSpec, Corpus, Game, GameConfig, Transformer};
use yali_ml::ModelKind;
use yali_obf::IrObf;

fn main() {
    println!("Building a POJ-style corpus: 6 classes x 12 author solutions ...");
    let corpus = Corpus::poj(6, 12, 2023);
    let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 7);
    let evader = Transformer::Ir(IrObf::Ollvm);

    println!("\n{:<8} {:<44} {:>8}", "game", "setup", "accuracy");
    for (game, blurb) in [
        (Game::Game0, "no transformation anywhere (symmetric)"),
        (Game::Game1, "evader obfuscates; classifier unaware"),
        (Game::Game2, "classifier trains on obfuscated code too"),
        (Game::Game3, "evader obfuscates; classifier normalizes -O3"),
    ] {
        let cfg = base.clone().with_game(game, evader);
        let r = play(&corpus, &cfg);
        println!("{:<8} {:<44} {:>7.1}%", game.name(), blurb, r.accuracy * 100.0);
    }
    println!("\nPaper: game1 collapses, game2 recovers Game-0 levels, game3 sits between");
    println!("(ollvm resists -O3 normalization through bcf's opaque predicates).");
}
