//! Quickstart: compile a MiniC program, obfuscate it, optimize it, and
//! watch a classifier's view (the opcode histogram) change.
//!
//! Run with: `cargo run -p yali-core --example quickstart`

use rand::SeedableRng;
use yali_ir::interp::{run, ExecConfig, Val};

fn top_opcodes(m: &yali_ir::Module) -> String {
    let h = yali_embed::histogram(m);
    let mut idx: Vec<usize> = (0..h.len()).collect();
    idx.sort_by(|&a, &b| h[b].total_cmp(&h[a]));
    idx.iter()
        .take(5)
        .map(|&i| format!("{}:{}", yali_ir::Op::ALL[i], h[i] as usize))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        int gcd(int a, int b) {
            while (b != 0) { int t = a % b; a = b; b = t; }
            return a;
        }
        void main() {
            int a = read_int();
            int b = read_int();
            print_int(gcd(a, b));
        }
    "#;

    // 1. Compile (clang -O0 style lowering).
    let program = yali_minic::parse(source)?;
    yali_minic::check(&program)?;
    let module = yali_minic::lower(&program);
    println!("O0:      {:3} instructions | {}", module.num_insts(), top_opcodes(&module));

    // 2. Optimize: the histogram shifts (optimizers are evaders too, RQ3).
    let optimized = yali_opt::optimized(&module, yali_opt::OptLevel::O3);
    println!("O3:      {:3} instructions | {}", optimized.num_insts(), top_opcodes(&optimized));

    // 3. Obfuscate with all of O-LLVM.
    let mut obfuscated = module.clone();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    yali_obf::ollvm(&mut obfuscated, &mut rng);
    println!("ollvm:   {:3} instructions | {}", obfuscated.num_insts(), top_opcodes(&obfuscated));

    // 4. Everything still computes gcd(48, 18) = 6.
    for (name, m) in [("O0", &module), ("O3", &optimized), ("ollvm", &obfuscated)] {
        let out = run(m, "main", &[], &[Val::Int(48), Val::Int(18)], &ExecConfig::default())?;
        println!("{name}: gcd(48, 18) prints {:?} (cost {})", out.output, out.cost);
    }
    Ok(())
}
