//! End-to-end and property tests for the live-telemetry layer: flight
//! recorder dumps must *always* satisfy `yali-prof`'s strict trace
//! parser (the whole point of the recorder is that an incident dump is
//! analyzable with the existing tooling, not best-effort), and the
//! sliding windows must agree with a brute-force model of the epoch
//! arithmetic under arbitrary clock schedules.

use proptest::prelude::*;
use yali_obs::recorder::{self, RecEvent, RecKind, Ring};
use yali_obs::window::{WindowConfig, WindowedCounter, WindowedHistogram};

/// The recorder (capacity, rings, label table) is process-global; tests
/// that arm it serialize here so one test's re-arm cannot change what
/// another observes mid-flight.
static RECORDER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn live_span_dump_parses_and_seqs_are_per_tid_monotone() {
    let _lock = RECORDER_LOCK.lock().unwrap();
    yali_obs::set_enabled(true);
    recorder::set_recorder(Some(64));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                // 200 iterations x 2 spans x 2 events = 800 events per
                // thread, far past the 64-event ring: wraparound under
                // real span traffic.
                for i in 0..200u64 {
                    let _outer = yali_obs::span("flight.test.outer");
                    let _inner = yali_obs::span_attr("flight.test.inner", "module", i);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    recorder::set_recorder(None);
    yali_obs::set_enabled(false);

    let stats = recorder::recorder_stats();
    assert!(stats.events >= 4 * 800, "events={}", stats.events);
    assert!(stats.dropped > 0, "64-slot rings must have overwritten");
    assert!(stats.threads >= 4);

    let (dump, dstats) = recorder::dump();
    assert!(dstats.events > 0);
    assert!(dstats.dropped > 0);
    assert_eq!(
        dump.lines().count() as u64,
        dstats.events + 1,
        "one meta line plus exactly the kept events"
    );
    // The strict parser enforces per-tid monotone seq, depth coherence,
    // and close/open pairing — a clean parse IS the monotonicity proof.
    let trace = yali_prof::parse_trace(&dump).expect("flight dump must parse strictly");
    assert!(trace.n_spans > 0);
    assert_eq!(trace.recorder.len(), 1);
    assert_eq!(trace.recorder[0].fields["events"], dstats.events);
    assert_eq!(trace.recorder[0].fields["dropped"], dstats.dropped);
    // And the standard views consume it unchanged.
    let profile = yali_prof::profile(&trace);
    assert!(profile
        .labels
        .iter()
        .any(|r| r.label.starts_with("flight.test.")));
    let chrome = yali_prof::to_chrome(&trace);
    assert!(chrome.contains("flight.test.inner"));
}

#[test]
fn spans_recorded_before_arming_repair_away_cleanly() {
    let _lock = RECORDER_LOCK.lock().unwrap();
    yali_obs::set_enabled(true);
    // Open a span with the recorder off, arm mid-flight, then close: the
    // ring sees a close whose open it never recorded — an orphan the
    // dump must repair away, not emit.
    let guard = yali_obs::span("flight.test.straddle");
    recorder::set_recorder(Some(32));
    drop(guard);
    {
        let _balanced = yali_obs::span("flight.test.balanced");
    }
    recorder::set_recorder(None);
    yali_obs::set_enabled(false);
    let (dump, _) = recorder::dump();
    let trace = yali_prof::parse_trace(&dump).expect("straddled dump must parse");
    fn count_label(nodes: &[yali_prof::SpanNode], label: &str) -> usize {
        nodes
            .iter()
            .map(|n| {
                (n.label == label) as usize + count_label(&n.children, label)
            })
            .sum()
    }
    assert_eq!(count_label(&trace.roots, "flight.test.straddle"), 0);
    assert!(count_label(&trace.roots, "flight.test.balanced") >= 1);
}

/// A balanced span program on one thread, driven by a proptest-chosen
/// op list: an op below `n_labels` opens a span with that label, anything
/// else closes the innermost open span (ignored when nothing is open);
/// everything still open at the end is closed. Timestamps advance by the
/// given deltas.
fn balanced_program(ops: &[u8], dts: &[u64], n_labels: u8) -> Vec<RecEvent> {
    let mut events = Vec::new();
    let mut stack: Vec<(u32, u64)> = Vec::new();
    let mut next_seq = 0u64;
    let mut t = 0u64;
    let mut dts = dts.iter().cycle();
    let emit = |events: &mut Vec<RecEvent>, kind, label, seq, depth, t, dur| {
        events.push(RecEvent {
            kind,
            label,
            seq,
            depth,
            t_ns: t,
            dur_ns: dur,
            // Exercise the attr path on a slice of spans.
            attr_key: if label % 3 == 0 { Some(label) } else { None },
            attr_val: seq,
        });
    };
    for &op in ops {
        t += dts.next().unwrap();
        if op < n_labels {
            let label = op as u32;
            emit(
                &mut events,
                RecKind::Open,
                label,
                next_seq,
                stack.len() as u64,
                t,
                0,
            );
            stack.push((label, next_seq));
            next_seq += 1;
        } else if let Some((label, seq)) = stack.pop() {
            emit(
                &mut events,
                RecKind::Close,
                label,
                seq,
                stack.len() as u64,
                t,
                1,
            );
        }
    }
    while let Some((label, seq)) = stack.pop() {
        t += 1;
        emit(
            &mut events,
            RecKind::Close,
            label,
            seq,
            stack.len() as u64,
            t,
            1,
        );
    }
    events
}

proptest! {
    /// Any balanced program, squeezed through a ring of any capacity (so
    /// an arbitrary suffix survives), renders to a dump the strict parser
    /// accepts, with truthful kept/dropped accounting.
    #[test]
    fn any_ring_suffix_renders_to_a_strictly_parseable_trace(
        // Ops 0..6 open a span with that label, 6..10 close: ~60% opens.
        ops in proptest::collection::vec(0u8..10, 0..120),
        dts in proptest::collection::vec(0u64..1_000, 1..8),
        cap in 1usize..48,
    ) {
        let events = balanced_program(&ops, &dts, 6);
        let ring = Ring::new(9, cap);
        for ev in &events {
            ring.push(ev);
        }
        let (kept, lost) = ring.read();
        prop_assert_eq!(kept.len() as u64 + lost, events.len() as u64);
        // Oldest-first: the survivors are exactly the newest suffix.
        prop_assert_eq!(&kept[..], &events[lost as usize..]);
        let labels = ["l0", "l1", "l2", "l3", "l4", "l5"];
        let (text, stats) = recorder::render_dump(&[(9, kept, lost)], &labels);
        prop_assert_eq!(stats.dropped, lost);
        let trace = yali_prof::parse_trace(&text)
            .map_err(|e| TestCaseError::fail(format!("dump must parse: {e}\n{text}")))?;
        prop_assert_eq!(stats.events, text.lines().count() as u64);
        prop_assert_eq!(trace.n_spans as u64 * 2, stats.events);
        // Nothing invented: every surviving event was in the suffix.
        prop_assert!(stats.events <= (events.len() as u64 - lost));
    }

    /// The windowed histogram agrees with a brute-force model: a sample
    /// recorded at (monotone-clamped) time `t` is visible at `now` iff
    /// its epoch is within the trailing `epochs` window.
    #[test]
    fn windowed_histogram_matches_model(
        steps in proptest::collection::vec((0u64..2_500, 1u64..100_000), 1..150),
        epoch_ns in 1u64..2_000,
        epochs in 1usize..12,
    ) {
        let cfg = WindowConfig { epoch_ns, epochs };
        let mut w = WindowedHistogram::new(cfg);
        let mut c = WindowedCounter::new(cfg);
        let mut seen: Vec<(u64, u64)> = Vec::new(); // (clamped epoch, sample)
        let mut now = 0u64;
        let mut cur_epoch = 0u64;
        for &(dt, sample) in &steps {
            now += dt;
            w.record(now, sample);
            c.add(now, 1);
            cur_epoch = cur_epoch.max(now / epoch_ns);
            seen.push((cur_epoch, sample));
            let visible: Vec<u64> = seen
                .iter()
                .filter(|(e, _)| e + epochs as u64 > cur_epoch)
                .map(|&(_, s)| s)
                .collect();
            let snap = w.snapshot(now, "w");
            prop_assert_eq!(snap.count, visible.len() as u64);
            prop_assert_eq!(snap.sum_ns, visible.iter().sum::<u64>());
            prop_assert_eq!(snap.max_ns, visible.iter().copied().max().unwrap_or(0));
            prop_assert_eq!(c.total(now), visible.len() as u64);
            // Satellite contract: empty window <=> no quantile, and any
            // quantile estimate stays within the observed range.
            match snap.quantile_opt(0.99) {
                None => prop_assert_eq!(snap.count, 0),
                Some(q) => prop_assert!(q <= snap.max_ns),
            }
        }
    }
}
