//! # yali-obs
//!
//! Zero-overhead-when-off observability for the experiment engine: named
//! atomic **counters**, fixed-bucket latency **histograms**, RAII **span**
//! timers, and a JSONL **trace sink** — with one contract above all:
//! instrumentation must never perturb a result, and when it is off it must
//! cost **one relaxed atomic load per call site**.
//!
//! ## Switching it on
//!
//! Observability is off by default. `YALI_OBS=1` (or any value other than
//! `0`/`off`/`false`) enables the counters, histograms, and spans;
//! [`set_enabled`] does the same programmatically (tests and benches use
//! it to avoid process-global environment races). `YALI_TRACE=<path>` (or
//! [`set_trace_path`]) additionally streams span open/close events as JSON
//! lines, so a run can be replayed into a flamegraph-style timeline.
//!
//! ## Cost model
//!
//! Every entry point begins with [`enabled`], a single
//! `AtomicU8::load(Relaxed)` once the state is initialized. When it
//! returns `false`, [`count!`] is a load plus an untaken branch, and
//! [`span!`] returns an inert guard whose `Drop` is a branch on a bool —
//! no clock reads, no registry locks, no allocation. The
//! `criterion_micro` bench (`obs/count_disabled`, `obs/span_disabled`)
//! measures both at around a nanosecond.
//!
//! ## Naming
//!
//! Names are `&'static str` and registered on first use; handles are
//! leaked (`Box::leak`) so call sites hold `&'static` references and pay
//! the registry lock only once per distinct name per call site (the
//! [`count!`]/[`record!`] macros cache the handle in a `OnceLock`).
//! Dotted lowercase names (`embed.batch`, `par.busy_ns`) group related
//! series; [`Registry::counters`]/[`Registry::histograms`] snapshot
//! everything for `yali_core::report`'s `RUNSTATS.json`.
//!
//! ## Live telemetry
//!
//! Everything above aggregates over the process lifetime — the right
//! shape for a bounded run, the wrong one for a daemon. Two modules add
//! the live view: [`window`] provides sliding-window histograms/counters
//! (clock-free epoch rings; "p99 over the last ten seconds"), and
//! [`recorder`] is the flight recorder — per-thread lock-free rings of
//! recent span events, always on at bounded memory, dumpable as a JSONL
//! trace `yali-prof` consumes unchanged.

#![warn(missing_docs)]

pub mod recorder;
pub mod window;

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// --- distributed trace context -------------------------------------------

/// The identity a span carries across process boundaries: a 64-bit trace
/// id shared by every span of one logical request (client and server,
/// coordinator and shard), plus the span sequence id of the remote parent.
///
/// Contexts are **derived, never drawn**: [`TraceContext::derive`] mixes a
/// caller-supplied seed and a stream index through SplitMix64, so the same
/// run produces the same ids — trace identity obeys the engine's
/// determinism contract instead of `Date::now`-style entropy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace id shared by every process touching this request.
    pub trace_id: u64,
    /// The per-thread `seq` of the parent span in the *originating*
    /// process (0 when the context roots the trace).
    pub parent_span: u64,
}

impl TraceContext {
    /// Derives the context for stream `stream` of the trace family seeded
    /// by `seed`. `mix64` is a bijection and `seed + stream * odd` is a
    /// bijection in `stream`, so distinct streams under one seed always
    /// get distinct trace ids.
    pub fn derive(seed: u64, stream: u64) -> TraceContext {
        TraceContext {
            trace_id: mix64(seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))),
            parent_span: 0,
        }
    }

    /// The same trace with a different remote parent span (the client
    /// stamps its own request span's `seq` here before sending).
    pub fn with_parent(self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            parent_span,
        }
    }
}

/// The SplitMix64 finalizer: a cheap, high-quality u64 bijection (used
/// for trace-id derivation; public so the serve client and the load bench
/// derive identical families from their request counters).
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

thread_local! {
    static CURRENT_CTX: std::cell::Cell<Option<TraceContext>> =
        const { std::cell::Cell::new(None) };
}

/// The current thread's trace context, if one is installed (spans opened
/// while a context is current carry it on their trace events).
#[inline]
pub fn current_context() -> Option<TraceContext> {
    CURRENT_CTX.with(|c| c.get())
}

/// RAII guard returned by [`push_context`]; restores the previously
/// current context (possibly none) on drop, so nested scopes compose.
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| c.set(self.prev));
    }
}

/// Installs `ctx` as the current thread's trace context for the guard's
/// lifetime. Every span opened (and every [`trace_region`] emitted) on
/// this thread while the guard lives carries `trace`/`parent` fields, so
/// a server's dispatch spans join the client's timeline.
pub fn push_context(ctx: TraceContext) -> ContextGuard {
    ContextGuard {
        prev: CURRENT_CTX.with(|c| c.replace(Some(ctx))),
    }
}

// --- global on/off state -------------------------------------------------

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Whether instrumentation is live. One relaxed atomic load in the steady
/// state; the first call reads `YALI_OBS` (off when unset, `0`, `off`, or
/// `false`).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_state(),
    }
}

#[cold]
fn init_state() -> bool {
    let on = match std::env::var("YALI_OBS") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "off" | "false"),
        Err(_) => false,
    };
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    if on {
        init_trace_from_env();
    }
    on
}

/// Programmatic override of `YALI_OBS` (tests and benches flip this
/// instead of racing on process-global environment variables).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// --- counters ------------------------------------------------------------

/// A named monotonic counter. Handles are `&'static`; bumping is one
/// relaxed `fetch_add`.
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n` (unconditionally — gate hot call sites with [`count!`] or
    /// an explicit [`enabled`] check).
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

// --- histograms ----------------------------------------------------------

/// Power-of-two bucket count: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0), up to ~9 minutes
/// in the last bucket.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-bucket histogram of nanosecond samples with exact sum/count
/// (so mean phase wall time is exact even though the distribution is
/// bucketed).
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample (unconditionally — gate hot call
    /// sites with [`record!`] or an explicit [`enabled`] check).
    #[inline]
    pub fn record(&self, ns: u64) {
        let idx = (63 - (ns | 1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            max_ns: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Registered name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// Power-of-two bucket counts (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile in nanoseconds (`q` in `[0, 1]`), linearly
    /// interpolated inside the log2 bucket holding the target rank, so the
    /// estimate is never off by more than one bucket width (a factor of
    /// two). `q >= 1` returns the exact recorded maximum; an empty
    /// snapshot returns 0 (use [`HistSnapshot::quantile_opt`] where "no
    /// samples" must stay distinguishable from "0 ns"). Estimates are
    /// clamped to `max_ns`, so no quantile ever exceeds the largest
    /// observed sample.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_opt(q).unwrap_or(0)
    }

    /// [`HistSnapshot::quantile`] with an explicit empty case: `None` when
    /// the snapshot holds no samples, so callers that *gate* on a
    /// quantile (the serve `metrics` reply, `yali-prof diff`) never
    /// mistake an idle window for a zero-nanosecond latency.
    pub fn quantile_opt(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q >= 1.0 {
            return Some(self.max_ns);
        }
        // 1-based rank of the requested quantile among the sorted samples.
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                // Bucket i spans [2^i, 2^(i+1)); bucket 0 also holds 0
                // and 1. Interpolate by the rank's position in the bucket.
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = 1u64 << (i + 1);
                let frac = (target - seen) as f64 / n as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return Some((est as u64).min(self.max_ns));
            }
            seen += n;
        }
        Some(self.max_ns)
    }
}

// --- the registry --------------------------------------------------------

/// The process-wide name → counter/histogram registry.
pub struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    hists: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// The global registry.
    pub fn global() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            counters: Mutex::new(Vec::new()),
            hists: Mutex::new(Vec::new()),
        })
    }

    /// Sorted snapshot of every counter (zero-valued ones included: a
    /// registered-but-idle series is information, not noise).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect();
        out.sort();
        out
    }

    /// Sorted snapshot of every histogram.
    pub fn histograms(&self) -> Vec<HistSnapshot> {
        let mut out: Vec<HistSnapshot> = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Zeroes every counter and histogram (report scoping and tests;
    /// registered handles stay valid).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().unwrap().iter() {
            c.v.store(0, Ordering::Relaxed);
        }
        for (_, h) in self.hists.lock().unwrap().iter() {
            h.reset();
        }
    }
}

/// Returns (registering on first use) the counter named `name`. The
/// registry vector is kept sorted by name, so lookup under the mutex is a
/// binary search rather than a linear scan (sweeps register hundreds of
/// distinct series; uncached call sites would otherwise pay O(n) each).
pub fn counter(name: &'static str) -> &'static Counter {
    let reg = Registry::global();
    let mut counters = reg.counters.lock().unwrap();
    match counters.binary_search_by_key(&name, |&(n, _)| n) {
        Ok(i) => counters[i].1,
        Err(i) => {
            let c: &'static Counter = Box::leak(Box::new(Counter {
                v: AtomicU64::new(0),
            }));
            counters.insert(i, (name, c));
            c
        }
    }
}

/// Returns (registering on first use) the histogram named `name`. Same
/// sorted-vector binary search as [`counter`].
pub fn histogram(name: &'static str) -> &'static Histogram {
    let reg = Registry::global();
    let mut hists = reg.hists.lock().unwrap();
    match hists.binary_search_by_key(&name, |&(n, _)| n) {
        Ok(i) => hists[i].1,
        Err(i) => {
            let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
            hists.insert(i, (name, h));
            h
        }
    }
}

/// Bumps the named counter by `n` when observability is on; a relaxed
/// load and an untaken branch when off. The handle is cached per call
/// site, so the registry lock is paid once.
#[macro_export]
macro_rules! count {
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static H: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            H.get_or_init(|| $crate::counter($name)).add($n);
        }
    };
}

/// Records a nanosecond sample into the named histogram when observability
/// is on; a relaxed load and an untaken branch when off.
#[macro_export]
macro_rules! record {
    ($name:literal, $ns:expr) => {
        if $crate::enabled() {
            static H: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            H.get_or_init(|| $crate::histogram($name)).record($ns);
        }
    };
}

/// Opens an RAII span timer (see [`span`]); the guard records its
/// lifetime into the histogram of the same name and mirrors open/close
/// events to the trace sink. The histogram handle is cached per call
/// site, so neither open nor drop ever takes the registry lock.
#[macro_export]
macro_rules! span {
    ($label:literal) => {{
        static H: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::span_cached($label, &H)
    }};
}

/// [`span!`] with one extra `key: value` attribute on the open and close
/// events; the histogram handle is cached per call site like [`span!`].
#[macro_export]
macro_rules! span_attr {
    ($label:literal, $key:literal, $value:expr) => {{
        static H: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::span_attr_cached($label, &H, $key, $value)
    }};
}

// --- spans ---------------------------------------------------------------

// Per-thread span bookkeeping for the trace sink: `seq` is a monotone
// open-event sequence number (never reused, so a close can name the open
// it pairs with), `depth` is the current nesting level. Spans obey stack
// discipline per thread (RAII guards drop LIFO), which is what makes a
// trace reconstructible from the flat event stream.
thread_local! {
    static NEXT_SEQ: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static DEPTH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// RAII span timer returned by [`span`]. While observability is off the
/// guard is inert: no clock read on open, a single branch on drop.
pub struct SpanGuard {
    label: &'static str,
    /// Start instant and the label's histogram, both resolved at open
    /// (through the per-call-site cache when opened by the macros), so a
    /// drop on the hot path is clock + relaxed atomics — never the
    /// registry lock. `None` while observability is off.
    timed: Option<(Instant, &'static Histogram)>,
    /// The open event's attribute, echoed on the close event so
    /// per-module filtering works on either end of the pair.
    attr: Option<(&'static str, u64)>,
    /// `(seq, depth)` of the traced open event; `None` when the open was
    /// not traced (so the drop never emits a close without its open).
    trace: Option<(u64, u64)>,
}

impl SpanGuard {
    /// The per-thread sequence id of this span's traced open event, or
    /// `None` when the open was not traced (observability off / no sink).
    /// A client uses this as the `parent_span` of the [`TraceContext`] it
    /// sends over the wire, so remote spans point back at the exact local
    /// span that issued the request.
    #[inline]
    pub fn seq(&self) -> Option<u64> {
        self.trace.map(|(seq, _)| seq)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.timed {
            let ns = start.elapsed().as_nanos() as u64;
            hist.record(ns);
            if let Some((seq, depth)) = self.trace {
                DEPTH.with(|d| d.set(depth));
                let t_ns = epoch_ns();
                if trace_on() {
                    let mut fields = vec![
                        ("ev", TraceVal::Str("close")),
                        ("span", TraceVal::Str(self.label)),
                        ("tid", TraceVal::U64(thread_id())),
                        ("seq", TraceVal::U64(seq)),
                        ("depth", TraceVal::U64(depth)),
                        ("t_ns", TraceVal::U64(t_ns)),
                        ("dur_ns", TraceVal::U64(ns)),
                    ];
                    if let Some((k, v)) = self.attr {
                        fields.push((k, TraceVal::Hex(v)));
                    }
                    trace_event(&fields);
                }
                if recorder::recorder_on() {
                    recorder::record_span(
                        recorder::RecKind::Close,
                        self.label,
                        seq,
                        depth,
                        t_ns,
                        ns,
                        self.attr,
                    );
                }
            }
        }
    }
}

/// Opens a span labelled `label`: its drop records the elapsed
/// nanoseconds into the histogram of the same name, and (when a trace
/// sink is active) open/close events with thread id, per-thread sequence
/// id, stack depth, and wall-nanos stream to the JSONL sink.
///
/// Resolves the histogram through the registry lock on every call; hot
/// call sites should prefer the [`span!`] macro, which caches the handle.
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            label,
            timed: None,
            attr: None,
            trace: None,
        };
    }
    span_open(label, histogram(label), None)
}

/// [`span`] with one extra `key: value` attribute on the open **and**
/// close events (e.g. the content hash of the module being embedded). The
/// value is rendered as hex, matching `Module::content_hash` conventions.
#[inline]
pub fn span_attr(label: &'static str, key: &'static str, value: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            label,
            timed: None,
            attr: None,
            trace: None,
        };
    }
    span_open(label, histogram(label), Some((key, value)))
}

/// The [`span!`] macro's entry point: like [`span`], but the histogram
/// handle comes from the macro's per-call-site `OnceLock`, so the
/// registry lock is paid once per call site, not once per span.
#[inline]
pub fn span_cached(
    label: &'static str,
    slot: &'static std::sync::OnceLock<&'static Histogram>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            label,
            timed: None,
            attr: None,
            trace: None,
        };
    }
    span_open(label, slot.get_or_init(|| histogram(label)), None)
}

/// The [`span_attr!`] macro's entry point; see [`span_cached`].
#[inline]
pub fn span_attr_cached(
    label: &'static str,
    slot: &'static std::sync::OnceLock<&'static Histogram>,
    key: &'static str,
    value: u64,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            label,
            timed: None,
            attr: None,
            trace: None,
        };
    }
    span_open(label, slot.get_or_init(|| histogram(label)), Some((key, value)))
}

#[cold]
fn span_open(
    label: &'static str,
    hist: &'static Histogram,
    attr: Option<(&'static str, u64)>,
) -> SpanGuard {
    // Both event sinks share one seq/depth assignment and one clock read:
    // the streaming JSONL sink and the in-memory flight recorder see the
    // same event, so a recorder dump and a live trace are interchangeable
    // inputs to yali-prof.
    let sink = trace_on();
    let rec = recorder::recorder_on();
    let trace = if sink || rec {
        let seq = NEXT_SEQ.with(|s| {
            let v = s.get();
            s.set(v + 1);
            v
        });
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let t_ns = epoch_ns();
        if sink {
            let mut fields = vec![
                ("ev", TraceVal::Str("open")),
                ("span", TraceVal::Str(label)),
                ("tid", TraceVal::U64(thread_id())),
                ("seq", TraceVal::U64(seq)),
                ("depth", TraceVal::U64(depth)),
                ("t_ns", TraceVal::U64(t_ns)),
            ];
            if let Some(ctx) = current_context() {
                fields.push(("trace", TraceVal::Hex(ctx.trace_id)));
                fields.push(("parent", TraceVal::Hex(ctx.parent_span)));
            }
            if let Some((k, v)) = attr {
                fields.push((k, TraceVal::Hex(v)));
            }
            trace_event(&fields);
        }
        if rec {
            recorder::record_span(recorder::RecKind::Open, label, seq, depth, t_ns, 0, attr);
        }
        Some((seq, depth))
    } else {
        None
    };
    SpanGuard {
        label,
        timed: Some((Instant::now(), hist)),
        attr,
        trace,
    }
}

// --- the JSONL trace sink ------------------------------------------------

static TRACE_ON: AtomicBool = AtomicBool::new(false);
// LineWriter, not BufWriter: process exit never runs static destructors,
// so a block-buffered sink would silently drop its final partial buffer
// (unbalanced open/close events) in any binary that does not call
// flush_trace() before exiting.
static TRACE_SINK: Mutex<Option<std::io::LineWriter<std::fs::File>>> = Mutex::new(None);

/// Whether a trace sink is attached (cheap relaxed load).
#[inline]
pub fn trace_on() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

fn init_trace_from_env() {
    if let Ok(path) = std::env::var("YALI_TRACE") {
        if !path.trim().is_empty() {
            set_trace_path(Some(path.trim()));
        }
    }
}

// --- process identity & the trace preamble -------------------------------

static IDENTITY: Mutex<Option<(String, Option<u64>)>> = Mutex::new(None);

/// Stamps the process identity written into the trace preamble: a `role`
/// ("serve", "worker", "client", …) and an optional shard index. Call
/// before attaching a trace sink; unset, the preamble falls back to the
/// `YALI_ROLE` / `YALI_SHARD` environment (which is how `yali-grid run`
/// stamps its spawned workers) and then to role `"main"`.
pub fn set_identity(role: &str, shard: Option<u64>) {
    *IDENTITY.lock().unwrap() = Some((role.to_string(), shard));
}

static SHARD_ONCE: WarnOnce = WarnOnce::new();

/// The effective process identity: programmatic [`set_identity`] wins,
/// then `YALI_ROLE`/`YALI_SHARD`, then `("main", None)`.
pub fn identity() -> (String, Option<u64>) {
    if let Some(id) = IDENTITY.lock().unwrap().clone() {
        return id;
    }
    let role = std::env::var("YALI_ROLE")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| "main".to_string());
    let shard = env_once(
        "YALI_SHARD",
        &SHARD_ONCE,
        "is not a shard index (expected a non-negative integer); omitting the shard stamp",
        |v| match v {
            None => EnvVar::Unset,
            Some(raw) => match raw.trim().parse::<u64>() {
                Ok(n) => EnvVar::Value(n),
                Err(_) => EnvVar::Invalid,
            },
        },
    );
    (role, shard)
}

/// Renders the `{"ev":"preamble",...}` line stamped at the top of every
/// trace file: process identity (`pid` + role + optional shard) and the
/// clock handshake — `t_ns` on the process-local epoch paired with
/// `unix_ns` wall-clock nanoseconds sampled at the same instant, which is
/// what lets `yali-prof merge` align per-process timelines. `unix_ns` is
/// rendered as a hex string (it exceeds 2^53, the exact-integer range of
/// JSON doubles).
fn preamble_line() -> String {
    let (role, shard) = identity();
    let t_ns = epoch_ns();
    let unix_ns = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut fields = vec![
        ("ev", TraceVal::Str("preamble")),
        ("tid", TraceVal::U64(thread_id())),
        ("t_ns", TraceVal::U64(t_ns)),
        ("pid", TraceVal::U64(std::process::id() as u64)),
        ("role", TraceVal::Owned(role)),
    ];
    if let Some(s) = shard {
        fields.push(("shard", TraceVal::U64(s)));
    }
    fields.push(("unix_ns", TraceVal::Hex(unix_ns)));
    render_event(&fields)
}

/// Attaches (or with `None` detaches) the JSONL event sink. The file is
/// truncated and a preamble line stamping the process identity (see
/// [`set_identity`]) is written first; failures to open are reported on
/// stderr and leave tracing off — observability must never take a run
/// down.
pub fn set_trace_path(path: Option<&str>) {
    // The preamble is rendered before the sink lock is taken: identity()
    // may warn(), and warn() takes the sink lock itself.
    let preamble = path.map(|_| preamble_line());
    let mut sink = TRACE_SINK.lock().unwrap();
    if let Some(mut old) = sink.take() {
        let _ = old.flush();
    }
    TRACE_ON.store(false, Ordering::Relaxed);
    if let Some(path) = path {
        match std::fs::File::create(path) {
            Ok(f) => {
                let mut w = std::io::LineWriter::new(f);
                if let Some(p) = &preamble {
                    let _ = w.write_all(p.as_bytes());
                }
                *sink = Some(w);
                TRACE_ON.store(true, Ordering::Relaxed);
            }
            Err(e) => eprintln!("yali-obs: cannot open trace sink {path}: {e}"),
        }
    }
}

/// Flushes buffered trace events to disk (reports call this before
/// reading the file back; process exit does not run static destructors).
pub fn flush_trace() {
    if let Some(w) = TRACE_SINK.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// A value in a trace event.
enum TraceVal {
    Str(&'static str),
    U64(u64),
    Hex(u64),
    Owned(String),
}

fn trace_event(fields: &[(&str, TraceVal)]) {
    let line = render_event(fields);
    if let Some(w) = TRACE_SINK.lock().unwrap().as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

fn render_event(fields: &[(&str, TraceVal)]) -> String {
    let mut line = String::with_capacity(96);
    line.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        line.push_str(k);
        line.push_str("\":");
        match v {
            TraceVal::Str(s) => {
                line.push('"');
                json_escape_into(&mut line, s);
                line.push('"');
            }
            TraceVal::U64(n) => line.push_str(&n.to_string()),
            TraceVal::Hex(n) => {
                line.push('"');
                line.push_str(&format!("{n:#018x}"));
                line.push('"');
            }
            TraceVal::Owned(s) => {
                line.push('"');
                json_escape_into(&mut line, s);
                line.push('"');
            }
        }
    }
    line.push_str("}\n");
    line
}

pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Emits a warning: always mirrored to stderr (misconfiguration must not
/// be silent even with observability off) and, when a sink is attached, a
/// `{"ev":"warn",...}` event.
pub fn warn(msg: &str) {
    eprintln!("yali-obs: warning: {msg}");
    if trace_on() {
        trace_event(&[
            ("ev", TraceVal::Str("warn")),
            ("tid", TraceVal::U64(thread_id())),
            ("t_ns", TraceVal::U64(epoch_ns())),
            ("msg", TraceVal::Owned(msg.to_string())),
        ]);
    }
}

/// Emits a custom event with a label and per-call numeric fields (the
/// parallel pool reports per-region utilization this way). No-op without
/// an attached sink.
pub fn trace_region(label: &'static str, fields: &[(&'static str, u64)]) {
    if !trace_on() {
        return;
    }
    let mut all: Vec<(&str, TraceVal)> = vec![
        ("ev", TraceVal::Str("region")),
        ("label", TraceVal::Str(label)),
        ("tid", TraceVal::U64(thread_id())),
        ("t_ns", TraceVal::U64(epoch_ns())),
    ];
    if let Some(ctx) = current_context() {
        all.push(("trace", TraceVal::Hex(ctx.trace_id)));
        all.push(("parent", TraceVal::Hex(ctx.parent_span)));
    }
    for &(k, v) in fields {
        all.push((k, TraceVal::U64(v)));
    }
    trace_event(&all);
}

// --- thread ids and the process epoch ------------------------------------

static NEXT_TID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u64;
}

/// A small sequential id for the current thread (assigned on first use;
/// `ThreadId` itself has no stable numeric form).
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first observability event of the process — the
/// common clock all trace timestamps share.
pub fn epoch_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// --- YALI_* environment knobs --------------------------------------------
//
// Every engine knob shares one contract: unset means "use the default",
// a parsable value wins, and a set-but-garbage value must warn exactly
// once per process (stderr plus the trace sink) and then behave as
// unset — experiments degrade loudly, they never abort. The three-state
// parse result and the warn-once plumbing live here so the per-knob code
// is only the parse function itself.

/// How one `YALI_*` environment variable parsed. Each knob supplies its
/// own parse function; this is the shared shape of the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvVar<T> {
    /// Variable not set (or an explicit "off" spelling): use the default.
    Unset,
    /// A usable value.
    Value(T),
    /// Set but unusable; the caller warns once and uses the default.
    Invalid,
}

/// One-shot latch backing the warn-once discipline. Declare one
/// `static` per knob and pass it to [`env_once`].
pub struct WarnOnce(AtomicBool);

impl WarnOnce {
    /// A fresh latch (usable in `static` position).
    pub const fn new() -> Self {
        WarnOnce(AtomicBool::new(false))
    }

    /// Emits `msg` through [`warn`] the first time only.
    pub fn warn(&self, msg: &str) {
        if !self.0.swap(true, Ordering::Relaxed) {
            warn(msg);
        }
    }
}

impl Default for WarnOnce {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads the environment variable `name`, runs `parse` on it, and maps
/// the result to `Some(value)` / `None`. An [`EnvVar::Invalid`] parse
/// warns once through `once` as `"NAME="raw" invalid_msg"` — the message
/// fragment states what was expected and what the fallback is.
pub fn env_once<T>(
    name: &str,
    once: &WarnOnce,
    invalid_msg: &str,
    parse: impl FnOnce(Option<&str>) -> EnvVar<T>,
) -> Option<T> {
    let raw = std::env::var(name).ok();
    match parse(raw.as_deref()) {
        EnvVar::Value(v) => Some(v),
        EnvVar::Unset => None,
        EnvVar::Invalid => {
            once.warn(&format!("{name}={:?} {invalid_msg}", raw.unwrap_or_default()));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enabled flag is process-wide, so every test that flips
    // it serializes on this lock and restores `false` before returning.
    static GLOBAL_STATE: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_register_once_and_accumulate() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(true);
        count!("test.counter.a", 2);
        count!("test.counter.a", 3);
        set_enabled(false);
        count!("test.counter.a", 100); // off: must not land
        assert_eq!(counter("test.counter.a").get(), 5);
        let all = Registry::global().counters();
        assert_eq!(all.iter().filter(|(n, _)| n == "test.counter.a").count(), 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(false);
        {
            let _g = span!("test.span.disabled");
        }
        assert_eq!(histogram("test.span.disabled").snapshot("x").count, 0);
    }

    #[test]
    fn enabled_spans_record_duration() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(true);
        {
            let _g = span!("test.span.enabled");
            std::hint::black_box(1 + 1);
        }
        set_enabled(false);
        let snap = histogram("test.span.enabled").snapshot("test.span.enabled");
        assert_eq!(snap.count, 1);
        assert!(snap.sum_ns > 0);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1 << 20);
        h.record(u64::MAX);
        let s = h.snapshot("h");
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 2); // 2 and 3
        assert_eq!(s.buckets[20], 1);
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(s.max_ns, u64::MAX);
        assert!(s.mean_ns() > 0.0);
    }

    #[test]
    fn trace_sink_writes_parseable_lines() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let path = std::env::temp_dir().join("yali_obs_selftest.jsonl");
        let path = path.to_str().unwrap().to_string();
        set_trace_path(Some(&path));
        set_enabled(true);
        {
            let _g = span_attr("test.trace.span", "module", 0xDEAD_BEEF);
        }
        warn("test \"quoted\" warning\nwith newline");
        set_enabled(false);
        set_trace_path(None);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "open + close + warn, got {lines:?}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"span\":\"test.trace.span\""));
        assert!(text.contains("\"module\":\"0x00000000deadbeef\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_zeroes_everything() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(true);
        count!("test.reset.counter", 7);
        record!("test.reset.hist", 123);
        set_enabled(false);
        Registry::global().reset();
        assert_eq!(counter("test.reset.counter").get(), 0);
        assert_eq!(histogram("test.reset.hist").snapshot("x").count, 0);
    }

    #[test]
    fn trace_events_carry_seq_depth_and_attr_on_both_ends() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let path = std::env::temp_dir().join("yali_obs_seqdepth.jsonl");
        let path = path.to_str().unwrap().to_string();
        set_trace_path(Some(&path));
        set_enabled(true);
        {
            let _outer = span!("test.seq.outer");
            let _inner = span_attr("test.seq.inner", "module", 0xABCD);
        }
        {
            let _again = span!("test.seq.outer");
        }
        set_enabled(false);
        set_trace_path(None);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let mut opens: Vec<(String, u64, u64)> = Vec::new();
        let mut closes: Vec<(String, u64, u64, bool)> = Vec::new();
        for line in text.lines() {
            let v = serde_json::from_str(line).expect("trace line parses");
            if !line.contains("test.seq.") {
                continue;
            }
            let span = v["span"].as_str().unwrap().to_string();
            let seq = v["seq"].as_u64().unwrap();
            let depth = v["depth"].as_u64().unwrap();
            match v["ev"].as_str().unwrap() {
                "open" => opens.push((span, seq, depth)),
                "close" => closes.push((span, seq, depth, line.contains("\"module\""))),
                other => panic!("unexpected ev {other}"),
            }
        }
        assert_eq!(opens.len(), 3);
        assert_eq!(closes.len(), 3);
        // Per-thread sequence ids are strictly monotone across opens.
        assert!(opens.windows(2).all(|w| w[0].1 < w[1].1), "{opens:?}");
        // Nesting depth: outer at 0, inner at 1, the second outer at 0.
        assert_eq!(opens[0].2, 0);
        assert_eq!(opens[1].2, 1);
        assert_eq!(opens[2].2, 0);
        // Closes echo the open's seq (inner closes first) and the attr
        // lands on both ends of the attributed span.
        assert_eq!(closes[0].0, "test.seq.inner");
        assert_eq!(closes[0].1, opens[1].1);
        assert!(closes[0].3, "close lost the open's attr");
        assert_eq!(closes[1].0, "test.seq.outer");
        assert_eq!(closes[1].1, opens[0].1);
        assert!(!closes[1].3);
    }

    #[test]
    fn quantiles_estimate_within_one_bucket_and_p100_is_exact() {
        let h = Histogram::new();
        // 100 samples at exactly 100ns: every quantile lives in the
        // [64, 128) bucket, and p100 is the exact max.
        for _ in 0..100 {
            h.record(100);
        }
        let s = h.snapshot("q");
        for q in [0.0, 0.5, 0.95, 0.99] {
            let est = s.quantile(q);
            assert!((64..128).contains(&est), "q={q} est={est}");
        }
        assert_eq!(s.quantile(1.0), 100);

        // A bimodal distribution: 90 fast samples (~1µs), 10 slow (~1ms).
        // p50 must sit in the fast mode's bucket, p95+ in the slow one.
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot("q");
        let p50 = s.quantile(0.5);
        let p95 = s.quantile(0.95);
        assert!((512..1_024).contains(&p50), "p50={p50}");
        assert!((524_288..=1_000_000).contains(&p95), "p95={p95}");
        assert_eq!(s.quantile(1.0), 1_000_000);
        // Quantiles are monotone in q.
        let qs: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn quantile_of_empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot("empty");
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 0);
    }

    #[test]
    fn registry_registers_first_use_once_and_snapshots_stay_sorted() {
        // Out-of-order registration: handles are stable (same pointer on
        // re-lookup) and snapshots come back sorted by name regardless.
        let c1 = counter("test.zzz.order");
        let c2 = counter("test.aaa.order");
        let c3 = counter("test.mmm.order");
        assert!(std::ptr::eq(c1, counter("test.zzz.order")));
        assert!(std::ptr::eq(c2, counter("test.aaa.order")));
        assert!(std::ptr::eq(c3, counter("test.mmm.order")));
        let names: Vec<String> = Registry::global()
            .counters()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counter snapshot must stay name-sorted");
        assert_eq!(
            names.iter().filter(|n| *n == "test.zzz.order").count(),
            1,
            "re-registration must not duplicate"
        );
        let h1 = histogram("test.zzz.hist");
        assert!(std::ptr::eq(h1, histogram("test.zzz.hist")));
        let hnames: Vec<String> = Registry::global()
            .histograms()
            .into_iter()
            .map(|h| h.name)
            .collect();
        let mut hsorted = hnames.clone();
        hsorted.sort();
        assert_eq!(hnames, hsorted, "histogram snapshot must stay name-sorted");
    }

    #[test]
    fn thread_ids_are_small_and_distinct() {
        let a = thread_id();
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
        assert!(a >= 1 && b >= 1);
    }

    fn parse_positive(v: Option<&str>) -> EnvVar<usize> {
        match v {
            None => EnvVar::Unset,
            Some(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => EnvVar::Value(n),
                _ => EnvVar::Invalid,
            },
        }
    }

    #[test]
    fn env_once_maps_the_three_states() {
        static ONCE: WarnOnce = WarnOnce::new();
        // Unset: the variable name is unique to this test, so it is absent.
        assert_eq!(
            env_once("YALI_TEST_ENV_ONCE_UNSET", &ONCE, "msg", parse_positive),
            None
        );
        std::env::set_var("YALI_TEST_ENV_ONCE_VALUE", " 7 ");
        assert_eq!(
            env_once("YALI_TEST_ENV_ONCE_VALUE", &ONCE, "msg", parse_positive),
            Some(7)
        );
        std::env::set_var("YALI_TEST_ENV_ONCE_BAD", "banana");
        assert_eq!(
            env_once("YALI_TEST_ENV_ONCE_BAD", &ONCE, "msg", parse_positive),
            None
        );
    }

    #[test]
    fn trace_context_derivation_is_deterministic_and_unique() {
        let a = TraceContext::derive(42, 0);
        let b = TraceContext::derive(42, 0);
        assert_eq!(a, b, "same seed + stream must derive the same context");
        let mut seen = std::collections::HashSet::new();
        for stream in 0..512u64 {
            assert!(
                seen.insert(TraceContext::derive(42, stream).trace_id),
                "stream {stream} collided"
            );
        }
        assert_ne!(
            TraceContext::derive(42, 1).trace_id,
            TraceContext::derive(43, 1).trace_id
        );
        assert_eq!(a.parent_span, 0);
        assert_eq!(a.with_parent(7).parent_span, 7);
        assert_eq!(a.with_parent(7).trace_id, a.trace_id);
    }

    #[test]
    fn context_guard_nests_and_restores() {
        assert_eq!(current_context(), None);
        let outer = TraceContext::derive(1, 1);
        let inner = TraceContext::derive(1, 2);
        {
            let _a = push_context(outer);
            assert_eq!(current_context(), Some(outer));
            {
                let _b = push_context(inner);
                assert_eq!(current_context(), Some(inner));
            }
            assert_eq!(current_context(), Some(outer));
        }
        assert_eq!(current_context(), None);
    }

    #[test]
    fn spans_carry_the_current_trace_context_and_the_preamble_stamps_identity() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_identity("testrole", Some(3));
        let path = std::env::temp_dir().join("yali_obs_ctx.jsonl");
        let path = path.to_str().unwrap().to_string();
        set_trace_path(Some(&path));
        set_enabled(true);
        let ctx = TraceContext::derive(9, 4).with_parent(11);
        {
            let _g = push_context(ctx);
            let _s = span!("test.ctx.span");
        }
        {
            let _s = span!("test.ctx.bare");
        }
        set_enabled(false);
        set_trace_path(None);
        *IDENTITY.lock().unwrap() = None;
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"ev\":\"preamble\""), "{first}");
        assert!(first.contains("\"role\":\"testrole\""), "{first}");
        assert!(first.contains("\"shard\":3"), "{first}");
        assert!(
            first.contains(&format!("\"pid\":{}", std::process::id())),
            "{first}"
        );
        assert!(first.contains("\"unix_ns\":\"0x"), "{first}");
        let ctx_open = text
            .lines()
            .find(|l| l.contains("test.ctx.span") && l.contains("\"ev\":\"open\""))
            .unwrap();
        assert!(
            ctx_open.contains(&format!("\"trace\":\"{:#018x}\"", ctx.trace_id)),
            "{ctx_open}"
        );
        assert!(
            ctx_open.contains("\"parent\":\"0x000000000000000b\""),
            "{ctx_open}"
        );
        let bare_open = text
            .lines()
            .find(|l| l.contains("test.ctx.bare") && l.contains("\"ev\":\"open\""))
            .unwrap();
        assert!(!bare_open.contains("\"trace\""), "{bare_open}");
    }

    #[test]
    fn warn_once_latches_after_the_first_emission() {
        let once = WarnOnce::new();
        assert!(!once.0.load(Ordering::Relaxed));
        once.warn("test warn-once latch (expected once on stderr)");
        assert!(once.0.load(Ordering::Relaxed));
        // A second warn must be a no-op; the latch stays set.
        once.warn("test warn-once latch (must NOT appear)");
        assert!(once.0.load(Ordering::Relaxed));
    }
}
