//! # yali-obs
//!
//! Zero-overhead-when-off observability for the experiment engine: named
//! atomic **counters**, fixed-bucket latency **histograms**, RAII **span**
//! timers, and a JSONL **trace sink** — with one contract above all:
//! instrumentation must never perturb a result, and when it is off it must
//! cost **one relaxed atomic load per call site**.
//!
//! ## Switching it on
//!
//! Observability is off by default. `YALI_OBS=1` (or any value other than
//! `0`/`off`/`false`) enables the counters, histograms, and spans;
//! [`set_enabled`] does the same programmatically (tests and benches use
//! it to avoid process-global environment races). `YALI_TRACE=<path>` (or
//! [`set_trace_path`]) additionally streams span open/close events as JSON
//! lines, so a run can be replayed into a flamegraph-style timeline.
//!
//! ## Cost model
//!
//! Every entry point begins with [`enabled`], a single
//! `AtomicU8::load(Relaxed)` once the state is initialized. When it
//! returns `false`, [`count!`] is a load plus an untaken branch, and
//! [`span!`] returns an inert guard whose `Drop` is a branch on a bool —
//! no clock reads, no registry locks, no allocation. The
//! `criterion_micro` bench (`obs/count_disabled`, `obs/span_disabled`)
//! measures both at around a nanosecond.
//!
//! ## Naming
//!
//! Names are `&'static str` and registered on first use; handles are
//! leaked (`Box::leak`) so call sites hold `&'static` references and pay
//! the registry lock only once per distinct name per call site (the
//! [`count!`]/[`record!`] macros cache the handle in a `OnceLock`).
//! Dotted lowercase names (`embed.batch`, `par.busy_ns`) group related
//! series; [`Registry::counters`]/[`Registry::histograms`] snapshot
//! everything for `yali_core::report`'s `RUNSTATS.json`.

#![warn(missing_docs)]

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// --- global on/off state -------------------------------------------------

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Whether instrumentation is live. One relaxed atomic load in the steady
/// state; the first call reads `YALI_OBS` (off when unset, `0`, `off`, or
/// `false`).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_state(),
    }
}

#[cold]
fn init_state() -> bool {
    let on = match std::env::var("YALI_OBS") {
        Ok(v) => !matches!(v.trim(), "" | "0" | "off" | "false"),
        Err(_) => false,
    };
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    if on {
        init_trace_from_env();
    }
    on
}

/// Programmatic override of `YALI_OBS` (tests and benches flip this
/// instead of racing on process-global environment variables).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// --- counters ------------------------------------------------------------

/// A named monotonic counter. Handles are `&'static`; bumping is one
/// relaxed `fetch_add`.
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n` (unconditionally — gate hot call sites with [`count!`] or
    /// an explicit [`enabled`] check).
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

// --- histograms ----------------------------------------------------------

/// Power-of-two bucket count: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes 0), up to ~9 minutes
/// in the last bucket.
pub const HIST_BUCKETS: usize = 40;

/// A fixed-bucket histogram of nanosecond samples with exact sum/count
/// (so mean phase wall time is exact even though the distribution is
/// bucketed).
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample (unconditionally — gate hot call
    /// sites with [`record!`] or an explicit [`enabled`] check).
    #[inline]
    pub fn record(&self, ns: u64) {
        let idx = (63 - (ns | 1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self, name: &str) -> HistSnapshot {
        HistSnapshot {
            name: name.to_string(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            max_ns: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Registered name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// Power-of-two bucket counts (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

// --- the registry --------------------------------------------------------

/// The process-wide name → counter/histogram registry.
pub struct Registry {
    counters: Mutex<Vec<(&'static str, &'static Counter)>>,
    hists: Mutex<Vec<(&'static str, &'static Histogram)>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// The global registry.
    pub fn global() -> &'static Registry {
        REGISTRY.get_or_init(|| Registry {
            counters: Mutex::new(Vec::new()),
            hists: Mutex::new(Vec::new()),
        })
    }

    /// Sorted snapshot of every counter (zero-valued ones included: a
    /// registered-but-idle series is information, not noise).
    pub fn counters(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect();
        out.sort();
        out
    }

    /// Sorted snapshot of every histogram.
    pub fn histograms(&self) -> Vec<HistSnapshot> {
        let mut out: Vec<HistSnapshot> = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Zeroes every counter and histogram (report scoping and tests;
    /// registered handles stay valid).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().unwrap().iter() {
            c.v.store(0, Ordering::Relaxed);
        }
        for (_, h) in self.hists.lock().unwrap().iter() {
            h.reset();
        }
    }
}

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let reg = Registry::global();
    let mut counters = reg.counters.lock().unwrap();
    if let Some((_, c)) = counters.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        v: AtomicU64::new(0),
    }));
    counters.push((name, c));
    c
}

/// Returns (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let reg = Registry::global();
    let mut hists = reg.hists.lock().unwrap();
    if let Some((_, h)) = hists.iter().find(|(n, _)| *n == name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    hists.push((name, h));
    h
}

/// Bumps the named counter by `n` when observability is on; a relaxed
/// load and an untaken branch when off. The handle is cached per call
/// site, so the registry lock is paid once.
#[macro_export]
macro_rules! count {
    ($name:literal, $n:expr) => {
        if $crate::enabled() {
            static H: ::std::sync::OnceLock<&'static $crate::Counter> =
                ::std::sync::OnceLock::new();
            H.get_or_init(|| $crate::counter($name)).add($n);
        }
    };
}

/// Records a nanosecond sample into the named histogram when observability
/// is on; a relaxed load and an untaken branch when off.
#[macro_export]
macro_rules! record {
    ($name:literal, $ns:expr) => {
        if $crate::enabled() {
            static H: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            H.get_or_init(|| $crate::histogram($name)).record($ns);
        }
    };
}

/// Opens an RAII span timer (see [`span`]); the guard records its
/// lifetime into the histogram of the same name and mirrors open/close
/// events to the trace sink.
#[macro_export]
macro_rules! span {
    ($label:literal) => {
        $crate::span($label)
    };
}

// --- spans ---------------------------------------------------------------

/// RAII span timer returned by [`span`]. While observability is off the
/// guard is inert: no clock read on open, a single branch on drop.
pub struct SpanGuard {
    label: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            histogram(self.label).record(ns);
            if trace_on() {
                trace_event(&[
                    ("ev", TraceVal::Str("close")),
                    ("span", TraceVal::Str(self.label)),
                    ("tid", TraceVal::U64(thread_id())),
                    ("t_ns", TraceVal::U64(epoch_ns())),
                    ("dur_ns", TraceVal::U64(ns)),
                ]);
            }
        }
    }
}

/// Opens a span labelled `label`: its drop records the elapsed
/// nanoseconds into the histogram of the same name, and (when a trace
/// sink is active) open/close events with thread id and wall-nanos stream
/// to the JSONL sink.
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { label, start: None };
    }
    span_open(label, None)
}

/// [`span`] with one extra `key: value` attribute on the open event
/// (e.g. the content hash of the module being embedded). The value is
/// rendered as hex, matching `Module::content_hash` conventions.
#[inline]
pub fn span_attr(label: &'static str, key: &'static str, value: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { label, start: None };
    }
    span_open(label, Some((key, value)))
}

#[cold]
fn span_open(label: &'static str, attr: Option<(&'static str, u64)>) -> SpanGuard {
    if trace_on() {
        match attr {
            Some((k, v)) => trace_event(&[
                ("ev", TraceVal::Str("open")),
                ("span", TraceVal::Str(label)),
                ("tid", TraceVal::U64(thread_id())),
                ("t_ns", TraceVal::U64(epoch_ns())),
                (k, TraceVal::Hex(v)),
            ]),
            None => trace_event(&[
                ("ev", TraceVal::Str("open")),
                ("span", TraceVal::Str(label)),
                ("tid", TraceVal::U64(thread_id())),
                ("t_ns", TraceVal::U64(epoch_ns())),
            ]),
        }
    }
    SpanGuard {
        label,
        start: Some(Instant::now()),
    }
}

// --- the JSONL trace sink ------------------------------------------------

static TRACE_ON: AtomicBool = AtomicBool::new(false);
// LineWriter, not BufWriter: process exit never runs static destructors,
// so a block-buffered sink would silently drop its final partial buffer
// (unbalanced open/close events) in any binary that does not call
// flush_trace() before exiting.
static TRACE_SINK: Mutex<Option<std::io::LineWriter<std::fs::File>>> = Mutex::new(None);

/// Whether a trace sink is attached (cheap relaxed load).
#[inline]
pub fn trace_on() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

fn init_trace_from_env() {
    if let Ok(path) = std::env::var("YALI_TRACE") {
        if !path.trim().is_empty() {
            set_trace_path(Some(path.trim()));
        }
    }
}

/// Attaches (or with `None` detaches) the JSONL event sink. The file is
/// truncated; failures to open are reported on stderr and leave tracing
/// off — observability must never take a run down.
pub fn set_trace_path(path: Option<&str>) {
    let mut sink = TRACE_SINK.lock().unwrap();
    if let Some(mut old) = sink.take() {
        let _ = old.flush();
    }
    TRACE_ON.store(false, Ordering::Relaxed);
    if let Some(path) = path {
        match std::fs::File::create(path) {
            Ok(f) => {
                *sink = Some(std::io::LineWriter::new(f));
                TRACE_ON.store(true, Ordering::Relaxed);
            }
            Err(e) => eprintln!("yali-obs: cannot open trace sink {path}: {e}"),
        }
    }
}

/// Flushes buffered trace events to disk (reports call this before
/// reading the file back; process exit does not run static destructors).
pub fn flush_trace() {
    if let Some(w) = TRACE_SINK.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// A value in a trace event.
enum TraceVal {
    Str(&'static str),
    U64(u64),
    Hex(u64),
    Owned(String),
}

fn trace_event(fields: &[(&str, TraceVal)]) {
    let mut line = String::with_capacity(96);
    line.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        line.push_str(k);
        line.push_str("\":");
        match v {
            TraceVal::Str(s) => {
                line.push('"');
                json_escape_into(&mut line, s);
                line.push('"');
            }
            TraceVal::U64(n) => line.push_str(&n.to_string()),
            TraceVal::Hex(n) => {
                line.push('"');
                line.push_str(&format!("{n:#018x}"));
                line.push('"');
            }
            TraceVal::Owned(s) => {
                line.push('"');
                json_escape_into(&mut line, s);
                line.push('"');
            }
        }
    }
    line.push_str("}\n");
    if let Some(w) = TRACE_SINK.lock().unwrap().as_mut() {
        let _ = w.write_all(line.as_bytes());
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Emits a warning: always mirrored to stderr (misconfiguration must not
/// be silent even with observability off) and, when a sink is attached, a
/// `{"ev":"warn",...}` event.
pub fn warn(msg: &str) {
    eprintln!("yali-obs: warning: {msg}");
    if trace_on() {
        trace_event(&[
            ("ev", TraceVal::Str("warn")),
            ("tid", TraceVal::U64(thread_id())),
            ("t_ns", TraceVal::U64(epoch_ns())),
            ("msg", TraceVal::Owned(msg.to_string())),
        ]);
    }
}

/// Emits a custom event with a label and per-call numeric fields (the
/// parallel pool reports per-region utilization this way). No-op without
/// an attached sink.
pub fn trace_region(label: &'static str, fields: &[(&'static str, u64)]) {
    if !trace_on() {
        return;
    }
    let mut all: Vec<(&str, TraceVal)> = vec![
        ("ev", TraceVal::Str("region")),
        ("label", TraceVal::Str(label)),
        ("tid", TraceVal::U64(thread_id())),
        ("t_ns", TraceVal::U64(epoch_ns())),
    ];
    for &(k, v) in fields {
        all.push((k, TraceVal::U64(v)));
    }
    trace_event(&all);
}

// --- thread ids and the process epoch ------------------------------------

static NEXT_TID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed) as u64;
}

/// A small sequential id for the current thread (assigned on first use;
/// `ThreadId` itself has no stable numeric form).
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first observability event of the process — the
/// common clock all trace timestamps share.
pub fn epoch_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enabled flag is process-wide, so every test that flips
    // it serializes on this lock and restores `false` before returning.
    static GLOBAL_STATE: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_register_once_and_accumulate() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(true);
        count!("test.counter.a", 2);
        count!("test.counter.a", 3);
        set_enabled(false);
        count!("test.counter.a", 100); // off: must not land
        assert_eq!(counter("test.counter.a").get(), 5);
        let all = Registry::global().counters();
        assert_eq!(all.iter().filter(|(n, _)| n == "test.counter.a").count(), 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(false);
        {
            let _g = span!("test.span.disabled");
        }
        assert_eq!(histogram("test.span.disabled").snapshot("x").count, 0);
    }

    #[test]
    fn enabled_spans_record_duration() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(true);
        {
            let _g = span!("test.span.enabled");
            std::hint::black_box(1 + 1);
        }
        set_enabled(false);
        let snap = histogram("test.span.enabled").snapshot("test.span.enabled");
        assert_eq!(snap.count, 1);
        assert!(snap.sum_ns > 0);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1 << 20);
        h.record(u64::MAX);
        let s = h.snapshot("h");
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 2); // 2 and 3
        assert_eq!(s.buckets[20], 1);
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1);
        assert_eq!(s.max_ns, u64::MAX);
        assert!(s.mean_ns() > 0.0);
    }

    #[test]
    fn trace_sink_writes_parseable_lines() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let path = std::env::temp_dir().join("yali_obs_selftest.jsonl");
        let path = path.to_str().unwrap().to_string();
        set_trace_path(Some(&path));
        set_enabled(true);
        {
            let _g = span_attr("test.trace.span", "module", 0xDEAD_BEEF);
        }
        warn("test \"quoted\" warning\nwith newline");
        set_enabled(false);
        set_trace_path(None);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "open + close + warn, got {lines:?}");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"span\":\"test.trace.span\""));
        assert!(text.contains("\"module\":\"0x00000000deadbeef\""));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\\n"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reset_zeroes_everything() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        set_enabled(true);
        count!("test.reset.counter", 7);
        record!("test.reset.hist", 123);
        set_enabled(false);
        Registry::global().reset();
        assert_eq!(counter("test.reset.counter").get(), 0);
        assert_eq!(histogram("test.reset.hist").snapshot("x").count, 0);
    }

    #[test]
    fn thread_ids_are_small_and_distinct() {
        let a = thread_id();
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
        assert!(a >= 1 && b >= 1);
    }
}
