//! The flight recorder: an always-on, fixed-memory ring of recent span
//! open/close events, dumpable on demand as a JSONL trace that
//! `yali-prof` consumes unchanged.
//!
//! ## Why a second sink
//!
//! The `YALI_TRACE` sink streams every event to disk — perfect for a
//! bounded run, unusable for a daemon that never exits. The recorder
//! inverts the trade: each thread writes span events into its own
//! fixed-capacity ring buffer, newest events overwrite oldest, and memory
//! is bounded at `cap * 80` bytes per thread forever. When something goes
//! wrong (an SLO breach, a queue overflow, an operator asking), the rings
//! are drained into the same JSONL schema the trace sink writes, so every
//! existing `yali-prof` view works on the last few thousand spans leading
//! up to the incident.
//!
//! ## Concurrency design
//!
//! Each ring has exactly **one writer** — the thread that owns it — and
//! readers that never block it. A slot is published seqlock-style: the
//! writer stamps the slot odd (`2*i + 1`), stores the payload, then stamps
//! it even (`2*i + 2`). A reader accepts a slot only if it observes the
//! even stamp for the exact event index before *and* after copying the
//! payload; a torn or overwritten slot is counted as dropped, never
//! misreported. The write path is a handful of relaxed stores plus two
//! fences — no locks, no allocation after the first event.
//!
//! Dropped events are always the **oldest**: overwriting advances from the
//! tail, so what survives a dump is a suffix of each thread's history.
//! Because a suffix can open with closes whose opens are gone (or end with
//! opens whose closes have not happened yet), [`dump`] repairs each
//! thread's stream — unmatched closes and still-open spans are dropped and
//! counted, depths are recomputed — so the output *always* satisfies
//! `yali-prof`'s strict parser.
//!
//! Like the trace sink, the recorder only sees spans while [`enabled`]
//! observability is on; [`set_recorder`] arms it with a per-thread
//! capacity.
//!
//! [`enabled`]: crate::enabled

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::{epoch_ns, json_escape_into, thread_id};

/// Default per-thread ring capacity in events (~320 KiB per thread).
pub const DEFAULT_RECORDER_CAP: usize = 4096;

/// Payload words per slot (see [`RecEvent`] encoding).
const WORDS: usize = 8;

/// `attr_key` value meaning "no attribute".
const NO_ATTR: u64 = u64::MAX;

// --- events --------------------------------------------------------------

/// Whether a recorded event opened or closed a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecKind {
    /// Span open.
    Open,
    /// Span close.
    Close,
}

/// One recorded span event, label and attribute key interned as indices
/// into the global label table (see [`label_table`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecEvent {
    /// Open or close.
    pub kind: RecKind,
    /// Index into the label table.
    pub label: u32,
    /// Per-thread monotone open-sequence id (closes echo their open's).
    pub seq: u64,
    /// Nesting depth at the time of recording.
    pub depth: u64,
    /// Timestamp, nanoseconds since the process observability epoch.
    pub t_ns: u64,
    /// Span duration (closes only; 0 on opens).
    pub dur_ns: u64,
    /// Attribute key as a label-table index, or `None`.
    pub attr_key: Option<u32>,
    /// Attribute value (meaningful only with `attr_key`).
    pub attr_val: u64,
}

impl RecEvent {
    fn encode(&self) -> [u64; WORDS] {
        [
            match self.kind {
                RecKind::Open => 1,
                RecKind::Close => 2,
            },
            self.label as u64,
            self.seq,
            self.depth,
            self.t_ns,
            self.dur_ns,
            self.attr_key.map_or(NO_ATTR, |k| k as u64),
            self.attr_val,
        ]
    }

    fn decode(w: [u64; WORDS]) -> Option<RecEvent> {
        let kind = match w[0] {
            1 => RecKind::Open,
            2 => RecKind::Close,
            _ => return None,
        };
        Some(RecEvent {
            kind,
            label: u32::try_from(w[1]).ok()?,
            seq: w[2],
            depth: w[3],
            t_ns: w[4],
            dur_ns: w[5],
            attr_key: if w[6] == NO_ATTR {
                None
            } else {
                Some(u32::try_from(w[6]).ok()?)
            },
            attr_val: w[7],
        })
    }
}

// --- the per-thread ring -------------------------------------------------

struct Slot {
    /// `2*i + 1` while event `i` is being written, `2*i + 2` once it is
    /// published, 0 before first use.
    stamp: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// A single-writer, multi-reader ring of span events. Public so the test
/// suites can drive wraparound and torn-read behavior directly; normal
/// code reaches it only through the span machinery and [`dump`].
pub struct Ring {
    tid: u64,
    cap: usize,
    /// Events pushed over the ring's lifetime; event `i` lives in slot
    /// `i % cap` until overwritten.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    /// A fresh ring for thread `tid` holding the last `cap` events
    /// (`cap >= 1` enforced).
    pub fn new(tid: u64, cap: usize) -> Ring {
        let cap = cap.max(1);
        let slots = (0..cap)
            .map(|_| Slot {
                stamp: AtomicU64::new(0),
                words: [const { AtomicU64::new(0) }; WORDS],
            })
            .collect();
        Ring {
            tid,
            cap,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// The owning thread's id.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Events pushed over the ring's lifetime (not the number retained).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one event. **Single-writer**: only the owning thread may
    /// call this; concurrent readers are handled by the slot stamps.
    pub fn push(&self, ev: &RecEvent) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i % self.cap as u64) as usize];
        slot.stamp.store(2 * i + 1, Ordering::Relaxed);
        // Release fence: the payload stores below must not be reordered
        // before the odd stamp (crossbeam's seqlock write protocol).
        fence(Ordering::Release);
        let w = ev.encode();
        for (s, v) in slot.words.iter().zip(w) {
            s.store(v, Ordering::Relaxed);
        }
        slot.stamp.store(2 * i + 2, Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Snapshots the retained events in push order, plus the number of
    /// events lost (overwritten before this read, or torn by a concurrent
    /// write mid-copy). `pushed() == events.len() + dropped` always holds
    /// for the values returned together.
    pub fn read(&self) -> (Vec<RecEvent>, u64) {
        let end = self.head.load(Ordering::Acquire);
        let start = end.saturating_sub(self.cap as u64);
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut lost = start;
        for i in start..end {
            let slot = &self.slots[(i % self.cap as u64) as usize];
            let want = 2 * i + 2;
            if slot.stamp.load(Ordering::Acquire) != want {
                lost += 1;
                continue;
            }
            let mut w = [0u64; WORDS];
            for (v, s) in w.iter_mut().zip(slot.words.iter()) {
                *v = s.load(Ordering::Relaxed);
            }
            // Acquire fence before re-checking the stamp: the payload
            // loads above must not be reordered after it.
            fence(Ordering::Acquire);
            if slot.stamp.load(Ordering::Relaxed) != want {
                lost += 1;
                continue;
            }
            match RecEvent::decode(w) {
                Some(ev) => out.push(ev),
                None => lost += 1,
            }
        }
        (out, lost)
    }
}

// --- global recorder state -----------------------------------------------

/// Per-thread ring capacity; 0 means the recorder is off.
static CAP: AtomicUsize = AtomicUsize::new(0);

/// Every ring ever created, so a dump can reach threads other than the
/// dumper's (rings are kept alive for the life of the process — thread
/// exit must not lose the events leading up to it).
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// The label intern table: index ↔ `&'static str`. Shared by span labels
/// and attribute keys.
static LABELS: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's ring, created lazily at its first recorded event
    /// (with whatever capacity was set at that moment — a later
    /// `set_recorder` resizes only rings created afterwards).
    static MY_RING: std::cell::RefCell<Option<Arc<Ring>>> =
        const { std::cell::RefCell::new(None) };
    /// Pointer → label-id cache so the steady-state intern is a short
    /// linear scan over this thread's few distinct labels, not a lock.
    static LABEL_CACHE: std::cell::RefCell<Vec<(usize, u32)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Arms the recorder with a per-thread ring capacity in events
/// (`Some(0)`/`None` disarm it). Rings already created keep their
/// capacity; new threads pick up the new value.
pub fn set_recorder(cap: Option<usize>) {
    CAP.store(cap.unwrap_or(0), Ordering::Relaxed);
}

/// Whether the recorder is armed (one relaxed load).
#[inline]
pub fn recorder_on() -> bool {
    CAP.load(Ordering::Relaxed) != 0
}

/// Interns a `&'static str` into the global label table, returning its
/// index. Two distinct statics with equal text intern to one id.
fn intern(s: &'static str) -> u32 {
    let ptr = s.as_ptr() as usize;
    LABEL_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(&(_, id)) = cache.iter().find(|&&(p, _)| p == ptr) {
            return id;
        }
        let mut table = LABELS.lock().unwrap();
        let id = match table.iter().position(|&t| t == s) {
            Some(i) => i as u32,
            None => {
                table.push(s);
                (table.len() - 1) as u32
            }
        };
        drop(table);
        cache.push((ptr, id));
        id
    })
}

/// Snapshot of the label intern table (index `i` is label id `i`).
pub fn label_table() -> Vec<&'static str> {
    LABELS.lock().unwrap().clone()
}

/// Records one span event into the calling thread's ring (creating and
/// registering the ring on first use). Called from the span machinery
/// when [`recorder_on`]; cheap relative to the clock reads around it.
pub(crate) fn record_span(
    kind: RecKind,
    label: &'static str,
    seq: u64,
    depth: u64,
    t_ns: u64,
    dur_ns: u64,
    attr: Option<(&'static str, u64)>,
) {
    let ev = RecEvent {
        kind,
        label: intern(label),
        seq,
        depth,
        t_ns,
        dur_ns,
        attr_key: attr.map(|(k, _)| intern(k)),
        attr_val: attr.map_or(0, |(_, v)| v),
    };
    MY_RING.with(|r| {
        let mut r = r.borrow_mut();
        if r.is_none() {
            let ring = Arc::new(Ring::new(thread_id(), CAP.load(Ordering::Relaxed)));
            RINGS.lock().unwrap().push(Arc::clone(&ring));
            *r = Some(ring);
        }
        r.as_ref().unwrap().push(&ev);
    });
}

// --- stats and dumping ---------------------------------------------------

/// Live recorder occupancy (no repair, no rendering — cheap enough for a
/// metrics reply).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Events pushed across all rings over the process lifetime.
    pub events: u64,
    /// Of those, events no longer retained (overwritten).
    pub dropped: u64,
    /// Threads that have recorded at least one event.
    pub threads: u64,
}

/// Sums push/drop counts across every ring.
pub fn recorder_stats() -> RecorderStats {
    let rings = RINGS.lock().unwrap();
    let mut s = RecorderStats {
        threads: rings.len() as u64,
        ..RecorderStats::default()
    };
    for ring in rings.iter() {
        let pushed = ring.pushed();
        s.events += pushed;
        s.dropped += pushed.saturating_sub(ring.cap as u64).min(pushed);
    }
    s
}

/// What a dump kept and what it had to repair away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DumpStats {
    /// Events rendered into the dump.
    pub events: u64,
    /// Events lost before the dump: overwritten or torn in the rings.
    pub dropped: u64,
    /// Closes whose opens were overwritten (repaired away).
    pub orphan_closes: u64,
    /// Opens still in flight at dump time (repaired away; their completed
    /// children are kept).
    pub unclosed_opens: u64,
    /// Threads contributing events.
    pub threads: u64,
}

/// Drains every ring into a JSONL trace (strict-parser clean, see
/// [`render_dump`]) prefixed with a `{"ev":"recorder",...}` meta line
/// carrying the [`DumpStats`] plus, for every thread whose ring wrapped
/// (or tore) events away before the dump, a `"dropped_tid<N>":<count>`
/// field — so `yali-prof` can report per-thread coverage instead of one
/// fleet-wide number. The rings keep recording throughout — a dump is a
/// snapshot, not a reset.
pub fn dump() -> (String, DumpStats) {
    let rings: Vec<Arc<Ring>> = RINGS.lock().unwrap().clone();
    let threads: Vec<(u64, Vec<RecEvent>, u64)> = rings
        .iter()
        .map(|r| {
            let (evs, lost) = r.read();
            (r.tid(), evs, lost)
        })
        .collect();
    let labels = label_table();
    let (body, stats) = render_dump(&threads, &labels);
    let mut per_thread: Vec<(u64, u64)> = threads
        .iter()
        .filter(|(_, _, lost)| *lost > 0)
        .map(|(tid, _, lost)| (*tid, *lost))
        .collect();
    per_thread.sort_unstable();
    let meta = render_meta_line(thread_id(), epoch_ns(), &stats, &per_thread);
    (meta + &body, stats)
}

/// Renders the dump's `{"ev":"recorder",...}` meta line. Pure, so the
/// per-thread drop accounting is directly unit-testable; `per_thread`
/// must be sorted by tid and list only threads that actually lost events.
pub fn render_meta_line(
    dump_tid: u64,
    t_ns: u64,
    stats: &DumpStats,
    per_thread: &[(u64, u64)],
) -> String {
    let mut meta = format!(
        "{{\"ev\":\"recorder\",\"tid\":{},\"t_ns\":{},\"events\":{},\"dropped\":{},\"orphan_closes\":{},\"unclosed_opens\":{},\"threads\":{}",
        dump_tid,
        t_ns,
        stats.events,
        stats.dropped,
        stats.orphan_closes,
        stats.unclosed_opens,
        stats.threads,
    );
    for (tid, lost) in per_thread {
        meta.push_str(&format!(",\"dropped_tid{tid}\":{lost}"));
    }
    meta.push_str("}\n");
    meta
}

/// Renders per-thread event streams into strict-parser-clean JSONL.
///
/// Pure (no globals, no clock), so the repair logic is directly
/// proptestable. Each thread's retained events are a suffix of its true
/// history, repaired in two passes: pass one pairs closes with opens on a
/// simulated stack — a close whose open was overwritten is dropped as an
/// orphan, and pairing down the stack discards opens whose closes were
/// lost; pass two re-renders the survivors with depths recomputed from
/// the surviving nesting (original `seq`s are kept: a subsequence of a
/// strictly increasing sequence is still strictly increasing).
pub fn render_dump(threads: &[(u64, Vec<RecEvent>, u64)], labels: &[&str]) -> (String, DumpStats) {
    let mut out = String::new();
    let mut stats = DumpStats::default();
    for (tid, events, lost) in threads {
        stats.dropped += lost;
        if events.is_empty() {
            continue;
        }
        stats.threads += 1;
        // Pass 1: decide which events survive.
        let mut keep = vec![false; events.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match ev.kind {
                RecKind::Open => stack.push(i),
                RecKind::Close => {
                    // The matching open, if it survived, is on the stack;
                    // anything stacked above it lost its close (e.g. to a
                    // torn slot) and is discarded with it.
                    match stack
                        .iter()
                        .rposition(|&j| events[j].label == ev.label && events[j].seq == ev.seq)
                    {
                        Some(pos) => {
                            stats.unclosed_opens += (stack.len() - pos - 1) as u64;
                            keep[stack[pos]] = true;
                            keep[i] = true;
                            stack.truncate(pos);
                        }
                        None => stats.orphan_closes += 1,
                    }
                }
            }
        }
        stats.unclosed_opens += stack.len() as u64;
        // Pass 2: render survivors, recomputing depth from the surviving
        // nesting.
        let mut depth = 0u64;
        for (i, ev) in events.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let label = match labels.get(ev.label as usize) {
                Some(l) => *l,
                None => {
                    // A label id the table does not know (torn write that
                    // still decoded): drop the event rather than emit an
                    // unparseable line. Pairing guarantees its partner has
                    // the same id, so nesting stays balanced.
                    stats.dropped += 1;
                    continue;
                }
            };
            let (ev_name, line_depth) = match ev.kind {
                RecKind::Open => {
                    let d = depth;
                    depth += 1;
                    ("open", d)
                }
                RecKind::Close => {
                    depth -= 1;
                    ("close", depth)
                }
            };
            out.push_str("{\"ev\":\"");
            out.push_str(ev_name);
            out.push_str("\",\"span\":\"");
            json_escape_into(&mut out, label);
            out.push_str("\",\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"seq\":");
            out.push_str(&ev.seq.to_string());
            out.push_str(",\"depth\":");
            out.push_str(&line_depth.to_string());
            out.push_str(",\"t_ns\":");
            out.push_str(&ev.t_ns.to_string());
            if ev.kind == RecKind::Close {
                out.push_str(",\"dur_ns\":");
                out.push_str(&ev.dur_ns.to_string());
            }
            if let Some(k) = ev.attr_key {
                if let Some(key) = labels.get(k as usize) {
                    out.push_str(",\"");
                    json_escape_into(&mut out, key);
                    out.push_str("\":\"");
                    out.push_str(&format!("{:#018x}", ev.attr_val));
                    out.push('"');
                }
            }
            out.push_str("}\n");
            stats.events += 1;
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(label: u32, seq: u64, t: u64) -> RecEvent {
        RecEvent {
            kind: RecKind::Open,
            label,
            seq,
            depth: 0,
            t_ns: t,
            dur_ns: 0,
            attr_key: None,
            attr_val: 0,
        }
    }

    fn close(label: u32, seq: u64, t: u64, dur: u64) -> RecEvent {
        RecEvent {
            kind: RecKind::Close,
            label,
            seq,
            depth: 0,
            t_ns: t,
            dur_ns: dur,
            attr_key: None,
            attr_val: 0,
        }
    }

    #[test]
    fn ring_retains_a_suffix_and_counts_drops_truthfully() {
        let ring = Ring::new(7, 4);
        for i in 0..10u64 {
            ring.push(&open(0, i, i * 100));
        }
        let (events, lost) = ring.read();
        assert_eq!(events.len(), 4);
        assert_eq!(lost, 6);
        assert_eq!(ring.pushed(), events.len() as u64 + lost);
        // Oldest-first drops: what survives is exactly the newest suffix.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_under_capacity_loses_nothing() {
        let ring = Ring::new(1, 8);
        ring.push(&open(3, 0, 5));
        ring.push(&close(3, 0, 9, 4));
        let (events, lost) = ring.read();
        assert_eq!(lost, 0);
        assert_eq!(events, vec![open(3, 0, 5), close(3, 0, 9, 4)]);
    }

    #[test]
    fn event_words_round_trip() {
        let ev = RecEvent {
            kind: RecKind::Close,
            label: 9,
            seq: 1 << 40,
            depth: 3,
            t_ns: u64::MAX - 1,
            dur_ns: 12345,
            attr_key: Some(2),
            attr_val: 0xDEAD_BEEF,
        };
        assert_eq!(RecEvent::decode(ev.encode()), Some(ev));
        assert_eq!(RecEvent::decode([0; WORDS]), None, "unwritten slot");
    }

    #[test]
    fn render_pairs_survivors_and_recomputes_depth() {
        // Suffix starting mid-stream: an orphan close (its open was
        // overwritten), then a balanced pair, then a still-open span with
        // a completed child.
        let events = vec![
            close(0, 10, 100, 50),    // orphan: open overwritten
            open(1, 11, 110),         // balanced pair at depth 0
            close(1, 11, 120, 10),    // ...
            open(2, 12, 130),         // never closes (in flight)
            open(0, 13, 140),         // its completed child survives
            close(0, 13, 150, 10),    // ...
        ];
        let labels = ["a", "b", "c"];
        let (text, stats) = render_dump(&[(1, events, 3)], &labels);
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.orphan_closes, 1);
        assert_eq!(stats.unclosed_opens, 1);
        assert_eq!(stats.events, 4);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // The surviving child re-renders at depth 0, not its original 1+.
        assert!(lines[2].contains("\"span\":\"a\"") && lines[2].contains("\"depth\":0"));
        assert!(lines[3].contains("\"dur_ns\":10"));
    }

    #[test]
    fn render_discards_opens_whose_close_was_torn_away() {
        // open a, open b, close a — "close b" was lost to a torn slot, so
        // pairing "close a" down the stack must discard b's open.
        let events = vec![
            open(0, 0, 10),
            open(1, 1, 20),
            close(0, 0, 40, 30),
        ];
        let (text, stats) = render_dump(&[(1, events, 1)], &["a", "b"]);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.unclosed_opens, 1);
        assert_eq!(stats.orphan_closes, 0);
        assert!(!text.contains("\"span\":\"b\""));
    }

    #[test]
    fn meta_line_accounts_wrap_drops_per_thread() {
        let stats = DumpStats {
            events: 10,
            dropped: 7,
            orphan_closes: 1,
            unclosed_opens: 2,
            threads: 3,
        };
        let meta = render_meta_line(4, 999, &stats, &[(2, 5), (9, 2)]);
        assert!(meta.ends_with('\n'));
        assert!(meta.contains("\"ev\":\"recorder\""));
        assert!(meta.contains("\"dropped\":7"));
        assert!(meta.contains("\"dropped_tid2\":5"), "{meta}");
        assert!(meta.contains("\"dropped_tid9\":2"), "{meta}");
        // No wrap drops: the meta line carries no per-thread fields.
        let clean = render_meta_line(4, 999, &stats, &[]);
        assert!(!clean.contains("dropped_tid"), "{clean}");
    }

    #[test]
    fn armed_flag_follows_capacity() {
        // CAP is process-global; restore the disarmed default for other
        // tests in this binary.
        set_recorder(Some(16));
        assert!(recorder_on());
        set_recorder(Some(0));
        assert!(!recorder_on());
        set_recorder(None);
        assert!(!recorder_on());
    }

    #[test]
    fn intern_is_stable_and_shared_across_equal_text() {
        let a = intern("recorder.test.intern.x");
        let b = intern("recorder.test.intern.y");
        assert_ne!(a, b);
        assert_eq!(intern("recorder.test.intern.x"), a);
        let table = label_table();
        assert_eq!(table[a as usize], "recorder.test.intern.x");
        assert_eq!(table[b as usize], "recorder.test.intern.y");
    }

    #[test]
    fn concurrent_reads_during_writes_never_misreport() {
        // One writer hammering a tiny ring, one reader snapshotting: every
        // event a read returns must be internally consistent (the seq the
        // writer really pushed for that label), and pushed == kept + lost.
        let ring = Arc::new(Ring::new(1, 8));
        let w = Arc::clone(&ring);
        let writer = std::thread::spawn(move || {
            for i in 0..20_000u64 {
                // seq and t_ns move in lockstep; a torn read would break it.
                w.push(&open(0, i, i * 3));
            }
        });
        let mut reads = 0u64;
        while reads < 200 {
            let (events, lost) = ring.read();
            assert!(events.len() as u64 + lost <= 20_000 + 8);
            for ev in &events {
                assert_eq!(ev.t_ns, ev.seq * 3, "torn read leaked through");
            }
            // Events come back in push order.
            assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
            reads += 1;
        }
        writer.join().unwrap();
        let (events, lost) = ring.read();
        assert_eq!(events.len() as u64 + lost, 20_000);
    }
}
