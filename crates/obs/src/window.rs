//! Sliding-window metrics: epoch-ring histograms and counters for live
//! telemetry ("what is p99 *right now*", not "what was p99 since boot").
//!
//! A window is a ring of `epochs` fixed-width buckets of `epoch_ns` each;
//! a sample recorded at time `t` lands in epoch `t / epoch_ns`, and a
//! snapshot taken at time `now` merges the epochs in the half-open window
//! `(now/epoch_ns - epochs, now/epoch_ns]` — everything older has expired
//! (its ring slot is lazily recycled when its index comes around again).
//! The default shape is 10 x 1 s: live quantiles over roughly the last
//! ten seconds, with one-second granularity at the trailing edge.
//!
//! The core is **clock-free** in the same sense as `yali_serve::Batcher`:
//! no method reads a clock, every method takes a caller-supplied `now_ns`,
//! so the whole state machine is a pure function of its inputs and
//! property tests can drive time explicitly (including standing still and
//! jumping far ahead). A `now_ns` that runs backwards is clamped to the
//! newest epoch already seen — time never rewinds, late samples land in
//! the current epoch.
//!
//! Memory is fixed at construction: `epochs` copies of a
//! [`HIST_BUCKETS`]-bucket histogram (or one counter per epoch), no
//! allocation on the record path. The structs are `&mut self` single
//! writers; concurrent use wraps them in a `Mutex` (as `yali-serve` does
//! per lane).

use crate::{HistSnapshot, HIST_BUCKETS};

/// Ring-slot sentinel: this epoch slot has never been written.
const UNUSED: u64 = u64::MAX;

/// The shape of a sliding window: `epochs` buckets of `epoch_ns` each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Width of one epoch bucket in nanoseconds.
    pub epoch_ns: u64,
    /// Number of epoch buckets the window spans.
    pub epochs: usize,
}

impl WindowConfig {
    /// Total window span in nanoseconds (`epoch_ns * epochs`).
    pub fn span_ns(&self) -> u64 {
        self.epoch_ns.saturating_mul(self.epochs as u64)
    }
}

impl Default for WindowConfig {
    /// 10 epochs of 1 second: quantiles over roughly the last 10 s.
    fn default() -> WindowConfig {
        WindowConfig {
            epoch_ns: 1_000_000_000,
            epochs: 10,
        }
    }
}

/// One epoch's worth of histogram state.
#[derive(Clone)]
struct HistEpoch {
    /// Which epoch (`t / epoch_ns`) this slot currently holds; [`UNUSED`]
    /// until first written.
    seq: u64,
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl HistEpoch {
    fn fresh(seq: u64) -> HistEpoch {
        HistEpoch {
            seq,
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }
}

/// A sliding-window histogram of nanosecond samples: log2 buckets per
/// epoch, merged into a [`HistSnapshot`] on demand so the lifetime
/// histogram's quantile machinery applies unchanged to the live window.
pub struct WindowedHistogram {
    cfg: WindowConfig,
    ring: Vec<HistEpoch>,
    /// Newest epoch ever observed (monotone; a stale `now_ns` clamps here).
    cur: u64,
}

impl WindowedHistogram {
    /// An empty window of the given shape (`epochs >= 1`, `epoch_ns >= 1`
    /// are clamped up).
    pub fn new(cfg: WindowConfig) -> WindowedHistogram {
        let cfg = WindowConfig {
            epoch_ns: cfg.epoch_ns.max(1),
            epochs: cfg.epochs.max(1),
        };
        WindowedHistogram {
            cfg,
            ring: vec![HistEpoch::fresh(UNUSED); cfg.epochs],
            cur: 0,
        }
    }

    /// The window shape.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Monotone epoch number for `now_ns` (never behind an epoch already
    /// seen — the clamp that keeps a misbehaving clock from rewinding the
    /// ring).
    fn epoch(&self, now_ns: u64) -> u64 {
        (now_ns / self.cfg.epoch_ns).max(self.cur)
    }

    /// Records one nanosecond sample at time `now_ns`.
    pub fn record(&mut self, now_ns: u64, sample_ns: u64) {
        let epoch = self.epoch(now_ns);
        self.cur = epoch;
        let len = self.ring.len();
        let slot = &mut self.ring[(epoch % len as u64) as usize];
        if slot.seq != epoch {
            *slot = HistEpoch::fresh(epoch);
        }
        let idx = (63 - (sample_ns | 1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        slot.buckets[idx] += 1;
        slot.count += 1;
        slot.sum_ns = slot.sum_ns.saturating_add(sample_ns);
        slot.max_ns = slot.max_ns.max(sample_ns);
    }

    /// Merges the live epochs into a point-in-time [`HistSnapshot`] as of
    /// `now_ns` (advancing the window first, so samples older than the
    /// span are excluded even if nothing was recorded since).
    pub fn snapshot(&mut self, now_ns: u64, name: &str) -> HistSnapshot {
        let epoch = self.epoch(now_ns);
        self.cur = epoch;
        let len = self.ring.len() as u64;
        let mut snap = HistSnapshot {
            name: name.to_string(),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            buckets: vec![0; HIST_BUCKETS],
        };
        for slot in &self.ring {
            // Live iff written and within the trailing `epochs` window:
            // seq in (epoch - len, epoch].
            if slot.seq == UNUSED || slot.seq + len <= epoch {
                continue;
            }
            for (b, n) in snap.buckets.iter_mut().zip(slot.buckets.iter()) {
                *b += n;
            }
            snap.count += slot.count;
            snap.sum_ns = snap.sum_ns.saturating_add(slot.sum_ns);
            snap.max_ns = snap.max_ns.max(slot.max_ns);
        }
        snap
    }
}

/// A sliding-window counter with a rolling per-second rate (the live QPS
/// companion to [`WindowedHistogram`]). Same epoch ring, same clock-free
/// contract.
pub struct WindowedCounter {
    cfg: WindowConfig,
    ring: Vec<(u64, u64)>, // (epoch seq or UNUSED, count)
    cur: u64,
    /// First `now_ns` ever passed to [`WindowedCounter::add`]; rates over
    /// a window the process has not yet lived through divide by the
    /// elapsed time instead, so a young counter is not underreported.
    first_ns: Option<u64>,
}

impl WindowedCounter {
    /// An empty counter window of the given shape.
    pub fn new(cfg: WindowConfig) -> WindowedCounter {
        let cfg = WindowConfig {
            epoch_ns: cfg.epoch_ns.max(1),
            epochs: cfg.epochs.max(1),
        };
        WindowedCounter {
            cfg,
            ring: vec![(UNUSED, 0); cfg.epochs],
            cur: 0,
            first_ns: None,
        }
    }

    fn epoch(&self, now_ns: u64) -> u64 {
        (now_ns / self.cfg.epoch_ns).max(self.cur)
    }

    /// Adds `n` events at time `now_ns`.
    pub fn add(&mut self, now_ns: u64, n: u64) {
        let epoch = self.epoch(now_ns);
        self.cur = epoch;
        self.first_ns.get_or_insert(now_ns);
        let len = self.ring.len();
        let slot = &mut self.ring[(epoch % len as u64) as usize];
        if slot.0 != epoch {
            *slot = (epoch, 0);
        }
        slot.1 += n;
    }

    /// Events inside the window as of `now_ns`.
    pub fn total(&mut self, now_ns: u64) -> u64 {
        let epoch = self.epoch(now_ns);
        self.cur = epoch;
        let len = self.ring.len() as u64;
        self.ring
            .iter()
            .filter(|(seq, _)| *seq != UNUSED && seq + len > epoch)
            .map(|(_, n)| n)
            .sum()
    }

    /// Rolling events-per-second as of `now_ns`: the window total over the
    /// covered span (the full window once the counter is older than it,
    /// the elapsed lifetime — floored at one epoch — before that). A
    /// counter that never counted reports 0.
    pub fn rate_per_sec(&mut self, now_ns: u64) -> f64 {
        let Some(first) = self.first_ns else {
            return 0.0;
        };
        let total = self.total(now_ns);
        let covered = now_ns
            .saturating_sub(first)
            .max(self.cfg.epoch_ns)
            .min(self.cfg.span_ns())
            .max(1);
        total as f64 * 1e9 / covered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: u64 = 1_000; // tiny epochs make the arithmetic readable

    fn cfg() -> WindowConfig {
        WindowConfig {
            epoch_ns: E,
            epochs: 4,
        }
    }

    #[test]
    fn samples_expire_oldest_epoch_first() {
        let mut w = WindowedHistogram::new(cfg());
        w.record(0, 10); // epoch 0
        w.record(2 * E, 20); // epoch 2
        // Window at epoch 3 covers epochs 0..=3: both visible.
        let s = w.snapshot(3 * E, "w");
        assert_eq!(s.count, 2);
        assert_eq!(s.sum_ns, 30);
        // Window at epoch 4 covers 1..=4: epoch 0 expired.
        let s = w.snapshot(4 * E, "w");
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 20);
        // Far future: everything expired, snapshot is truly empty.
        let s = w.snapshot(100 * E, "w");
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_opt(0.99), None);
    }

    #[test]
    fn ring_slots_are_recycled_on_wraparound() {
        let mut w = WindowedHistogram::new(cfg());
        w.record(0, 1); // epoch 0 -> slot 0
        w.record(4 * E, 2); // epoch 4 -> slot 0 again: must evict epoch 0
        let s = w.snapshot(4 * E, "w");
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 2);
    }

    #[test]
    fn a_backwards_clock_clamps_to_the_newest_epoch() {
        let mut w = WindowedHistogram::new(cfg());
        w.record(5 * E, 50);
        w.record(E, 60); // stale now_ns: lands in epoch 5, not epoch 1
        let s = w.snapshot(5 * E, "w");
        assert_eq!(s.count, 2);
        // And the stale record did not resurrect an expired view.
        let s = w.snapshot(9 * E, "w");
        assert_eq!(s.count, 0);
    }

    #[test]
    fn quantiles_of_the_window_match_the_lifetime_estimator() {
        let mut w = WindowedHistogram::new(WindowConfig::default());
        for _ in 0..90 {
            w.record(0, 1_000);
        }
        for _ in 0..10 {
            w.record(0, 1_000_000);
        }
        let s = w.snapshot(0, "w");
        assert_eq!(s.count, 100);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((512..1_024).contains(&p50), "p50={p50}");
        assert!((524_288..=1_000_000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn counter_totals_roll_and_rates_divide_by_covered_time() {
        let mut c = WindowedCounter::new(cfg());
        assert_eq!(c.rate_per_sec(0), 0.0);
        c.add(0, 8);
        c.add(E, 4);
        assert_eq!(c.total(E), 12);
        // Epoch 0 expires at epoch 4.
        assert_eq!(c.total(4 * E), 4);
        assert_eq!(c.total(40 * E), 0);
        // Rate: 12 events over one epoch of lifetime (floored) = 12/1000ns.
        let mut c = WindowedCounter::new(cfg());
        c.add(0, 12);
        let r = c.rate_per_sec(0);
        assert!((r - 12.0 * 1e9 / E as f64).abs() < 1e-6, "r={r}");
        // Once older than the window, the divisor is the full span.
        let mut c = WindowedCounter::new(cfg());
        c.add(0, 1);
        c.add(100 * E, 8);
        let r = c.rate_per_sec(100 * E);
        assert!((r - 8.0 * 1e9 / (4 * E) as f64).abs() < 1e-6, "r={r}");
    }

    #[test]
    fn window_agrees_with_a_brute_force_model() {
        // A deterministic pseudo-random schedule of (time, sample) events,
        // checked against the spec: a sample at t is visible at `now` iff
        // t/E is in (now/E - epochs, now/E], with both clocks monotone.
        let mut w = WindowedHistogram::new(cfg());
        let mut events: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut now = 0u64;
        for step in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            now += state % (3 * E / 2); // advance 0..1.5 epochs
            let sample = (state >> 32) % 10_000;
            w.record(now, sample);
            events.push((now, sample));
            if step % 7 == 0 {
                let epoch = now / E;
                let want: Vec<u64> = events
                    .iter()
                    .filter(|(t, _)| t / E + 4 > epoch)
                    .map(|&(_, s)| s)
                    .collect();
                let snap = w.snapshot(now, "w");
                assert_eq!(snap.count, want.len() as u64, "step {step}");
                assert_eq!(snap.sum_ns, want.iter().sum::<u64>(), "step {step}");
                assert_eq!(snap.max_ns, want.iter().copied().max().unwrap_or(0));
            }
        }
    }
}
