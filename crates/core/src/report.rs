//! Run reports: the end-of-run aggregation of the `yali-obs` registry and
//! the engine's cache counters into one JSON document (`RUNSTATS.json`).
//!
//! Drivers and benches call [`maybe_write_runstats`] on exit; under
//! `YALI_OBS=1` it serializes a [`RunReport`] — per-cache hit ratios,
//! per-phase wall times, worker-pool utilization, and every registered
//! counter — and with observability off it does nothing at all, so
//! uninstrumented runs pay nothing and leave no files behind.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::engine::{EmbedCache, ModelCache, TransformCache};

/// One cache's counters plus its derived hit ratio.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries actually stored (≤ misses).
    pub inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Hits over total lookups ([`crate::CacheStats::hit_ratio`]).
    pub hit_ratio: f64,
}

impl CacheReport {
    fn from_stats(s: crate::CacheStats) -> CacheReport {
        CacheReport {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            entries: s.entries,
            hit_ratio: s.hit_ratio(),
        }
    }
}

/// One instrumented phase (a `yali-obs` span label): how often it ran and
/// how long it took.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall time across all entries, in nanoseconds.
    pub total_ns: u64,
    /// Mean wall time per entry, in nanoseconds.
    pub mean_ns: f64,
    /// Median wall time, estimated from the log2 histogram buckets
    /// ([`yali_obs::HistSnapshot::quantile`]).
    pub p50_ns: u64,
    /// 95th-percentile wall time, estimated from the log2 buckets.
    pub p95_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
}

/// Worker-pool accounting summed over every `par_map` region of the run.
#[derive(Debug, Clone, Serialize)]
pub struct PoolReport {
    /// `par_map` regions that ran on more than one worker.
    pub regions: u64,
    /// Items those regions processed.
    pub items: u64,
    /// Wall time of the regions, in nanoseconds.
    pub wall_ns: u64,
    /// Summed busy time of the workers, in nanoseconds.
    pub busy_ns: u64,
    /// Wall time × worker count — the capacity the pool held open.
    pub worker_ns: u64,
    /// `busy_ns / worker_ns`: 1.0 means every worker was busy for the
    /// whole region, lower means workers idled at the barrier.
    pub utilization: f64,
}

/// Version of the `RUNSTATS.json` schema this crate writes. Bumped on
/// every breaking change so `yali-prof diff` can refuse (or degrade
/// gracefully) when comparing reports from incompatible writers.
/// History: 1 = PR 4 (caches/phases/pool/counters); 2 = PR 5 (adds
/// `schema_version` itself and per-phase `p50_ns`/`p95_ns`); 3 = this
/// version (adds the persistent artifact `store` section).
pub const RUNSTATS_SCHEMA_VERSION: u32 = 3;

/// The persistent artifact store's activity, when `YALI_STORE` attached
/// one (all-zero with `active: false` otherwise, so consumers need no
/// null handling).
#[derive(Debug, Clone, Serialize)]
pub struct StoreReport {
    /// Whether a store was attached for this run.
    pub active: bool,
    /// Committed records indexed (all namespaces).
    pub entries: usize,
    /// Total bytes on disk across every segment.
    pub total_bytes: u64,
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that fell through to computation.
    pub disk_misses: u64,
    /// Records this process appended.
    pub published: u64,
    /// Publishes dropped by the `YALI_STORE_MAX_BYTES` cap.
    pub capped: u64,
    /// Payload bytes read from disk.
    pub bytes_read: u64,
    /// Frame bytes appended to disk.
    pub bytes_written: u64,
    /// Disk hits over disk lookups (0.0 when nothing was looked up).
    pub disk_hit_ratio: f64,
}

impl StoreReport {
    fn collect() -> StoreReport {
        match crate::store::active_stats() {
            Some(s) => {
                let lookups = s.disk_hits + s.disk_misses;
                StoreReport {
                    active: true,
                    entries: s.entries,
                    total_bytes: s.total_bytes,
                    disk_hits: s.disk_hits,
                    disk_misses: s.disk_misses,
                    published: s.published,
                    capped: s.capped,
                    bytes_read: s.bytes_read,
                    bytes_written: s.bytes_written,
                    disk_hit_ratio: if lookups == 0 {
                        0.0
                    } else {
                        s.disk_hits as f64 / lookups as f64
                    },
                }
            }
            None => StoreReport {
                active: false,
                entries: 0,
                total_bytes: 0,
                disk_hits: 0,
                disk_misses: 0,
                published: 0,
                capped: 0,
                bytes_read: 0,
                bytes_written: 0,
                disk_hit_ratio: 0.0,
            },
        }
    }
}

/// The aggregated statistics of one instrumented run.
///
/// Everything here is *derived* observability: collecting a report reads
/// counters and snapshots, never reschedules or recomputes work, so the
/// run's results are bit-identical with or without it.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// The [`RUNSTATS_SCHEMA_VERSION`] of the writer.
    pub schema_version: u32,
    /// Whether observability was live when the report was collected
    /// (all-zero reports from disabled runs are distinguishable).
    pub obs_enabled: bool,
    /// The worker count the engine resolved (`YALI_THREADS` or machine
    /// parallelism).
    pub threads: usize,
    /// Global caches by name: `embed`, `transform`, `model`.
    pub caches: BTreeMap<String, CacheReport>,
    /// Span histograms by label (`game.fit`, `embed.batch`, …).
    pub phases: BTreeMap<String, PhaseReport>,
    /// Worker-pool utilization across all `par_map` regions.
    pub pool: PoolReport,
    /// Persistent artifact store activity (`YALI_STORE`).
    pub store: StoreReport,
    /// Every registered counter (`game.rounds.*`, `ir.interp.*`,
    /// `ml.gemm.*`, …), zero-valued ones included.
    pub counters: BTreeMap<String, u64>,
}

impl RunReport {
    /// Snapshots the `yali-obs` registry and the engine's global caches
    /// into a report.
    pub fn collect() -> RunReport {
        let reg = yali_obs::Registry::global();
        let counters: BTreeMap<String, u64> = reg.counters().into_iter().collect();
        let phases: BTreeMap<String, PhaseReport> = reg
            .histograms()
            .into_iter()
            .map(|h| {
                let mean_ns = h.mean_ns();
                let (p50_ns, p95_ns) = (h.quantile(0.5), h.quantile(0.95));
                (
                    h.name,
                    PhaseReport {
                        count: h.count,
                        total_ns: h.sum_ns,
                        mean_ns,
                        p50_ns,
                        p95_ns,
                        max_ns: h.max_ns,
                    },
                )
            })
            .collect();
        let get = |name: &str| counters.get(name).copied().unwrap_or(0);
        let (busy_ns, worker_ns) = (get("par.busy_ns"), get("par.worker_ns"));
        let pool = PoolReport {
            regions: get("par.regions"),
            items: get("par.items"),
            wall_ns: get("par.wall_ns"),
            busy_ns,
            worker_ns,
            utilization: if worker_ns == 0 {
                0.0
            } else {
                busy_ns as f64 / worker_ns as f64
            },
        };
        let mut caches = BTreeMap::new();
        caches.insert(
            "embed".to_string(),
            CacheReport::from_stats(EmbedCache::global().stats()),
        );
        caches.insert(
            "transform".to_string(),
            CacheReport::from_stats(TransformCache::global().stats()),
        );
        caches.insert(
            "model".to_string(),
            CacheReport::from_stats(ModelCache::global().stats()),
        );
        RunReport {
            schema_version: RUNSTATS_SCHEMA_VERSION,
            obs_enabled: yali_obs::enabled(),
            threads: crate::engine::worker_count(),
            caches,
            phases,
            pool,
            store: StoreReport::collect(),
            counters,
        }
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serializes")
    }

    /// Writes the report to `path` (flushing the trace sink first, so a
    /// paired `YALI_TRACE` file is complete when the report lands).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        yali_obs::flush_trace();
        std::fs::write(path, self.to_json())
    }
}

/// Writes `RunReport::collect()` to `path` when observability is on; does
/// nothing (and touches no file) when it is off. Errors are reported as
/// `yali-obs` warnings — a failed report must never take the run down.
pub fn maybe_write_runstats(path: &str) {
    if !yali_obs::enabled() {
        return;
    }
    let report = RunReport::collect();
    if let Err(e) = report.write(path) {
        yali_obs::warn(&format!("cannot write run report {path}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs enabled flag is process-wide; tests that flip it serialize
    // here and restore `false` before returning.
    static GLOBAL_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn collect_reports_all_three_caches_and_the_pool() {
        let r = RunReport::collect();
        for cache in ["embed", "transform", "model"] {
            let c = &r.caches[cache];
            assert!(c.hits + c.misses >= c.inserts, "{cache}");
            assert!((0.0..=1.0).contains(&c.hit_ratio), "{cache}");
        }
        assert!((0.0..=1.0).contains(&r.pool.utilization));
        assert!(r.threads >= 1);
        assert!((0.0..=1.0).contains(&r.store.disk_hit_ratio));
        if !r.store.active {
            assert_eq!(r.store.entries, 0, "inactive store reports zeros");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        yali_obs::set_enabled(true);
        yali_obs::count!("test.report.counter", 3);
        {
            let _s = yali_obs::span!("test.report.span");
        }
        yali_obs::set_enabled(false);
        let r = RunReport::collect();
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["schema_version"], u64::from(RUNSTATS_SCHEMA_VERSION));
        assert_eq!(v["counters"]["test.report.counter"], 3);
        let phase = &v["phases"]["test.report.span"];
        assert_eq!(phase["count"], 1);
        assert!(phase["total_ns"].as_u64().unwrap() > 0);
        // Quantiles ride along and respect p50 <= p95 <= max.
        let p50 = phase["p50_ns"].as_u64().unwrap();
        let p95 = phase["p95_ns"].as_u64().unwrap();
        let max = phase["max_ns"].as_u64().unwrap();
        assert!(p50 <= p95 && p95 <= max, "p50={p50} p95={p95} max={max}");
    }

    #[test]
    fn maybe_write_is_a_no_op_when_disabled() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        yali_obs::set_enabled(false);
        let path = std::env::temp_dir().join("yali_runstats_disabled.json");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        maybe_write_runstats(&path);
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn maybe_write_emits_the_file_when_enabled() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let path = std::env::temp_dir().join("yali_runstats_enabled.json");
        let path = path.to_str().unwrap().to_string();
        yali_obs::set_enabled(true);
        maybe_write_runstats(&path);
        yali_obs::set_enabled(false);
        let text = std::fs::read_to_string(&path).expect("report written");
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v["obs_enabled"], true);
        assert!(v["caches"]["embed"]["hit_ratio"].is_number());
        let _ = std::fs::remove_file(&path);
    }
}
