//! Run reports: the end-of-run aggregation of the `yali-obs` registry and
//! the engine's cache counters into one JSON document (`RUNSTATS.json`).
//!
//! Drivers and benches call [`maybe_write_runstats`] on exit; under
//! `YALI_OBS=1` it serializes a [`RunReport`] — per-cache hit ratios,
//! per-phase wall times, worker-pool utilization, and every registered
//! counter — and with observability off it does nothing at all, so
//! uninstrumented runs pay nothing and leave no files behind.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::engine::{EmbedCache, ModelCache, TransformCache};

/// One cache's counters plus its derived hit ratio.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries actually stored (≤ misses).
    pub inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Hits over total lookups ([`crate::CacheStats::hit_ratio`]).
    pub hit_ratio: f64,
}

impl CacheReport {
    fn from_stats(s: crate::CacheStats) -> CacheReport {
        CacheReport {
            hits: s.hits,
            misses: s.misses,
            inserts: s.inserts,
            entries: s.entries,
            hit_ratio: s.hit_ratio(),
        }
    }
}

/// One instrumented phase (a `yali-obs` span label): how often it ran and
/// how long it took.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// Times the span was entered.
    pub count: u64,
    /// Total wall time across all entries, in nanoseconds.
    pub total_ns: u64,
    /// Mean wall time per entry, in nanoseconds.
    pub mean_ns: f64,
    /// Median wall time, estimated from the log2 histogram buckets
    /// ([`yali_obs::HistSnapshot::quantile`]).
    pub p50_ns: u64,
    /// 95th-percentile wall time, estimated from the log2 buckets.
    pub p95_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
    /// Raw log2 bucket counts ([`yali_obs::HIST_BUCKETS`] entries; bucket
    /// `i` holds samples in `[2^i, 2^(i+1))` ns). Carried so multi-process
    /// reports can be merged bucket-wise and their quantiles *recomputed*
    /// rather than averaged — a p95 of quantile estimates is not the
    /// quantile of the union.
    pub buckets: Vec<u64>,
}

/// Worker-pool accounting summed over every `par_map` region of the run.
#[derive(Debug, Clone, Serialize)]
pub struct PoolReport {
    /// `par_map` regions that ran on more than one worker.
    pub regions: u64,
    /// Items those regions processed.
    pub items: u64,
    /// Wall time of the regions, in nanoseconds.
    pub wall_ns: u64,
    /// Summed busy time of the workers, in nanoseconds.
    pub busy_ns: u64,
    /// Wall time × worker count — the capacity the pool held open.
    pub worker_ns: u64,
    /// `busy_ns / worker_ns`: 1.0 means every worker was busy for the
    /// whole region, lower means workers idled at the barrier.
    pub utilization: f64,
}

/// Version of the `RUNSTATS.json` schema this crate writes. Bumped on
/// every breaking change so `yali-prof diff` can refuse (or degrade
/// gracefully) when comparing reports from incompatible writers.
/// History: 1 = PR 4 (caches/phases/pool/counters); 2 = PR 5 (adds
/// `schema_version` itself and per-phase `p50_ns`/`p95_ns`); 3 = PR 7
/// (adds the persistent artifact `store` section); 4 = this version
/// (adds per-phase raw `buckets` and the fleet report:
/// `RUNSTATS_grid.json` with a merged `fleet` report plus per-shard
/// breakdown).
pub const RUNSTATS_SCHEMA_VERSION: u32 = 4;

/// The persistent artifact store's activity, when `YALI_STORE` attached
/// one (all-zero with `active: false` otherwise, so consumers need no
/// null handling).
#[derive(Debug, Clone, Serialize)]
pub struct StoreReport {
    /// Whether a store was attached for this run.
    pub active: bool,
    /// Committed records indexed (all namespaces).
    pub entries: usize,
    /// Total bytes on disk across every segment.
    pub total_bytes: u64,
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups that fell through to computation.
    pub disk_misses: u64,
    /// Records this process appended.
    pub published: u64,
    /// Publishes dropped by the `YALI_STORE_MAX_BYTES` cap.
    pub capped: u64,
    /// Payload bytes read from disk.
    pub bytes_read: u64,
    /// Frame bytes appended to disk.
    pub bytes_written: u64,
    /// Disk hits over disk lookups (0.0 when nothing was looked up).
    pub disk_hit_ratio: f64,
}

impl StoreReport {
    fn collect() -> StoreReport {
        match crate::store::active_stats() {
            Some(s) => {
                let lookups = s.disk_hits + s.disk_misses;
                StoreReport {
                    active: true,
                    entries: s.entries,
                    total_bytes: s.total_bytes,
                    disk_hits: s.disk_hits,
                    disk_misses: s.disk_misses,
                    published: s.published,
                    capped: s.capped,
                    bytes_read: s.bytes_read,
                    bytes_written: s.bytes_written,
                    disk_hit_ratio: if lookups == 0 {
                        0.0
                    } else {
                        s.disk_hits as f64 / lookups as f64
                    },
                }
            }
            None => StoreReport {
                active: false,
                entries: 0,
                total_bytes: 0,
                disk_hits: 0,
                disk_misses: 0,
                published: 0,
                capped: 0,
                bytes_read: 0,
                bytes_written: 0,
                disk_hit_ratio: 0.0,
            },
        }
    }
}

/// The aggregated statistics of one instrumented run.
///
/// Everything here is *derived* observability: collecting a report reads
/// counters and snapshots, never reschedules or recomputes work, so the
/// run's results are bit-identical with or without it.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// The [`RUNSTATS_SCHEMA_VERSION`] of the writer.
    pub schema_version: u32,
    /// Whether observability was live when the report was collected
    /// (all-zero reports from disabled runs are distinguishable).
    pub obs_enabled: bool,
    /// The worker count the engine resolved (`YALI_THREADS` or machine
    /// parallelism).
    pub threads: usize,
    /// Global caches by name: `embed`, `transform`, `model`.
    pub caches: BTreeMap<String, CacheReport>,
    /// Span histograms by label (`game.fit`, `embed.batch`, …).
    pub phases: BTreeMap<String, PhaseReport>,
    /// Worker-pool utilization across all `par_map` regions.
    pub pool: PoolReport,
    /// Persistent artifact store activity (`YALI_STORE`).
    pub store: StoreReport,
    /// Every registered counter (`game.rounds.*`, `ir.interp.*`,
    /// `ml.gemm.*`, …), zero-valued ones included.
    pub counters: BTreeMap<String, u64>,
}

impl RunReport {
    /// Snapshots the `yali-obs` registry and the engine's global caches
    /// into a report.
    pub fn collect() -> RunReport {
        let reg = yali_obs::Registry::global();
        let counters: BTreeMap<String, u64> = reg.counters().into_iter().collect();
        let phases: BTreeMap<String, PhaseReport> = reg
            .histograms()
            .into_iter()
            .map(|h| {
                let mean_ns = h.mean_ns();
                let (p50_ns, p95_ns) = (h.quantile(0.5), h.quantile(0.95));
                (
                    h.name,
                    PhaseReport {
                        count: h.count,
                        total_ns: h.sum_ns,
                        mean_ns,
                        p50_ns,
                        p95_ns,
                        max_ns: h.max_ns,
                        buckets: h.buckets,
                    },
                )
            })
            .collect();
        let get = |name: &str| counters.get(name).copied().unwrap_or(0);
        let (busy_ns, worker_ns) = (get("par.busy_ns"), get("par.worker_ns"));
        let pool = PoolReport {
            regions: get("par.regions"),
            items: get("par.items"),
            wall_ns: get("par.wall_ns"),
            busy_ns,
            worker_ns,
            utilization: if worker_ns == 0 {
                0.0
            } else {
                busy_ns as f64 / worker_ns as f64
            },
        };
        let mut caches = BTreeMap::new();
        caches.insert(
            "embed".to_string(),
            CacheReport::from_stats(EmbedCache::global().stats()),
        );
        caches.insert(
            "transform".to_string(),
            CacheReport::from_stats(TransformCache::global().stats()),
        );
        caches.insert(
            "model".to_string(),
            CacheReport::from_stats(ModelCache::global().stats()),
        );
        RunReport {
            schema_version: RUNSTATS_SCHEMA_VERSION,
            obs_enabled: yali_obs::enabled(),
            threads: crate::engine::worker_count(),
            caches,
            phases,
            pool,
            store: StoreReport::collect(),
            counters,
        }
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serializes")
    }

    /// Writes the report to `path` (flushing the trace sink first, so a
    /// paired `YALI_TRACE` file is complete when the report lands).
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        yali_obs::flush_trace();
        std::fs::write(path, self.to_json())
    }

    /// Parses a report written by [`RunReport::to_json`]. Tolerant of
    /// reports from older writers (missing per-phase `buckets` parse as
    /// empty), strict about shape (a non-object input is an error).
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let v: serde_json::Value =
            serde_json::from_str(text).map_err(|e| format!("invalid report JSON: {e:?}"))?;
        Self::from_value(&v)
    }

    /// [`RunReport::from_json`] over an already-parsed value (the fleet
    /// reader pulls shard reports out of one enclosing document).
    pub fn from_value(v: &serde_json::Value) -> Result<RunReport, String> {
        if v.as_object().is_none() {
            return Err("run report is not a JSON object".into());
        }
        let u = |val: &serde_json::Value| val.as_u64().unwrap_or(0);
        let f = |val: &serde_json::Value| val.as_f64().unwrap_or(0.0);
        let mut caches = BTreeMap::new();
        if let Some(obj) = v.get("caches").as_object() {
            for (name, c) in obj {
                caches.insert(
                    name.clone(),
                    CacheReport {
                        hits: u(c.get("hits")),
                        misses: u(c.get("misses")),
                        inserts: u(c.get("inserts")),
                        entries: u(c.get("entries")) as usize,
                        hit_ratio: f(c.get("hit_ratio")),
                    },
                );
            }
        }
        let mut phases = BTreeMap::new();
        if let Some(obj) = v.get("phases").as_object() {
            for (name, p) in obj {
                let buckets = p
                    .get("buckets")
                    .as_array()
                    .map(|a| a.iter().map(&u).collect())
                    .unwrap_or_default();
                phases.insert(
                    name.clone(),
                    PhaseReport {
                        count: u(p.get("count")),
                        total_ns: u(p.get("total_ns")),
                        mean_ns: f(p.get("mean_ns")),
                        p50_ns: u(p.get("p50_ns")),
                        p95_ns: u(p.get("p95_ns")),
                        max_ns: u(p.get("max_ns")),
                        buckets,
                    },
                );
            }
        }
        let mut counters = BTreeMap::new();
        if let Some(obj) = v.get("counters").as_object() {
            for (name, c) in obj {
                counters.insert(name.clone(), u(c));
            }
        }
        let pool = v.get("pool");
        let store = v.get("store");
        Ok(RunReport {
            schema_version: u(v.get("schema_version")) as u32,
            obs_enabled: v.get("obs_enabled").as_bool().unwrap_or(false),
            threads: u(v.get("threads")) as usize,
            caches,
            phases,
            pool: PoolReport {
                regions: u(pool.get("regions")),
                items: u(pool.get("items")),
                wall_ns: u(pool.get("wall_ns")),
                busy_ns: u(pool.get("busy_ns")),
                worker_ns: u(pool.get("worker_ns")),
                utilization: f(pool.get("utilization")),
            },
            store: StoreReport {
                active: store.get("active").as_bool().unwrap_or(false),
                entries: u(store.get("entries")) as usize,
                total_bytes: u(store.get("total_bytes")),
                disk_hits: u(store.get("disk_hits")),
                disk_misses: u(store.get("disk_misses")),
                published: u(store.get("published")),
                capped: u(store.get("capped")),
                bytes_read: u(store.get("bytes_read")),
                bytes_written: u(store.get("bytes_written")),
                disk_hit_ratio: f(store.get("disk_hit_ratio")),
            },
            counters,
        })
    }

    /// Merges per-process reports into one fleet-wide report: counters,
    /// cache tallies, pool accounting, and store activity are summed;
    /// phase histograms are merged *bucket-wise* and their mean and
    /// quantiles recomputed from the union, so the fleet p95 is the p95
    /// of all samples, not an average of per-shard estimates. `threads`
    /// is the per-process maximum (shards run the same config); derived
    /// ratios are recomputed from the summed numerators/denominators.
    pub fn merge(reports: &[RunReport]) -> RunReport {
        let mut caches: BTreeMap<String, CacheReport> = BTreeMap::new();
        let mut phases: BTreeMap<String, PhaseReport> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut pool = PoolReport {
            regions: 0,
            items: 0,
            wall_ns: 0,
            busy_ns: 0,
            worker_ns: 0,
            utilization: 0.0,
        };
        let mut store = StoreReport {
            active: false,
            entries: 0,
            total_bytes: 0,
            disk_hits: 0,
            disk_misses: 0,
            published: 0,
            capped: 0,
            bytes_read: 0,
            bytes_written: 0,
            disk_hit_ratio: 0.0,
        };
        let (mut obs_enabled, mut threads) = (false, 0usize);
        for r in reports {
            obs_enabled |= r.obs_enabled;
            threads = threads.max(r.threads);
            for (name, c) in &r.caches {
                let acc = caches.entry(name.clone()).or_insert_with(|| CacheReport {
                    hits: 0,
                    misses: 0,
                    inserts: 0,
                    entries: 0,
                    hit_ratio: 0.0,
                });
                acc.hits += c.hits;
                acc.misses += c.misses;
                acc.inserts += c.inserts;
                acc.entries += c.entries;
            }
            for (name, p) in &r.phases {
                let acc = phases.entry(name.clone()).or_insert_with(|| PhaseReport {
                    count: 0,
                    total_ns: 0,
                    mean_ns: 0.0,
                    p50_ns: 0,
                    p95_ns: 0,
                    max_ns: 0,
                    buckets: Vec::new(),
                });
                acc.count += p.count;
                acc.total_ns += p.total_ns;
                acc.max_ns = acc.max_ns.max(p.max_ns);
                if acc.buckets.len() < p.buckets.len() {
                    acc.buckets.resize(p.buckets.len(), 0);
                }
                for (slot, n) in acc.buckets.iter_mut().zip(&p.buckets) {
                    *slot += n;
                }
            }
            for (name, n) in &r.counters {
                *counters.entry(name.clone()).or_insert(0) += n;
            }
            pool.regions += r.pool.regions;
            pool.items += r.pool.items;
            pool.wall_ns += r.pool.wall_ns;
            pool.busy_ns += r.pool.busy_ns;
            pool.worker_ns += r.pool.worker_ns;
            store.active |= r.store.active;
            store.entries = store.entries.max(r.store.entries);
            store.total_bytes = store.total_bytes.max(r.store.total_bytes);
            store.disk_hits += r.store.disk_hits;
            store.disk_misses += r.store.disk_misses;
            store.published += r.store.published;
            store.capped += r.store.capped;
            store.bytes_read += r.store.bytes_read;
            store.bytes_written += r.store.bytes_written;
        }
        for acc in caches.values_mut() {
            let lookups = acc.hits + acc.misses;
            acc.hit_ratio = if lookups == 0 {
                0.0
            } else {
                acc.hits as f64 / lookups as f64
            };
        }
        for acc in phases.values_mut() {
            // Rebuild a snapshot over the merged buckets so the quantile
            // estimator (and its clamping to max_ns) is shared with the
            // single-process path.
            let snap = yali_obs::HistSnapshot {
                name: String::new(),
                count: acc.count,
                sum_ns: acc.total_ns,
                max_ns: acc.max_ns,
                buckets: acc.buckets.clone(),
            };
            acc.mean_ns = snap.mean_ns();
            acc.p50_ns = snap.quantile(0.5);
            acc.p95_ns = snap.quantile(0.95);
        }
        pool.utilization = if pool.worker_ns == 0 {
            0.0
        } else {
            pool.busy_ns as f64 / pool.worker_ns as f64
        };
        let disk_lookups = store.disk_hits + store.disk_misses;
        store.disk_hit_ratio = if disk_lookups == 0 {
            0.0
        } else {
            store.disk_hits as f64 / disk_lookups as f64
        };
        RunReport {
            schema_version: RUNSTATS_SCHEMA_VERSION,
            obs_enabled,
            threads,
            caches,
            phases,
            pool,
            store,
            counters,
        }
    }
}

/// One shard's slice of a [`FleetReport`]: which shard, how long it ran,
/// how many design points it played, and its full [`RunReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// The shard's wall time in nanoseconds (its `grid.worker` span).
    pub wall_ns: u64,
    /// Design points the shard played.
    pub points: usize,
    /// The shard's own run report.
    pub report: RunReport,
}

/// The fleet-wide observability document a sharded `yali-grid run` writes
/// as `RUNSTATS_grid.json`: the bucket-wise [`RunReport::merge`] of every
/// shard plus the per-shard breakdown and the straggler ratio
/// (`yali-prof diff` gates on both).
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// The [`RUNSTATS_SCHEMA_VERSION`] of the writer.
    pub schema_version: u32,
    /// Number of shards merged.
    pub n_shards: usize,
    /// Slowest shard wall time over the median shard wall time (1.0 for a
    /// perfectly balanced fleet; 0.0 when no shard reported a wall time).
    pub straggler_ratio: f64,
    /// The merged fleet-wide report.
    pub fleet: RunReport,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
}

impl FleetReport {
    /// Builds the fleet document from per-shard reports: merges them,
    /// computes the straggler ratio, and stamps the schema version.
    pub fn new(mut shards: Vec<ShardReport>) -> FleetReport {
        shards.sort_by_key(|s| s.shard);
        let fleet = RunReport::merge(
            &shards
                .iter()
                .map(|s| s.report.clone())
                .collect::<Vec<_>>(),
        );
        let walls: Vec<u64> = shards.iter().map(|s| s.wall_ns).collect();
        let straggler_ratio = match walls.iter().copied().max() {
            Some(max) if max > 0 => max as f64 / median_wall_ns(&walls).max(1.0),
            _ => 0.0,
        };
        FleetReport {
            schema_version: RUNSTATS_SCHEMA_VERSION,
            n_shards: shards.len(),
            straggler_ratio,
            fleet,
            shards,
        }
    }

    /// The fleet document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FleetReport serializes")
    }
}

/// The true median shard wall time (midpoint of the two middle values for
/// even fleets — the upper median would make a two-shard straggler ratio
/// identically 1). Public so the `yali-grid` straggler table and the
/// [`FleetReport`] ratio agree on one definition.
pub fn median_wall_ns(walls: &[u64]) -> f64 {
    if walls.is_empty() {
        return 0.0;
    }
    let mut sorted = walls.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    }
}

/// Writes `RunReport::collect()` to `path` when observability is on; does
/// nothing (and touches no file) when it is off. Errors are reported as
/// `yali-obs` warnings — a failed report must never take the run down.
pub fn maybe_write_runstats(path: &str) {
    if !yali_obs::enabled() {
        return;
    }
    let report = RunReport::collect();
    if let Err(e) = report.write(path) {
        yali_obs::warn(&format!("cannot write run report {path}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs enabled flag is process-wide; tests that flip it serialize
    // here and restore `false` before returning.
    static GLOBAL_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn collect_reports_all_three_caches_and_the_pool() {
        let r = RunReport::collect();
        for cache in ["embed", "transform", "model"] {
            let c = &r.caches[cache];
            assert!(c.hits + c.misses >= c.inserts, "{cache}");
            assert!((0.0..=1.0).contains(&c.hit_ratio), "{cache}");
        }
        assert!((0.0..=1.0).contains(&r.pool.utilization));
        assert!(r.threads >= 1);
        assert!((0.0..=1.0).contains(&r.store.disk_hit_ratio));
        if !r.store.active {
            assert_eq!(r.store.entries, 0, "inactive store reports zeros");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        yali_obs::set_enabled(true);
        yali_obs::count!("test.report.counter", 3);
        {
            let _s = yali_obs::span!("test.report.span");
        }
        yali_obs::set_enabled(false);
        let r = RunReport::collect();
        let json = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["schema_version"], u64::from(RUNSTATS_SCHEMA_VERSION));
        assert_eq!(v["counters"]["test.report.counter"], 3);
        let phase = &v["phases"]["test.report.span"];
        assert_eq!(phase["count"], 1);
        assert!(phase["total_ns"].as_u64().unwrap() > 0);
        // Quantiles ride along and respect p50 <= p95 <= max.
        let p50 = phase["p50_ns"].as_u64().unwrap();
        let p95 = phase["p95_ns"].as_u64().unwrap();
        let max = phase["max_ns"].as_u64().unwrap();
        assert!(p50 <= p95 && p95 <= max, "p50={p50} p95={p95} max={max}");
    }

    #[test]
    fn reports_round_trip_through_from_json_and_merge_sums_the_fleet() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        yali_obs::set_enabled(true);
        yali_obs::count!("test.fleet.counter", 5);
        {
            let _s = yali_obs::span!("test.fleet.span");
        }
        yali_obs::set_enabled(false);
        let a = RunReport::collect();
        let parsed = RunReport::from_json(&a.to_json()).expect("parses its own JSON");
        assert_eq!(parsed.counters, a.counters);
        assert_eq!(
            parsed.phases["test.fleet.span"].buckets,
            a.phases["test.fleet.span"].buckets
        );
        assert_eq!(parsed.schema_version, RUNSTATS_SCHEMA_VERSION);

        let merged = RunReport::merge(&[a.clone(), parsed]);
        assert_eq!(
            merged.counters["test.fleet.counter"],
            2 * a.counters["test.fleet.counter"]
        );
        let (one, two) = (&a.phases["test.fleet.span"], &merged.phases["test.fleet.span"]);
        assert_eq!(two.count, 2 * one.count);
        assert_eq!(two.total_ns, 2 * one.total_ns);
        assert_eq!(
            two.buckets.iter().sum::<u64>(),
            2 * one.buckets.iter().sum::<u64>()
        );
        // Quantiles are recomputed from the merged buckets (the exact
        // estimate may shift within a bucket as ranks change, but the
        // ordering invariants and the exact max must hold).
        assert!(two.p50_ns > 0 && two.p50_ns <= two.p95_ns && two.p95_ns <= two.max_ns);
        assert_eq!(two.max_ns, one.max_ns);
        assert!((two.mean_ns - one.mean_ns).abs() < 1e-9, "same samples, same mean");
    }

    #[test]
    fn fleet_report_computes_the_straggler_ratio_and_keeps_shard_order() {
        let base = RunReport::collect();
        let shard = |i: usize, wall: u64| ShardReport {
            shard: i,
            wall_ns: wall,
            points: 4,
            report: base.clone(),
        };
        // Deliberately out of order; wall times 100/100/300 → the slowest
        // shard runs 3x the median.
        let fleet = FleetReport::new(vec![shard(2, 300), shard(0, 100), shard(1, 100)]);
        assert_eq!(fleet.n_shards, 3);
        assert_eq!(fleet.schema_version, RUNSTATS_SCHEMA_VERSION);
        assert!((fleet.straggler_ratio - 3.0).abs() < 1e-12);
        let order: Vec<usize> = fleet.shards.iter().map(|s| s.shard).collect();
        assert_eq!(order, vec![0, 1, 2]);
        // The document is detectable as a fleet report: both marker keys.
        let v: serde_json::Value = serde_json::from_str(&fleet.to_json()).unwrap();
        assert!(v.get("fleet").as_object().is_some());
        assert_eq!(v.get("shards").as_array().unwrap().len(), 3);
    }

    #[test]
    fn maybe_write_is_a_no_op_when_disabled() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        yali_obs::set_enabled(false);
        let path = std::env::temp_dir().join("yali_runstats_disabled.json");
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        maybe_write_runstats(&path);
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn maybe_write_emits_the_file_when_enabled() {
        let _lock = GLOBAL_STATE.lock().unwrap();
        let path = std::env::temp_dir().join("yali_runstats_enabled.json");
        let path = path.to_str().unwrap().to_string();
        yali_obs::set_enabled(true);
        maybe_write_runstats(&path);
        yali_obs::set_enabled(false);
        let text = std::fs::read_to_string(&path).expect("report written");
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(v["obs_enabled"], true);
        assert!(v["caches"]["embed"]["hit_ratio"].is_number());
        let _ = std::fs::remove_file(&path);
    }
}
