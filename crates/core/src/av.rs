//! A signature-based anti-virus scanner, standing in for the VirusTotal
//! aggregate of Figure 16 (see DESIGN.md's substitution table).
//!
//! The scanner extracts opcode n-gram signatures from known malware
//! samples, drops any n-gram that also appears in a benign corpus, and
//! flags a program when enough distinctive signatures match. Like the
//! commercial engines in the paper's Figure 16, it is excellent on the
//! exact binaries it was built from and degrades as transformations
//! reshuffle the instruction stream.

use std::collections::HashSet;
use yali_ir::Module;

/// Signature width (opcodes per n-gram).
const NGRAM: usize = 4;

/// A fitted signature scanner.
#[derive(Debug, Clone)]
pub struct SignatureScanner {
    signatures: HashSet<[u8; NGRAM]>,
    /// Fraction of a sample's n-grams that must match to flag "malware".
    pub detect_threshold: f64,
    /// Stricter fraction for the family ("is mirai") verdict.
    pub family_threshold: f64,
}

fn ngrams(m: &Module) -> Vec<[u8; NGRAM]> {
    let mut out = Vec::new();
    for f in m.definitions() {
        let ops: Vec<u8> = f
            .iter_insts()
            .map(|(_, i)| f.inst(i).op.index() as u8)
            .collect();
        for w in ops.windows(NGRAM) {
            out.push([w[0], w[1], w[2], w[3]]);
        }
    }
    out
}

impl SignatureScanner {
    /// Builds a signature database from known malware, removing n-grams
    /// that also occur in the benign corpus.
    pub fn build(malware: &[Module], benign: &[Module]) -> SignatureScanner {
        let benign_grams: HashSet<[u8; NGRAM]> =
            benign.iter().flat_map(ngrams).collect();
        let mut signatures = HashSet::new();
        for m in malware {
            for g in ngrams(m) {
                if !benign_grams.contains(&g) {
                    signatures.insert(g);
                }
            }
        }
        SignatureScanner {
            signatures,
            detect_threshold: 0.15,
            family_threshold: 0.20,
        }
    }

    /// The fraction of the sample's n-grams that hit the database.
    pub fn match_ratio(&self, m: &Module) -> f64 {
        let grams = ngrams(m);
        if grams.is_empty() {
            return 0.0;
        }
        let hits = grams.iter().filter(|g| self.signatures.contains(*g)).count();
        hits as f64 / grams.len() as f64
    }

    /// The "is malware" verdict.
    pub fn is_malware(&self, m: &Module) -> bool {
        self.match_ratio(m) >= self.detect_threshold
    }

    /// The stricter "is this family" verdict.
    pub fn is_family(&self, m: &Module) -> bool {
        self.match_ratio(m) >= self.family_threshold
    }

    /// Match ratios for a whole pool, scanned in parallel on the engine's
    /// worker pool, preserving order. The per-module ratio is identical
    /// to [`SignatureScanner::match_ratio`], so the batched verdicts
    /// equal a serial scan at any `YALI_THREADS`.
    pub fn match_ratios(&self, modules: &[Module]) -> Vec<f64> {
        crate::engine::par_map(modules, |_, m| self.match_ratio(m))
    }

    /// Batched "is malware" verdicts (see [`SignatureScanner::match_ratios`]).
    pub fn is_malware_all(&self, modules: &[Module]) -> Vec<bool> {
        self.match_ratios(modules)
            .into_iter()
            .map(|r| r >= self.detect_threshold)
            .collect()
    }

    /// Batched "is this family" verdicts (see [`SignatureScanner::match_ratios`]).
    pub fn is_family_all(&self, modules: &[Module]) -> Vec<bool> {
        self.match_ratios(modules)
            .into_iter()
            .map(|r| r >= self.family_threshold)
            .collect()
    }

    /// Number of stored signatures.
    pub fn num_signatures(&self) -> usize {
        self.signatures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modules(f: fn(u64) -> yali_minic::Program, seeds: std::ops::Range<u64>) -> Vec<Module> {
        seeds.map(|s| yali_minic::lower(&f(s))).collect()
    }

    #[test]
    fn detects_known_family_members_and_passes_benign() {
        let mal = modules(yali_dataset::mirai_variant, 0..10);
        let ben = modules(yali_dataset::benign_program, 0..10);
        let scanner = SignatureScanner::build(&mal, &ben);
        assert!(scanner.num_signatures() > 0);
        // Unseen family members still match (shared structure).
        let fresh_mal = modules(yali_dataset::mirai_variant, 50..58);
        let fresh_ben = modules(yali_dataset::benign_program, 50..58);
        let mal_hits = fresh_mal.iter().filter(|m| scanner.is_malware(m)).count();
        let ben_hits = fresh_ben.iter().filter(|m| scanner.is_malware(m)).count();
        assert!(mal_hits >= 6, "only {mal_hits}/8 malware flagged");
        assert!(ben_hits <= 2, "{ben_hits}/8 benign false positives");
    }

    #[test]
    fn family_verdict_is_stricter() {
        let mal = modules(yali_dataset::mirai_variant, 0..10);
        let ben = modules(yali_dataset::benign_program, 0..10);
        let scanner = SignatureScanner::build(&mal, &ben);
        let fresh = modules(yali_dataset::mirai_variant, 80..90);
        let malware_rate = fresh.iter().filter(|m| scanner.is_malware(m)).count();
        let family_rate = fresh.iter().filter(|m| scanner.is_family(m)).count();
        assert!(family_rate <= malware_rate);
    }

    #[test]
    fn batched_verdicts_match_serial_scan() {
        let mal = modules(yali_dataset::mirai_variant, 0..10);
        let ben = modules(yali_dataset::benign_program, 0..10);
        let scanner = SignatureScanner::build(&mal, &ben);
        let pool: Vec<Module> = modules(yali_dataset::mirai_variant, 30..36)
            .into_iter()
            .chain(modules(yali_dataset::benign_program, 30..36))
            .collect();
        let serial_mal: Vec<bool> = pool.iter().map(|m| scanner.is_malware(m)).collect();
        let serial_fam: Vec<bool> = pool.iter().map(|m| scanner.is_family(m)).collect();
        assert_eq!(scanner.is_malware_all(&pool), serial_mal);
        assert_eq!(scanner.is_family_all(&pool), serial_fam);
    }

    #[test]
    fn optimization_degrades_detection() {
        // Figure 16's pattern: the AV is strongest on untransformed code.
        let mal = modules(yali_dataset::mirai_variant, 0..12);
        let ben = modules(yali_dataset::benign_program, 0..12);
        let scanner = SignatureScanner::build(&mal, &ben);
        let fresh: Vec<Module> = modules(yali_dataset::mirai_variant, 40..52);
        let plain: f64 = fresh
            .iter()
            .map(|m| scanner.match_ratio(m))
            .sum::<f64>();
        let optimized: f64 = fresh
            .iter()
            .map(|m| {
                let o = yali_opt::optimized(m, yali_opt::OptLevel::O3);
                scanner.match_ratio(&o)
            })
            .sum::<f64>();
        assert!(
            optimized < plain,
            "optimization should reduce signature matches ({optimized} !< {plain})"
        );
    }
}
