//! The four adversarial games (paper, Section 2, Figure 1).
//!
//! | game | classifier trains on | evader transforms challenges | classifier normalizes |
//! |------|----------------------|------------------------------|-----------------------|
//! | 0 (symmetric) | plain 0.8 split | no | no |
//! | 1 (asymmetric) | plain 0.8 split | yes | no |
//! | 2 (symmetric) | evader-transformed 0.8 split | yes | no |
//! | 3 (asymmetric) | normalizer-transformed 0.8 split | yes | yes (challenges too) |

use crate::arena::{fit_classifier_cached, transform_all, ClassifierSpec, Corpus};
use crate::transformer::Transformer;
use serde::Serialize;

/// Which of the paper's four games to play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Game {
    /// No transformation anywhere.
    Game0,
    /// The evader transforms challenges; the classifier is unaware.
    Game1,
    /// Classifier and evader share the same transformation.
    Game2,
    /// The evader obfuscates; the classifier normalizes with an optimizer.
    Game3,
}

impl Game {
    /// All four games.
    pub const ALL: [Game; 4] = [Game::Game0, Game::Game1, Game::Game2, Game::Game3];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Game::Game0 => "game0",
            Game::Game1 => "game1",
            Game::Game2 => "game2",
            Game::Game3 => "game3",
        }
    }
}

impl std::fmt::Display for Game {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A full game configuration (Definition 2.4 instantiated).
#[derive(Clone)]
pub struct GameConfig {
    /// Which game.
    pub game: Game,
    /// The classifier design point.
    pub classifier: ClassifierSpec,
    /// The evader's transformation (ignored in Game 0).
    pub evader: Transformer,
    /// The classifier's normalizer (Game 3 only; the paper uses `-O3`).
    pub normalizer: Transformer,
    /// Train fraction (the paper's games use 0.8).
    pub train_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl GameConfig {
    /// A Game-0 configuration with the given classifier.
    pub fn game0(classifier: ClassifierSpec, seed: u64) -> GameConfig {
        GameConfig {
            game: Game::Game0,
            classifier,
            evader: Transformer::None,
            normalizer: Transformer::Opt(yali_opt::OptLevel::O3),
            train_fraction: 0.8,
            seed,
        }
    }

    /// Same configuration, different game/evader.
    pub fn with_game(mut self, game: Game, evader: Transformer) -> GameConfig {
        self.game = game;
        self.evader = evader;
        self
    }
}

/// The outcome of one game round.
#[derive(Debug, Clone, Serialize)]
pub struct GameResult {
    /// Challenge accuracy (hits / tries, Definition 2.4's winning rate).
    pub accuracy: f64,
    /// Macro F1 (equals accuracy on balanced sets up to rounding).
    pub f1: f64,
    /// Training-set size.
    pub n_train: usize,
    /// Challenge-set size.
    pub n_test: usize,
    /// Classifier model memory proxy, in bytes.
    pub model_bytes: usize,
}

/// Plays one game (Definition 2.4): the evader transforms each challenge
/// `s` into `s' = E(s)`, the classifier guesses `C(s')`, and the result
/// reports the classifier's hit rate.
pub fn play(corpus: &Corpus, config: &GameConfig) -> GameResult {
    // Per-game round counters feed `RunReport`'s round table; `name()`
    // returns `&'static str` but the counter macro wants a literal.
    match config.game {
        Game::Game0 => yali_obs::count!("game.rounds.game0", 1),
        Game::Game1 => yali_obs::count!("game.rounds.game1", 1),
        Game::Game2 => yali_obs::count!("game.rounds.game2", 1),
        Game::Game3 => yali_obs::count!("game.rounds.game3", 1),
    }
    let _round = yali_obs::span!("game.round");
    let (train, test) = corpus.split(config.train_fraction, config.seed);
    let train_labels: Vec<usize> = train.iter().map(|s| s.class).collect();
    let test_labels: Vec<usize> = test.iter().map(|s| s.class).collect();

    // What the classifier trains on.
    let train_transform = match config.game {
        Game::Game0 | Game::Game1 => Transformer::None,
        Game::Game2 => config.evader,
        Game::Game3 => config.normalizer,
    };
    let train_modules = {
        let _s = yali_obs::span!("game.transform_train");
        transform_all(&train, train_transform, config.seed ^ 0x7431)
    };
    // Through the model store: replayed design points (sweeps, repeated
    // games on one corpus) load the trained classifier instead of
    // retraining it.
    let clf = {
        let _s = yali_obs::span!("game.fit");
        fit_classifier_cached(
            &config.classifier,
            &train_modules,
            &train_labels,
            corpus.n_classes,
        )
    };

    // What the evader hands over.
    let evader = match config.game {
        Game::Game0 => Transformer::None,
        _ => config.evader,
    };
    let mut challenge_modules = {
        let _s = yali_obs::span!("game.transform_challenge");
        transform_all(&test, evader, config.seed ^ 0xEEAD)
    };
    // Game 3: the classifier re-optimizes every challenge it receives.
    if config.game == Game::Game3 {
        if let Transformer::Opt(level) = config.normalizer {
            let _s = yali_obs::span!("game.normalize");
            crate::engine::par_for_each_mut(&mut challenge_modules, |_, m| {
                yali_opt::optimize(m, level);
            });
        }
    }

    let pred: Vec<usize> = {
        let _s = yali_obs::span!("game.infer");
        clf.classify_all(&challenge_modules)
    };
    GameResult {
        accuracy: yali_ml::accuracy(&pred, &test_labels),
        f1: yali_ml::macro_f1(&pred, &test_labels, corpus.n_classes),
        n_train: train.len(),
        n_test: test.len(),
        model_bytes: clf.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ml::ModelKind;

    fn small_corpus() -> Corpus {
        Corpus::poj(4, 10, 11)
    }

    #[test]
    fn game0_beats_chance_comfortably() {
        let corpus = small_corpus();
        let cfg = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 3);
        let r = play(&corpus, &cfg);
        assert_eq!(r.n_test, 8);
        assert!(r.accuracy > 0.5, "accuracy {}", r.accuracy);
        assert!(r.model_bytes > 0);
    }

    #[test]
    fn game1_with_ollvm_hurts_an_unaware_classifier() {
        let corpus = small_corpus();
        let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 3);
        let g0 = play(&corpus, &base);
        let g1 = play(
            &corpus,
            &base.clone().with_game(
                Game::Game1,
                Transformer::Ir(yali_obf::IrObf::Ollvm),
            ),
        );
        assert!(
            g1.accuracy <= g0.accuracy,
            "game1 {} should not beat game0 {}",
            g1.accuracy,
            g0.accuracy
        );
    }

    #[test]
    fn game2_recovers_much_of_game0() {
        // The game-2-beats-game-1 claim is statistical: on an 8-sample
        // challenge set a single seed can flip it, so compare means over a
        // few seeds.
        let corpus = small_corpus();
        let evader = Transformer::Ir(yali_obf::IrObf::Ollvm);
        let (mut a1, mut a2) = (0.0, 0.0);
        let seeds = [5u64, 6, 7];
        for &seed in &seeds {
            let base = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), seed);
            a1 += play(&corpus, &base.clone().with_game(Game::Game1, evader)).accuracy;
            a2 += play(&corpus, &base.clone().with_game(Game::Game2, evader)).accuracy;
        }
        let (a1, a2) = (a1 / seeds.len() as f64, a2 / seeds.len() as f64);
        assert!(a2 >= a1, "mean game2 {a2} should not trail mean game1 {a1}");
    }

    #[test]
    fn f1_tracks_accuracy_on_balanced_corpora() {
        let corpus = small_corpus();
        let cfg = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Knn), 1);
        let r = play(&corpus, &cfg);
        assert!((r.accuracy - r.f1).abs() < 0.25, "acc {} vs f1 {}", r.accuracy, r.f1);
    }

    #[test]
    fn results_are_reproducible() {
        let corpus = small_corpus();
        let cfg = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 77);
        let a = play(&corpus, &cfg);
        let b = play(&corpus, &cfg);
        assert_eq!(a.accuracy, b.accuracy);
    }
}
