//! The classification arena: corpora, classifier specifications, and the
//! embedding/training plumbing shared by all four games.
//!
//! Per-sample work (transformation, embedding, classification) runs on the
//! [`crate::engine`]: it fans out over scoped threads and answers repeated
//! embeddings from the content-addressed cache, without changing any
//! result.

use crate::engine;
use crate::transformer::Transformer;
use yali_embed::{Embedding, EmbeddingKind};
use yali_ir::Fnv64;
use yali_minic::Program;
use yali_ml::serialize::{ByteReader, ByteWriter};
use yali_ml::{Dgcnn, DgcnnConfig, GraphSample, ModelKind, TrainConfig, VectorClassifier};

/// One labelled solution: a source program plus its problem class.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The problem class (`0..n_classes`).
    pub class: usize,
    /// The solution, kept at source level so source evaders can run.
    pub program: Program,
}

/// A labelled corpus of solutions.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The samples.
    pub samples: Vec<Sample>,
    /// Number of problem classes.
    pub n_classes: usize,
}

impl Corpus {
    /// Builds a perfectly balanced POJ-104-style corpus: `per_class`
    /// author solutions for each of `n_classes` problems (the paper's
    /// 104 × 500; scale down for quick runs).
    ///
    /// Problem classes are chosen deterministically from `seed` when
    /// `n_classes < 104` (the paper samples 32 random classes for RQ1).
    pub fn poj(n_classes: usize, per_class: usize, seed: u64) -> Corpus {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut class_ids: Vec<usize> = (0..yali_dataset::NUM_PROBLEMS).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xC0FFEE);
        class_ids.shuffle(&mut rng);
        class_ids.truncate(n_classes);
        let mut samples = Vec::with_capacity(n_classes * per_class);
        for (label, &pid) in class_ids.iter().enumerate() {
            for author in 0..per_class {
                samples.push(Sample {
                    class: label,
                    program: yali_dataset::solution(pid, seed ^ (author as u64) << 8),
                });
            }
        }
        Corpus {
            samples,
            n_classes,
        }
    }

    /// A stratified train/test split (the paper's 375/125 per class is
    /// `train_fraction = 0.75`; games 0–3 use 0.8).
    pub fn split(&self, train_fraction: f64, seed: u64) -> (Vec<&Sample>, Vec<&Sample>) {
        let refs: Vec<&Sample> = self.samples.iter().collect();
        let labels: Vec<usize> = self.samples.iter().map(|s| s.class).collect();
        let (tr, _, te, _) = yali_ml::train_test_split(&refs, &labels, train_fraction, seed);
        (tr, te)
    }
}

/// Which stochastic model a classifier uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelChoice {
    /// One of the six array-input models.
    Vector(ModelKind),
    /// Zhang et al.'s graph network (graph embeddings only).
    Dgcnn,
}

impl ModelChoice {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelChoice::Vector(m) => m.name(),
            ModelChoice::Dgcnn => "dgcnn",
        }
    }
}

impl std::fmt::Display for ModelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A classifier design point: embedding × model (Figure 3's grid).
#[derive(Debug, Clone)]
pub struct ClassifierSpec {
    /// The program embedding.
    pub embedding: EmbeddingKind,
    /// The model.
    pub model: ModelChoice,
    /// Training knobs (epochs, trees, seeds).
    pub train: TrainConfig,
    /// DGCNN knobs, used when `model` is [`ModelChoice::Dgcnn`].
    pub dgcnn: DgcnnConfig,
}

impl ClassifierSpec {
    /// A histogram + given model classifier with default training knobs.
    pub fn histogram(model: ModelKind) -> ClassifierSpec {
        ClassifierSpec {
            embedding: EmbeddingKind::Histogram,
            model: ModelChoice::Vector(model),
            train: TrainConfig::default(),
            dgcnn: DgcnnConfig::default(),
        }
    }

    /// The graph/array-appropriate network for an embedding: dgcnn on
    /// graphs, cnn on arrays — the paper's RQ1 setup.
    pub fn zhang_net(embedding: EmbeddingKind) -> ClassifierSpec {
        let model = if embedding.is_graph() {
            ModelChoice::Dgcnn
        } else {
            ModelChoice::Vector(ModelKind::Cnn)
        };
        ClassifierSpec {
            embedding,
            model,
            train: TrainConfig::default(),
            dgcnn: DgcnnConfig::default(),
        }
    }
}

/// A trained classifier, ready to be challenged.
pub enum TrainedClassifier {
    /// Array-model classifier.
    Vector(VectorClassifier, EmbeddingKind),
    /// Graph-model classifier.
    Graph(Box<Dgcnn>, EmbeddingKind),
}

fn graph_sample(m: &yali_ir::Module, kind: EmbeddingKind) -> GraphSample {
    match engine::embed_cached(m, kind) {
        Embedding::Graph(g) => GraphSample {
            feats: g.feats,
            edges: g.edges.iter().map(|&(s, d, _)| (s, d)).collect(),
        },
        Embedding::Vector(_) => unreachable!("graph embedding expected"),
    }
}

fn vector_sample(m: &yali_ir::Module, kind: EmbeddingKind) -> Vec<f64> {
    match engine::embed_cached(m, kind) {
        Embedding::Vector(v) => v,
        Embedding::Graph(_) => unreachable!("vector embedding expected"),
    }
}

impl TrainedClassifier {
    /// Trains `spec` on the given (already transformed) training modules.
    ///
    /// # Panics
    ///
    /// Panics when a vector model is paired with a graph embedding (the
    /// paper's Figure 3: only dgcnn accepts graphs) or the set is empty.
    pub fn fit(
        spec: &ClassifierSpec,
        modules: &[yali_ir::Module],
        labels: &[usize],
        n_classes: usize,
    ) -> TrainedClassifier {
        match spec.model {
            ModelChoice::Dgcnn => {
                assert!(
                    spec.embedding.is_graph(),
                    "dgcnn requires a graph embedding"
                );
                let graphs: Vec<GraphSample> = {
                    let _s = yali_obs::span!("embed.batch");
                    engine::par_map(modules, |_, m| graph_sample(m, spec.embedding))
                };
                let _s = yali_obs::span!("train.fit");
                let model = Dgcnn::fit(&graphs, labels, n_classes, &spec.dgcnn);
                TrainedClassifier::Graph(Box::new(model), spec.embedding)
            }
            ModelChoice::Vector(kind) => {
                assert!(
                    !spec.embedding.is_graph(),
                    "{kind} cannot consume graph embeddings"
                );
                let x: Vec<Vec<f64>> = {
                    let _s = yali_obs::span!("embed.batch");
                    engine::par_map(modules, |_, m| vector_sample(m, spec.embedding))
                };
                let _s = yali_obs::span!("train.fit");
                let model = VectorClassifier::fit(kind, &x, labels, n_classes, &spec.train);
                TrainedClassifier::Vector(model, spec.embedding)
            }
        }
    }

    /// Classifies one challenge module. Pure: a trained classifier can be
    /// challenged from many threads at once.
    pub fn classify(&self, m: &yali_ir::Module) -> usize {
        match self {
            TrainedClassifier::Vector(model, kind) => model.predict(&vector_sample(m, *kind)),
            TrainedClassifier::Graph(model, kind) => model.predict(&graph_sample(m, *kind)),
        }
    }

    /// Classifies a whole challenge set, preserving order: embeddings are
    /// computed in parallel through the engine's embed cache, then the
    /// whole batch runs through the model's batched inference path
    /// ([`VectorClassifier::predict_batch`] / [`Dgcnn::predict_batch`]) —
    /// GEMM-backed chunked kernels whose labels are identical to a
    /// per-module [`TrainedClassifier::classify`] loop at any
    /// `YALI_THREADS`.
    pub fn classify_all(&self, modules: &[yali_ir::Module]) -> Vec<usize> {
        match self {
            TrainedClassifier::Vector(model, kind) => {
                let xs: Vec<Vec<f64>> = {
                    let _s = yali_obs::span!("embed.batch");
                    engine::par_map(modules, |_, m| vector_sample(m, *kind))
                };
                let _s = yali_obs::span!("infer.batch");
                model.predict_batch(&xs)
            }
            TrainedClassifier::Graph(model, kind) => {
                let gs: Vec<GraphSample> = {
                    let _s = yali_obs::span!("embed.batch");
                    engine::par_map(modules, |_, m| graph_sample(m, *kind))
                };
                let _s = yali_obs::span!("infer.batch");
                model.predict_batch(&gs)
            }
        }
    }

    /// Approximate model memory (Figure 7's second panel).
    pub fn memory_bytes(&self) -> usize {
        match self {
            TrainedClassifier::Vector(model, _) => model.memory_bytes(),
            TrainedClassifier::Graph(model, _) => model.memory_bytes(),
        }
    }

    /// Serializes the trained classifier for the engine's
    /// [`engine::ModelCache`]. Weights travel as `f64` bit patterns, so
    /// the deserialized classifier's predictions are byte-identical.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            TrainedClassifier::Vector(model, kind) => {
                w.put_u8(1);
                w.put_u8(embed_tag(*kind));
                w.put_bytes(&model.to_bytes());
            }
            TrainedClassifier::Graph(model, kind) => {
                w.put_u8(2);
                w.put_u8(embed_tag(*kind));
                w.put_bytes(&model.to_bytes());
            }
        }
        w.into_bytes()
    }

    /// Deserializes a classifier written by [`TrainedClassifier::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed blob (a model-store bug, not an input error).
    pub fn from_bytes(bytes: &[u8]) -> TrainedClassifier {
        let mut r = ByteReader::new(bytes);
        let tag = r.get_u8();
        let kind = embed_from_tag(r.get_u8());
        let blob = r.get_bytes();
        assert!(r.is_done(), "trailing bytes in model blob");
        match tag {
            1 => TrainedClassifier::Vector(VectorClassifier::from_bytes(&blob), kind),
            2 => TrainedClassifier::Graph(Box::new(Dgcnn::from_bytes(&blob)), kind),
            t => panic!("unknown trained-classifier tag {t}"),
        }
    }
}

fn embed_tag(kind: EmbeddingKind) -> u8 {
    EmbeddingKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL") as u8
}

fn embed_from_tag(tag: u8) -> EmbeddingKind {
    EmbeddingKind::ALL[tag as usize]
}

/// Digest of everything [`TrainedClassifier::fit`] consumes: the design
/// point (embedding, model, training knobs) and the training set (module
/// content hashes, labels, class count). Two calls with equal keys train
/// byte-identical classifiers.
fn classifier_key(
    spec: &ClassifierSpec,
    modules: &[yali_ir::Module],
    labels: &[usize],
    n_classes: usize,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("classifier-v1");
    h.write_str(spec.embedding.name());
    h.write_str(spec.model.name());
    h.write_u64(spec.train.seed);
    h.write_u64(spec.train.epochs as u64);
    h.write_u64(spec.train.n_trees as u64);
    h.write_u64(spec.train.k as u64);
    if let ModelChoice::Dgcnn = spec.model {
        // DGCNN knobs only matter for graph models; hashing them always
        // would needlessly split otherwise-identical vector design points.
        h.write_u64(spec.dgcnn.channels.len() as u64);
        for &c in &spec.dgcnn.channels {
            h.write_u64(c as u64);
        }
        h.write_u64(spec.dgcnn.k as u64);
        h.write_u64(spec.dgcnn.dense as u64);
        h.write_u64(spec.dgcnn.dropout.to_bits());
        h.write_u64(spec.dgcnn.epochs as u64);
        h.write_u64(spec.dgcnn.batch as u64);
        h.write_u64(spec.dgcnn.lr.to_bits());
        h.write_u64(spec.dgcnn.seed);
    }
    h.write_u64(n_classes as u64);
    h.write_u64(modules.len() as u64);
    for m in modules {
        h.write_u64(m.content_hash());
    }
    for &l in labels {
        h.write_u64(l as u64);
    }
    h.finish()
}

/// [`TrainedClassifier::fit`] through the engine's model store: a sweep
/// that revisits a design point (same spec, same training modules) loads
/// the serialized model instead of retraining. Under `YALI_CACHE=0` this
/// is exactly `fit`.
pub fn fit_classifier_cached(
    spec: &ClassifierSpec,
    modules: &[yali_ir::Module],
    labels: &[usize],
    n_classes: usize,
) -> TrainedClassifier {
    if !engine::caching_enabled() {
        return TrainedClassifier::fit(spec, modules, labels, n_classes);
    }
    let key = classifier_key(spec, modules, labels, n_classes);
    let store = engine::ModelCache::global();
    if let Some(blob) = store.get(key) {
        return TrainedClassifier::from_bytes(&blob);
    }
    let clf = TrainedClassifier::fit(spec, modules, labels, n_classes);
    store.insert(key, clf.to_bytes());
    clf
}

/// [`VectorClassifier::fit`] through the engine's model store, for
/// experiments that train directly on feature vectors (transformer
/// discovery, the malware scanner). The key digests the full feature
/// matrix via `f64` bit patterns, so only exact re-training is answered
/// from the store.
pub fn fit_vector_cached(
    model: ModelKind,
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    config: &TrainConfig,
) -> VectorClassifier {
    if !engine::caching_enabled() {
        return VectorClassifier::fit(model, x, y, n_classes, config);
    }
    let mut h = Fnv64::new();
    h.write_str("vector-v1");
    h.write_str(model.name());
    h.write_u64(config.seed);
    h.write_u64(config.epochs as u64);
    h.write_u64(config.n_trees as u64);
    h.write_u64(config.k as u64);
    h.write_u64(n_classes as u64);
    h.write_u64(x.len() as u64);
    for row in x {
        h.write_u64(row.len() as u64);
        for &v in row {
            h.write_u64(v.to_bits());
        }
    }
    for &l in y {
        h.write_u64(l as u64);
    }
    let key = h.finish();
    let store = engine::ModelCache::global();
    if let Some(blob) = store.get(key) {
        return VectorClassifier::from_bytes(&blob);
    }
    let clf = VectorClassifier::fit(model, x, y, n_classes, config);
    store.insert(key, clf.to_bytes());
    clf
}

/// Materializes transformed IR modules for a set of samples, in parallel
/// and through the engine's transform cache. Each sample's transformation
/// seed depends only on its index, so the output is identical at every
/// thread count, cached or cold.
pub fn transform_all(samples: &[&Sample], t: Transformer, seed: u64) -> Vec<yali_ir::Module> {
    let _s = yali_obs::span!("transform.batch");
    engine::par_map(samples, |i, s| {
        engine::transform_cached(&s.program, t, seed ^ ((i as u64) << 16))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_balanced_and_deterministic() {
        let c = Corpus::poj(4, 6, 9);
        assert_eq!(c.samples.len(), 24);
        for class in 0..4 {
            assert_eq!(c.samples.iter().filter(|s| s.class == class).count(), 6);
        }
        let c2 = Corpus::poj(4, 6, 9);
        assert_eq!(
            yali_minic::print(&c.samples[0].program),
            yali_minic::print(&c2.samples[0].program)
        );
    }

    #[test]
    fn split_is_stratified() {
        let c = Corpus::poj(3, 10, 1);
        let (tr, te) = c.split(0.8, 7);
        assert_eq!(tr.len(), 24);
        assert_eq!(te.len(), 6);
    }

    #[test]
    fn histogram_rf_classifier_learns_a_small_corpus() {
        let c = Corpus::poj(3, 10, 2);
        let (tr, te) = c.split(0.8, 3);
        let train_modules = transform_all(&tr, Transformer::None, 0);
        let labels: Vec<usize> = tr.iter().map(|s| s.class).collect();
        let spec = ClassifierSpec::histogram(ModelKind::Rf);
        let clf = TrainedClassifier::fit(&spec, &train_modules, &labels, 3);
        let test_modules = transform_all(&te, Transformer::None, 1);
        let pred: Vec<usize> = clf.classify_all(&test_modules);
        let truth: Vec<usize> = te.iter().map(|s| s.class).collect();
        let acc = yali_ml::accuracy(&pred, &truth);
        assert!(acc > 0.5, "accuracy {acc} too low for 3 separable classes");
    }

    #[test]
    #[should_panic(expected = "graph embedding")]
    fn vector_model_rejects_graph_embedding() {
        let c = Corpus::poj(2, 3, 0);
        let (tr, _) = c.split(0.8, 0);
        let ms = transform_all(&tr, Transformer::None, 0);
        let labels: Vec<usize> = tr.iter().map(|s| s.class).collect();
        let spec = ClassifierSpec {
            embedding: EmbeddingKind::Cfg,
            model: ModelChoice::Vector(ModelKind::Rf),
            train: TrainConfig::default(),
            dgcnn: DgcnnConfig::default(),
        };
        let _ = TrainedClassifier::fit(&spec, &ms, &labels, 2);
    }
}
