//! RQ7: can a classifier detect *which transformer* was applied to a
//! program? (Paper, Section 4.7, Figure 14.)
//!
//! Ten transformer classes; four dataset constructions that differ in
//! whether every transformer sees the same programs (datasets 1 and 2) or
//! each transformer gets its own programs (datasets 3 and 4 — where high
//! accuracy is a spurious program-identity signal, as the paper shows).

use crate::transformer::Transformer;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yali_ml::{ModelKind, TrainConfig};

/// The four dataset constructions of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiscoverDataset {
    /// Solutions to one problem; all transformers see the same programs.
    SharedOneProblem,
    /// A few solutions from many problems; shared across transformers.
    SharedManyProblems,
    /// One problem *per transformer* (spurious class signal).
    DisjointOneProblem,
    /// Many problems, disjoint per transformer.
    DisjointManyProblems,
}

impl DiscoverDataset {
    /// All four, in the paper's dataset1..dataset4 order.
    pub const ALL: [DiscoverDataset; 4] = [
        DiscoverDataset::SharedOneProblem,
        DiscoverDataset::SharedManyProblems,
        DiscoverDataset::DisjointOneProblem,
        DiscoverDataset::DisjointManyProblems,
    ];

    /// The paper's name.
    pub fn name(self) -> &'static str {
        match self {
            DiscoverDataset::SharedOneProblem => "dataset1",
            DiscoverDataset::SharedManyProblems => "dataset2",
            DiscoverDataset::DisjointOneProblem => "dataset3",
            DiscoverDataset::DisjointManyProblems => "dataset4",
        }
    }
}

/// Result of the obfuscator-identification experiment.
#[derive(Debug, Clone)]
pub struct DiscoverResult {
    /// Hit rate over the held-out transformed programs.
    pub accuracy: f64,
    /// Total samples (10 × programs-per-transformer).
    pub n_samples: usize,
}

/// Generates base programs for one transformer class.
fn base_programs(
    dataset: DiscoverDataset,
    transformer_idx: usize,
    per_transformer: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<yali_minic::Program> {
    let shared = matches!(
        dataset,
        DiscoverDataset::SharedOneProblem | DiscoverDataset::SharedManyProblems
    );
    let one_problem = matches!(
        dataset,
        DiscoverDataset::SharedOneProblem | DiscoverDataset::DisjointOneProblem
    );
    // Shared datasets: the same seeds for every transformer; disjoint
    // datasets: seeds offset per transformer.
    let offset = if shared { 0 } else { (transformer_idx as u64 + 1) * 10_000 };
    let problem_pick = |k: usize, rng: &mut ChaCha8Rng| -> usize {
        if one_problem {
            // One problem per class (shared: the same problem for all).
            let fixed = if shared { 17 } else { (transformer_idx * 7 + 3) % yali_dataset::NUM_PROBLEMS };
            let _ = k;
            fixed
        } else {
            rng.gen_range(0..yali_dataset::NUM_PROBLEMS)
        }
    };
    (0..per_transformer)
        .map(|k| {
            let pid = problem_pick(k, rng);
            yali_dataset::solution(pid, offset + k as u64)
        })
        .collect()
}

/// Runs the RQ7 experiment: train a histogram+rf classifier to name the
/// transformer, challenge it with held-out transformed programs.
pub fn discover_transformer(
    dataset: DiscoverDataset,
    per_transformer: usize,
    train_fraction: f64,
    seed: u64,
) -> DiscoverResult {
    let _round = yali_obs::span!("discover.round");
    yali_obs::count!("game.rounds.discover", 1);
    let transformers = Transformer::RQ7_TRANSFORMERS;
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD15C);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for (ti, &t) in transformers.iter().enumerate() {
        // One RNG per dataset construction so "shared" classes really see
        // the same base programs.
        let mut prng = ChaCha8Rng::seed_from_u64(seed ^ 0xBA5E);
        let bases = base_programs(dataset, ti, per_transformer, &mut prng);
        // Transform + embed per sample in parallel; each sample's seed is a
        // function of its index, so results match the serial loop.
        x.extend(crate::engine::par_map(&bases, |k, p| {
            let m = t.apply(p, seed ^ ((ti as u64) << 24) ^ (k as u64));
            yali_embed::histogram(&m)
        }));
        y.extend(std::iter::repeat_n(ti, bases.len()));
    }
    // Shuffled stratified split.
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.shuffle(&mut rng);
    let cut = (idx.len() as f64 * train_fraction) as usize;
    let (tr, te) = idx.split_at(cut);
    let xtr: Vec<Vec<f64>> = tr.iter().map(|&i| x[i].clone()).collect();
    let ytr: Vec<usize> = tr.iter().map(|&i| y[i]).collect();
    let clf = crate::arena::fit_vector_cached(
        ModelKind::Rf,
        &xtr,
        &ytr,
        transformers.len(),
        &TrainConfig {
            seed,
            ..Default::default()
        },
    );
    // Batched inference over the held-out feature rows.
    let xte: Vec<Vec<f64>> = te.iter().map(|&i| x[i].clone()).collect();
    let pred: Vec<usize> = clf.predict_batch(&xte);
    let truth: Vec<usize> = te.iter().map(|&i| y[i]).collect();
    DiscoverResult {
        accuracy: yali_ml::accuracy(&pred, &truth),
        n_samples: x.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_is_hard_on_shared_programs() {
        // The paper's headline RQ7 finding: ~25% on dataset1/2/4, far from
        // algorithm-classification accuracy, though above the 10% chance
        // rate. At our scale we assert the qualitative band.
        let r = discover_transformer(DiscoverDataset::SharedOneProblem, 12, 0.8, 3);
        assert_eq!(r.n_samples, 120);
        assert!(r.accuracy < 0.9, "suspiciously easy: {}", r.accuracy);
    }

    #[test]
    fn disjoint_one_problem_is_spuriously_easy() {
        // dataset3: each transformer has its own problem, so the classifier
        // can cheat by recognizing the problem.
        let shared = discover_transformer(DiscoverDataset::SharedOneProblem, 10, 0.8, 5);
        let disjoint = discover_transformer(DiscoverDataset::DisjointOneProblem, 10, 0.8, 5);
        assert!(
            disjoint.accuracy > shared.accuracy,
            "dataset3 ({}) should beat dataset1 ({})",
            disjoint.accuracy,
            shared.accuracy
        );
    }

    #[test]
    fn dataset_names() {
        let names: Vec<&str> = DiscoverDataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["dataset1", "dataset2", "dataset3", "dataset4"]);
    }
}
