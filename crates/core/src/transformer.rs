//! The code transformers available to players: the identity, compiler
//! optimization levels, O-LLVM passes, and Zhang-style source strategies —
//! the union of the paper's Figure 3 normalizers and Figure 4 evaders.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use yali_minic::Program;
use yali_obf::IrObf;
use yali_opt::OptLevel;

/// A Zhang et al. source-obfuscation search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceStrategy {
    /// Random search over the 15 transformations.
    Rs,
    /// Markov-chain Monte Carlo.
    Mcmc,
    /// Greedy distance maximization (the deep-RL stand-in).
    Drlsg,
    /// Genetic algorithm (RQ7 only in the paper).
    Ga,
}

impl SourceStrategy {
    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            SourceStrategy::Rs => "rs",
            SourceStrategy::Mcmc => "mcmc",
            SourceStrategy::Drlsg => "drlsg",
            SourceStrategy::Ga => "ga",
        }
    }
}

/// A program-to-program transformation a player may apply before the
/// program is embedded (Definition 2.4's evader `E`, and the classifier's
/// normalizer in Game 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transformer {
    /// The identity (`clang -O0`: the front end's raw lowering).
    None,
    /// A clang-style optimization level.
    Opt(OptLevel),
    /// SSA construction only (`-mem2reg`, an RQ7 transformer).
    Mem2Reg,
    /// An O-LLVM IR obfuscation pass.
    Ir(IrObf),
    /// A source-level obfuscation strategy.
    Source(SourceStrategy),
}

impl Transformer {
    /// The paper's nine evaders (Figure 4), in display order: the baseline
    /// identity evader last, as in the figure.
    pub const EVADERS: [Transformer; 9] = [
        Transformer::Opt(OptLevel::O3),
        Transformer::Ir(IrObf::Ollvm),
        Transformer::Ir(IrObf::Bcf),
        Transformer::Ir(IrObf::Fla),
        Transformer::Ir(IrObf::Sub),
        Transformer::Source(SourceStrategy::Rs),
        Transformer::Source(SourceStrategy::Mcmc),
        Transformer::Source(SourceStrategy::Drlsg),
        Transformer::None,
    ];

    /// The ten transformers of the RQ7 "detect the obfuscator" experiment.
    pub const RQ7_TRANSFORMERS: [Transformer; 10] = [
        Transformer::None,
        Transformer::Mem2Reg,
        Transformer::Opt(OptLevel::O3),
        Transformer::Ir(IrObf::Bcf),
        Transformer::Ir(IrObf::Fla),
        Transformer::Ir(IrObf::Sub),
        Transformer::Source(SourceStrategy::Drlsg),
        Transformer::Source(SourceStrategy::Mcmc),
        Transformer::Source(SourceStrategy::Rs),
        Transformer::Source(SourceStrategy::Ga),
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Transformer::None => "none",
            Transformer::Opt(OptLevel::O0) => "O0",
            Transformer::Opt(OptLevel::O1) => "O1",
            Transformer::Opt(OptLevel::O2) => "O2",
            Transformer::Opt(OptLevel::O3) => "O3",
            Transformer::Mem2Reg => "mem2reg",
            Transformer::Ir(p) => p.name(),
            Transformer::Source(s) => s.name(),
        }
    }

    /// Applies the transformation to a source program and lowers it to IR.
    ///
    /// The `seed` drives every stochastic choice, so a (transformer,
    /// program, seed) triple is fully reproducible.
    pub fn apply(self, program: &Program, seed: u64) -> yali_ir::Module {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD_1234);
        match self {
            Transformer::None => yali_minic::lower(program),
            Transformer::Opt(level) => {
                let mut m = yali_minic::lower(program);
                yali_opt::optimize(&mut m, level);
                m
            }
            Transformer::Mem2Reg => {
                let mut m = yali_minic::lower(program);
                yali_opt::mem2reg_only(&mut m);
                m
            }
            Transformer::Ir(pass) => {
                let mut m = yali_minic::lower(program);
                pass.apply(&mut m, &mut rng);
                m
            }
            Transformer::Source(strategy) => {
                let transformed = match strategy {
                    SourceStrategy::Rs => yali_obf::rs(program, seed),
                    SourceStrategy::Mcmc => yali_obf::mcmc(program, seed, 6),
                    SourceStrategy::Drlsg => yali_obf::drlsg(program, seed, 3),
                    SourceStrategy::Ga => yali_obf::ga(program, seed, 4, 2),
                };
                yali_minic::lower(&transformed)
            }
        }
    }
}

impl std::fmt::Display for Transformer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yali_ir::interp::{run, ExecConfig, Val};

    fn sample() -> Program {
        yali_minic::parse(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) { if (i % 2 == 0) { s += i; } } return s; } void main() { print_int(f(read_int())); }",
        )
        .unwrap()
    }

    #[test]
    fn every_evader_preserves_semantics() {
        let p = sample();
        let base = yali_minic::lower(&p);
        let reference = run(&base, "main", &[], &[Val::Int(17)], &ExecConfig::default()).unwrap();
        for t in Transformer::EVADERS {
            let m = t.apply(&p, 42);
            yali_ir::verify_module(&m).unwrap_or_else(|e| panic!("{t}: {e}"));
            let out = run(&m, "main", &[], &[Val::Int(17)], &ExecConfig::default())
                .unwrap_or_else(|e| panic!("{t}: {e}"));
            assert_eq!(out.output, reference.output, "{t} diverges");
        }
    }

    #[test]
    fn rq7_transformers_all_run() {
        let p = sample();
        for t in Transformer::RQ7_TRANSFORMERS {
            let m = t.apply(&p, 7);
            yali_ir::verify_module(&m).unwrap_or_else(|e| panic!("{t}: {e}"));
        }
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::HashSet<&str> = Transformer::RQ7_TRANSFORMERS
            .iter()
            .map(|t| t.name())
            .collect();
        assert_eq!(names.len(), 10);
        assert_eq!(Transformer::Opt(OptLevel::O3).name(), "O3");
        assert_eq!(Transformer::Ir(IrObf::Fla).name(), "fla");
    }

    #[test]
    fn transformers_are_deterministic_per_seed() {
        let p = sample();
        let a = Transformer::Ir(IrObf::Ollvm).apply(&p, 5);
        let b = Transformer::Ir(IrObf::Ollvm).apply(&p, 5);
        assert_eq!(yali_ir::print_module(&a), yali_ir::print_module(&b));
    }
}
