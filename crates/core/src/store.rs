//! The persistent, content-addressed artifact store (`YALI_STORE=dir`).
//!
//! The engine's in-memory caches ([`crate::engine::EmbedCache`],
//! [`crate::engine::TransformCache`], [`crate::engine::ModelCache`]) die
//! with the process, so the warm-store speedups evaporate between runs
//! and cannot be shared by the workers of a sharded sweep. This module
//! promotes them to a read-through hierarchy over an on-disk store:
//! memory hit → disk hit → compute-and-publish.
//!
//! # On-disk format
//!
//! A store directory holds `segments/*.seg` — append-only segment files,
//! one per writing process — plus a `tmp/` staging area. There is no
//! on-disk index: [`ArtifactStore::open`] rebuilds the key → (segment,
//! offset) map by scanning every segment, validating each record as it
//! goes.
//!
//! Each segment starts with a 16-byte header (`YALS`, format version,
//! FNV-64 checksum) and continues with framed records:
//!
//! ```text
//! "YALR" | ns (1) | key (8 LE) | len (4 LE) | header FNV-64 | payload | payload FNV-64
//! ```
//!
//! The header checksum covers the frame up to and including `len`, so a
//! reader can trust `len` (and skip to the next record) even when the
//! payload itself is damaged; the payload checksum catches the damage.
//! A record that fails either check is rejected with an offset-bearing
//! [`ScanError`] and the scanner resyncs on the next `YALR` magic, so one
//! corrupt record never takes down the intact records around it. A
//! truncated tail — the signature of a writer killed mid-append — drops
//! exactly the torn record.
//!
//! # Durability
//!
//! Segment files are *created* via temp-file + atomic rename: the header
//! is written and fsync'd under `tmp/`, the file is renamed into
//! `segments/`, and the directory is fsync'd — no reader ever sees a
//! half-created segment. Appends are flushed per record (a concurrent
//! reader sees a record as soon as [`ArtifactStore::put`] returns) and
//! fsync'd on [`ArtifactStore::sync`]; a crash between flush and fsync
//! can lose the tail records of the crashing process but — because
//! records are self-validating and append-only — never corrupts anyone
//! else's.
//!
//! Keys are 64-bit content digests (the same `Module::content_hash` /
//! `ModelCache` composite-key discipline the in-memory caches use), one
//! [`Namespace`] per cache. Payloads are prefixed with the
//! [`yali_ml::serialize::CODEC_VERSION`] byte; a payload written by an
//! incompatible binary is treated as a miss, never a panic.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use yali_embed::{Embedding, EmbeddingKind, ProgramGraph};
use yali_obs::{EnvVar, WarnOnce};
use yali_ir::Fnv64;
use yali_ml::serialize::{ByteReader, ByteWriter, CODEC_VERSION};

/// Which cache a record belongs to. The tag byte is part of the on-disk
/// frame, so the values are stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Namespace {
    /// [`crate::engine::EmbedCache`] payloads (encoded [`Embedding`]s).
    Embed,
    /// [`crate::engine::TransformCache`] payloads (printed IR modules).
    Transform,
    /// [`crate::engine::ModelCache`] payloads (serialized model blobs).
    Model,
}

impl Namespace {
    /// All namespaces, in tag order.
    pub const ALL: [Namespace; 3] = [Namespace::Embed, Namespace::Transform, Namespace::Model];

    fn tag(self) -> u8 {
        match self {
            Namespace::Embed => 1,
            Namespace::Transform => 2,
            Namespace::Model => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<Namespace> {
        match tag {
            1 => Some(Namespace::Embed),
            2 => Some(Namespace::Transform),
            3 => Some(Namespace::Model),
            _ => None,
        }
    }

    /// Display name (`embed`, `transform`, `model`).
    pub fn name(self) -> &'static str {
        match self {
            Namespace::Embed => "embed",
            Namespace::Transform => "transform",
            Namespace::Model => "model",
        }
    }
}

const SEG_MAGIC: &[u8; 4] = b"YALS";
const REC_MAGIC: &[u8; 4] = b"YALR";
/// On-disk format version of the segment framing itself (independent of
/// the payload codec version).
pub const STORE_FORMAT_VERSION: u32 = 1;
const SEG_HEADER_LEN: usize = 16; // magic(4) + version(4) + fnv(8)
const REC_HEADER_LEN: usize = 25; // magic(4) + ns(1) + key(8) + len(4) + fnv(8)

fn fnv_of(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    for &b in bytes {
        h.write_u64(b as u64);
    }
    h.finish()
}

/// One damaged region found while scanning a segment: where it was and
/// why the record there was rejected. `Display` always names the byte
/// offset, so a corrupt store is diagnosable from the warning alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError {
    /// Byte offset of the rejected frame within its segment file.
    pub offset: usize,
    /// What failed there.
    pub reason: String,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.reason)
    }
}

/// One record recovered by [`scan_records`]: its key and where its
/// payload lives in the scanned byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScannedRecord {
    /// The record's namespace.
    pub ns: Namespace,
    /// The record's 64-bit content key.
    pub key: u64,
    /// Payload start offset within the scanned bytes.
    pub payload_start: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// Encodes one record frame (exposed so the codec proptests can build
/// and damage segments without touching the filesystem).
pub fn encode_record(ns: Namespace, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(REC_MAGIC);
    out.push(ns.tag());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let hcrc = fnv_of(&out);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv_of(payload).to_le_bytes());
    out
}

/// Encodes the 16-byte segment header.
pub fn encode_segment_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(SEG_HEADER_LEN);
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    let crc = fnv_of(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn read_u64_le(bytes: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(b)
}

fn find_magic(data: &[u8], from: usize) -> Option<usize> {
    (from..data.len().saturating_sub(REC_MAGIC.len() - 1))
        .find(|&i| &data[i..i + REC_MAGIC.len()] == REC_MAGIC.as_slice())
}

/// Scans one segment's bytes (header included) into its intact records
/// plus the errors for every damaged region. A damaged record is skipped
/// — via its length field when the frame header validates, by resyncing
/// on the next record magic otherwise — so corruption is contained to the
/// bytes it actually hit; a truncated tail loses only the torn record.
pub fn scan_records(data: &[u8]) -> (Vec<ScannedRecord>, Vec<ScanError>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    if data.len() < SEG_HEADER_LEN
        || &data[..4] != SEG_MAGIC
        || read_u64_le(&data[8..16]) != fnv_of(&data[..8])
    {
        errors.push(ScanError {
            offset: 0,
            reason: "segment header missing or damaged".into(),
        });
        // Records may still be recoverable past the header: resync.
        if let Some(next) = find_magic(data, 0) {
            let (mut rs, mut es) = scan_from(data, next);
            records.append(&mut rs);
            errors.append(&mut es);
        }
        return (records, errors);
    }
    let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if version != STORE_FORMAT_VERSION {
        errors.push(ScanError {
            offset: 4,
            reason: format!(
                "segment format version {version} (this binary writes {STORE_FORMAT_VERSION})"
            ),
        });
        return (records, errors);
    }
    let (rs, es) = scan_from(data, SEG_HEADER_LEN);
    (rs, es)
}

fn scan_from(data: &[u8], start: usize) -> (Vec<ScannedRecord>, Vec<ScanError>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    let mut pos = start;
    while pos < data.len() {
        if data.len() - pos < REC_HEADER_LEN {
            errors.push(ScanError {
                offset: pos,
                reason: format!(
                    "truncated frame header ({} bytes left, {} needed)",
                    data.len() - pos,
                    REC_HEADER_LEN
                ),
            });
            break;
        }
        let frame = &data[pos..];
        let header_ok = &frame[..4] == REC_MAGIC
            && read_u64_le(&frame[17..25]) == fnv_of(&frame[..17]);
        if !header_ok {
            errors.push(ScanError {
                offset: pos,
                reason: "record header damaged (bad magic or checksum)".into(),
            });
            match find_magic(data, pos + 1) {
                Some(next) => {
                    pos = next;
                    continue;
                }
                None => break,
            }
        }
        let ns_tag = frame[4];
        let key = read_u64_le(&frame[5..13]);
        let len = u32::from_le_bytes([frame[13], frame[14], frame[15], frame[16]]) as usize;
        let payload_start = pos + REC_HEADER_LEN;
        let end = payload_start + len + 8;
        if end > data.len() {
            errors.push(ScanError {
                offset: pos,
                reason: format!(
                    "truncated record (payload of {len} bytes runs past the segment end)"
                ),
            });
            break;
        }
        let payload = &data[payload_start..payload_start + len];
        let stored_crc = read_u64_le(&data[payload_start + len..end]);
        if stored_crc != fnv_of(payload) {
            errors.push(ScanError {
                offset: pos,
                reason: format!("payload checksum mismatch for key {key:#018x}"),
            });
            pos = end; // len was validated by the header checksum
            continue;
        }
        match Namespace::from_tag(ns_tag) {
            Some(ns) => records.push(ScannedRecord {
                ns,
                key,
                payload_start,
                payload_len: len,
            }),
            None => errors.push(ScanError {
                offset: pos,
                reason: format!("unknown namespace tag {ns_tag}"),
            }),
        }
        pos = end;
    }
    (records, errors)
}

/// Where one committed record lives.
#[derive(Debug, Clone, Copy)]
struct Loc {
    file: u32,
    offset: u64,
    len: u32,
}

/// Counters for [`StoreStats`], kept independent of `yali-obs` so the
/// report is available even with observability off.
#[derive(Default)]
struct StoreCounters {
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    published: AtomicU64,
    capped: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// Snapshot of a store's activity since it was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups answered from disk.
    pub disk_hits: u64,
    /// Lookups not on disk (the caller computes and publishes).
    pub disk_misses: u64,
    /// Records this process appended.
    pub published: u64,
    /// Publishes dropped by the `YALI_STORE_MAX_BYTES` cap.
    pub capped: u64,
    /// Payload bytes read from disk.
    pub bytes_read: u64,
    /// Frame bytes appended to disk.
    pub bytes_written: u64,
    /// Committed records indexed (all namespaces).
    pub entries: usize,
    /// Total bytes on disk across every segment.
    pub total_bytes: u64,
}

struct SegmentWriter {
    file: File,
    file_idx: u32,
    bytes_since_sync: u64,
}

/// The on-disk artifact store: an index over append-only segment files.
///
/// One `ArtifactStore` may be shared by every thread of a process, and
/// one store *directory* by any number of processes — each process
/// appends to its own segment, so writers never contend across process
/// boundaries and a reader sees a record as soon as its writer's `put`
/// returned.
pub struct ArtifactStore {
    dir: PathBuf,
    /// Segment paths; `Loc::file` indexes here.
    files: Mutex<Vec<PathBuf>>,
    index: Mutex<HashMap<(u8, u64), Loc>>,
    writer: Mutex<Option<SegmentWriter>>,
    counters: StoreCounters,
    total_bytes: AtomicU64,
    max_bytes: Option<u64>,
    scan_errors: Vec<(PathBuf, ScanError)>,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store at `dir`, scanning every
    /// committed segment into the in-memory index. Damaged records are
    /// skipped — collected in [`ArtifactStore::scan_errors`] and warned
    /// about — while every intact record stays readable.
    pub fn open(dir: &Path) -> std::io::Result<ArtifactStore> {
        let _span = yali_obs::span!("store.open");
        fs::create_dir_all(dir.join("segments"))?;
        fs::create_dir_all(dir.join("tmp"))?;
        let mut seg_paths: Vec<PathBuf> = fs::read_dir(dir.join("segments"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .collect();
        // Deterministic index regardless of directory enumeration order.
        seg_paths.sort();
        let mut index = HashMap::new();
        let mut files = Vec::new();
        let mut scan_errors = Vec::new();
        let mut total_bytes = 0u64;
        for path in seg_paths {
            let data = fs::read(&path)?;
            total_bytes += data.len() as u64;
            let (records, errors) = scan_records(&data);
            let file_idx = files.len() as u32;
            for r in records {
                // First writer wins, matching the in-memory caches: the
                // store is content-addressed, so duplicates are replays
                // of the same computation anyway.
                index.entry((r.ns.tag(), r.key)).or_insert(Loc {
                    file: file_idx,
                    offset: r.payload_start as u64,
                    len: r.payload_len as u32,
                });
            }
            for e in errors {
                yali_obs::warn(&format!(
                    "artifact store segment {}: {e} (record skipped)",
                    path.display()
                ));
                scan_errors.push((path.clone(), e));
            }
            files.push(path);
        }
        Ok(ArtifactStore {
            dir: dir.to_path_buf(),
            files: Mutex::new(files),
            index: Mutex::new(index),
            writer: Mutex::new(None),
            counters: StoreCounters::default(),
            total_bytes: AtomicU64::new(total_bytes),
            max_bytes: max_bytes_cap(),
            scan_errors,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Damaged regions found while opening, per segment file.
    pub fn scan_errors(&self) -> &[(PathBuf, ScanError)] {
        &self.scan_errors
    }

    /// Looks a payload up on disk. `None` counts a disk miss; the caller
    /// is expected to compute the artifact and [`ArtifactStore::put`] it.
    pub fn get(&self, ns: Namespace, key: u64) -> Option<Vec<u8>> {
        let _span = yali_obs::span!("store.read");
        let loc = match self.index.lock().unwrap().get(&(ns.tag(), key)) {
            Some(&loc) => loc,
            None => {
                self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                yali_obs::count!("store.disk.misses", 1);
                return None;
            }
        };
        let path = self.files.lock().unwrap()[loc.file as usize].clone();
        match read_payload(&path, loc) {
            Ok(payload) => {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                yali_obs::count!("store.disk.hits", 1);
                yali_obs::count!("store.read_bytes", payload.len() as u64);
                Some(payload)
            }
            Err(e) => {
                // A record that validated at scan time but fails now means
                // the file changed underneath us; degrade to a miss.
                yali_obs::warn(&format!(
                    "artifact store read of {} failed: {e}; treating as a miss",
                    path.display()
                ));
                self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                yali_obs::count!("store.disk.misses", 1);
                None
            }
        }
    }

    /// Publishes a payload (first writer wins; replays of a key already
    /// on disk are dropped). Returns whether the record was appended.
    pub fn put(&self, ns: Namespace, key: u64, payload: &[u8]) -> bool {
        let _span = yali_obs::span!("store.write");
        {
            let index = self.index.lock().unwrap();
            if index.contains_key(&(ns.tag(), key)) {
                return false;
            }
        }
        let frame = encode_record(ns, key, payload);
        if let Some(cap) = self.max_bytes {
            let projected = self.total_bytes.load(Ordering::Relaxed) + frame.len() as u64;
            if projected > cap {
                self.counters.capped.fetch_add(1, Ordering::Relaxed);
                yali_obs::count!("store.publish.capped", 1);
                static ONCE: WarnOnce = WarnOnce::new();
                ONCE.warn(&format!(
                    "artifact store at {} reached YALI_STORE_MAX_BYTES ({cap}); \
                     further publishes are dropped (reads keep working)",
                    self.dir.display()
                ));
                return false;
            }
        }
        let mut writer = self.writer.lock().unwrap();
        if writer.is_none() {
            match self.open_segment() {
                Ok(w) => *writer = Some(w),
                Err(e) => {
                    static ONCE: WarnOnce = WarnOnce::new();
                    ONCE.warn(&format!(
                        "artifact store at {} cannot open a segment for writing: {e}; \
                         this process will not publish",
                        self.dir.display()
                    ));
                    return false;
                }
            }
        }
        let w = writer.as_mut().expect("writer just ensured");
        let offset = match w.file.stream_position().and_then(|pos| {
            w.file.write_all(&frame)?;
            w.file.flush()?;
            Ok(pos)
        }) {
            Ok(pos) => pos,
            Err(e) => {
                yali_obs::warn(&format!("artifact store append failed: {e}"));
                return false;
            }
        };
        w.bytes_since_sync += frame.len() as u64;
        // Bound the window a crash can lose without paying an fsync per
        // record: sync every 4 MiB, plus on `sync()`/drop.
        if w.bytes_since_sync >= 4 << 20 {
            let _ = w.file.sync_data();
            w.bytes_since_sync = 0;
        }
        let loc = Loc {
            file: w.file_idx,
            offset: offset + REC_HEADER_LEN as u64,
            len: payload.len() as u32,
        };
        self.index.lock().unwrap().insert((ns.tag(), key), loc);
        self.total_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.counters.published.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        yali_obs::count!("store.published", 1);
        yali_obs::count!("store.written_bytes", frame.len() as u64);
        true
    }

    /// Creates this process's segment: header staged under `tmp/`,
    /// fsync'd, atomically renamed into `segments/`, directory fsync'd.
    /// Readers therefore never observe a segment without a valid header.
    fn open_segment(&self) -> std::io::Result<SegmentWriter> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let name = format!(
            "seg-{:08}-{:016x}-{}",
            std::process::id(),
            yali_obs::epoch_ns(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let tmp_path = self.dir.join("tmp").join(format!("{name}.tmp"));
        let final_path = self.dir.join("segments").join(format!("{name}.seg"));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .read(true)
            .open(&tmp_path)?;
        file.write_all(&encode_segment_header())?;
        file.sync_data()?;
        fs::rename(&tmp_path, &final_path)?;
        // fsync the directory so the rename itself is durable.
        if let Ok(d) = File::open(self.dir.join("segments")) {
            let _ = d.sync_all();
        }
        self.total_bytes
            .fetch_add(SEG_HEADER_LEN as u64, Ordering::Relaxed);
        let mut files = self.files.lock().unwrap();
        files.push(final_path);
        Ok(SegmentWriter {
            file,
            file_idx: (files.len() - 1) as u32,
            bytes_since_sync: 0,
        })
    }

    /// Fsyncs this process's segment. Workers call this before exiting so
    /// their records survive power loss, not just process death.
    pub fn sync(&self) {
        if let Some(w) = self.writer.lock().unwrap().as_mut() {
            let _ = w.file.sync_data();
            w.bytes_since_sync = 0;
        }
    }

    /// Activity snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.counters.disk_misses.load(Ordering::Relaxed),
            published: self.counters.published.load(Ordering::Relaxed),
            capped: self.counters.capped.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
            entries: self.index.lock().unwrap().len(),
            total_bytes: self.total_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ArtifactStore {
    fn drop(&mut self) {
        self.sync();
    }
}

fn read_payload(path: &Path, loc: Loc) -> std::io::Result<Vec<u8>> {
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(loc.offset))?;
    let mut payload = vec![0u8; loc.len as usize + 8];
    f.read_exact(&mut payload)?;
    let stored_crc = read_u64_le(&payload[loc.len as usize..]);
    payload.truncate(loc.len as usize);
    if stored_crc != fnv_of(&payload) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("payload checksum mismatch at offset {}", loc.offset),
        ));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Environment plumbing: YALI_STORE / YALI_STORE_MAX_BYTES.
// ---------------------------------------------------------------------------

/// Parses a `YALI_STORE` value into the directory to open the store at.
/// `0`/`off`/`false` disable the store explicitly (mirroring
/// `YALI_CACHE`); an empty or blank value is [`EnvVar::Invalid`] — the
/// caller warns once and stays in-memory.
pub fn parse_store(v: Option<&str>) -> EnvVar<PathBuf> {
    match v {
        None => EnvVar::Unset,
        Some(raw) => {
            let trimmed = raw.trim();
            match trimmed {
                "" => EnvVar::Invalid,
                "0" | "off" | "false" => EnvVar::Unset,
                dir => EnvVar::Value(PathBuf::from(dir)),
            }
        }
    }
}

/// Parses a `YALI_STORE_MAX_BYTES` value: a positive integer byte count,
/// with optional `k`/`m`/`g` (binary) suffix. Zero, blanks, and
/// non-numbers are [`EnvVar::Invalid`] — the caller warns once and runs
/// uncapped rather than panicking.
pub fn parse_max_bytes(v: Option<&str>) -> EnvVar<u64> {
    let Some(raw) = v else {
        return EnvVar::Unset;
    };
    let t = raw.trim();
    let (digits, mult) = match t.char_indices().last() {
        Some((i, 'k')) | Some((i, 'K')) => (&t[..i], 1u64 << 10),
        Some((i, 'm')) | Some((i, 'M')) => (&t[..i], 1u64 << 20),
        Some((i, 'g')) | Some((i, 'G')) => (&t[..i], 1u64 << 30),
        _ => (t, 1),
    };
    match digits.trim().parse::<u64>() {
        Ok(n) if n >= 1 => match n.checked_mul(mult) {
            Some(b) => EnvVar::Value(b),
            None => EnvVar::Invalid,
        },
        _ => EnvVar::Invalid,
    }
}

fn max_bytes_cap() -> Option<u64> {
    static ONCE: WarnOnce = WarnOnce::new();
    yali_obs::env_once(
        "YALI_STORE_MAX_BYTES",
        &ONCE,
        "is not a positive byte count; running with no store size cap",
        parse_max_bytes,
    )
}

/// The process-wide store slot: `None` until first use, then either the
/// opened store or a recorded decision to stay in-memory.
static STORE_SLOT: Mutex<Option<Arc<ArtifactStore>>> = Mutex::new(None);
static ENV_CONSULTED: OnceLock<()> = OnceLock::new();

/// The active artifact store, if any. The first call consults
/// `YALI_STORE`: a usable directory attaches the store for the whole
/// process; a garbage value or an unopenable directory warns once and
/// leaves the engine in-memory-only — experiments never fail because the
/// store could not come up.
pub fn active() -> Option<Arc<ArtifactStore>> {
    ENV_CONSULTED.get_or_init(|| {
        static ONCE: WarnOnce = WarnOnce::new();
        let dir = yali_obs::env_once(
            "YALI_STORE",
            &ONCE,
            "is not a usable directory path; running with in-memory caches only",
            parse_store,
        );
        if let Some(dir) = dir {
            match ArtifactStore::open(&dir) {
                Ok(store) => {
                    *STORE_SLOT.lock().unwrap() = Some(Arc::new(store));
                }
                Err(e) => {
                    yali_obs::warn(&format!(
                        "YALI_STORE={} cannot be opened ({e}); \
                         running with in-memory caches only",
                        dir.display()
                    ));
                }
            }
        }
    });
    STORE_SLOT.lock().unwrap().clone()
}

/// Programmatic override of the store directory (benches and tests; the
/// analogue of `yali_obs::set_enabled`). `None` detaches the store.
/// Returns any open error — the slot is left in-memory-only on failure.
pub fn set_store_dir(dir: Option<&Path>) -> std::io::Result<()> {
    let _ = ENV_CONSULTED.set(()); // the override wins over the env var
    let mut slot = STORE_SLOT.lock().unwrap();
    *slot = None;
    if let Some(dir) = dir {
        *slot = Some(Arc::new(ArtifactStore::open(dir)?));
    }
    Ok(())
}

/// Stats of the active store, if one is attached.
pub fn active_stats() -> Option<StoreStats> {
    active().map(|s| s.stats())
}

/// Fsyncs the active store's segment (worker exit hook).
pub fn sync_active() {
    if let Some(s) = active() {
        s.sync();
    }
}

// ---------------------------------------------------------------------------
// Payload codecs: cache values ⇄ store bytes.
// ---------------------------------------------------------------------------
//
// Every payload leads with the `yali_ml::serialize` codec version byte;
// a mismatch (a store written by an incompatible binary) degrades to a
// miss rather than a panic, because disk blobs — unlike the in-process
// cache's — legitimately outlive the binary that wrote them.

fn edge_tag(k: yali_embed::EdgeKind) -> u8 {
    match k {
        yali_embed::EdgeKind::Control => 0,
        yali_embed::EdgeKind::Data => 1,
        yali_embed::EdgeKind::Call => 2,
        yali_embed::EdgeKind::Memory => 3,
    }
}

fn edge_from_tag(tag: u8) -> Option<yali_embed::EdgeKind> {
    match tag {
        0 => Some(yali_embed::EdgeKind::Control),
        1 => Some(yali_embed::EdgeKind::Data),
        2 => Some(yali_embed::EdgeKind::Call),
        3 => Some(yali_embed::EdgeKind::Memory),
        _ => None,
    }
}

/// Serializes an embedding for the store (`f64` bit patterns throughout,
/// so a disk round trip reproduces the computation byte-for-byte).
pub fn encode_embedding(e: &Embedding) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(CODEC_VERSION);
    match e {
        Embedding::Vector(v) => {
            w.put_u8(1);
            w.put_f64s(v);
        }
        Embedding::Graph(g) => {
            w.put_u8(2);
            w.put_usize(g.feats.len());
            for row in &g.feats {
                w.put_f64s(row);
            }
            w.put_usize(g.edges.len());
            for &(s, d, k) in &g.edges {
                w.put_usize(s);
                w.put_usize(d);
                w.put_u8(edge_tag(k));
            }
        }
    }
    w.into_bytes()
}

/// Deserializes [`encode_embedding`] bytes; `None` on a version or shape
/// mismatch (treated as a store miss).
pub fn decode_embedding(bytes: &[u8]) -> Option<Embedding> {
    if bytes.len() < 2 || bytes[0] != CODEC_VERSION {
        return None;
    }
    let mut r = ByteReader::new(&bytes[1..]);
    match r.get_u8() {
        1 => Some(Embedding::Vector(r.get_f64s())),
        2 => {
            let n = r.get_usize();
            let feats = (0..n).map(|_| r.get_f64s()).collect();
            let ne = r.get_usize();
            let mut edges = Vec::with_capacity(ne);
            for _ in 0..ne {
                let s = r.get_usize();
                let d = r.get_usize();
                let k = edge_from_tag(r.get_u8())?;
                edges.push((s, d, k));
            }
            Some(Embedding::Graph(ProgramGraph { feats, edges }))
        }
        _ => None,
    }
}

/// Serializes a transformed module for the store as printed IR text
/// (the printer/parser pair is a fixpoint, and `content_hash` — the only
/// thing embeddings can observe — survives the round trip).
pub fn encode_module(m: &yali_ir::Module) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(CODEC_VERSION);
    w.put_bytes(yali_ir::print_module(m).as_bytes());
    w.into_bytes()
}

/// Deserializes [`encode_module`] bytes; `None` on version mismatch or a
/// parse error (treated as a store miss).
pub fn decode_module(bytes: &[u8]) -> Option<yali_ir::Module> {
    if bytes.len() < 2 || bytes[0] != CODEC_VERSION {
        return None;
    }
    let mut r = ByteReader::new(&bytes[1..]);
    let text = String::from_utf8(r.get_bytes()).ok()?;
    yali_ir::parse_module(&text).ok()
}

/// Serializes a model blob for the store. Model blobs already carry the
/// codec version internally, but the prefix makes every store payload
/// uniformly versioned (and lets the reader reject foreign blobs without
/// tripping the deserializer's panics).
pub fn encode_model(blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(blob.len() + 1);
    out.push(CODEC_VERSION);
    out.extend_from_slice(blob);
    out
}

/// Deserializes [`encode_model`] bytes; `None` on version mismatch.
pub fn decode_model(bytes: &[u8]) -> Option<Vec<u8>> {
    match bytes.split_first() {
        Some((&v, rest)) if v == CODEC_VERSION => Some(rest.to_vec()),
        _ => None,
    }
}

/// Store key for an embedding record: the module's structural hash mixed
/// with the embedding kind.
pub fn embed_key(content_hash: u64, kind: EmbeddingKind) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("store-embed-v1");
    h.write_u64(content_hash);
    h.write_str(kind.name());
    h.finish()
}

/// Store key for a transform record: source hash × transformer × seed
/// (the complete input of `Transformer::apply`).
pub fn transform_key(source_hash: u64, transformer_name: &str, seed: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("store-transform-v1");
    h.write_u64(source_hash);
    h.write_str(transformer_name);
    h.write_u64(seed);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "yali_store_test_{tag}_{}_{}",
            std::process::id(),
            yali_obs::epoch_ns()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_round_trips_records_within_and_across_opens() {
        let dir = tmpdir("roundtrip");
        {
            let store = ArtifactStore::open(&dir).unwrap();
            assert!(store.put(Namespace::Embed, 7, b"alpha"));
            assert!(store.put(Namespace::Model, 7, b"beta")); // same key, other ns
            assert!(!store.put(Namespace::Embed, 7, b"alpha"), "dedup");
            assert_eq!(store.get(Namespace::Embed, 7).unwrap(), b"alpha");
            assert_eq!(store.get(Namespace::Model, 7).unwrap(), b"beta");
            assert!(store.get(Namespace::Transform, 7).is_none());
            let s = store.stats();
            assert_eq!((s.published, s.disk_hits, s.disk_misses), (2, 2, 1));
            assert_eq!(s.entries, 2);
        }
        // Fresh open (a "new process"): records committed by the old one.
        let store = ArtifactStore::open(&dir).unwrap();
        assert!(store.scan_errors().is_empty());
        assert_eq!(store.get(Namespace::Embed, 7).unwrap(), b"alpha");
        assert_eq!(store.get(Namespace::Model, 7).unwrap(), b"beta");
        assert_eq!(store.stats().entries, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_loses_only_the_torn_record() {
        let dir = tmpdir("torn");
        {
            let store = ArtifactStore::open(&dir).unwrap();
            for k in 0..5u64 {
                store.put(Namespace::Model, k, format!("payload-{k}").as_bytes());
            }
        }
        // Simulate a writer killed mid-append: chop bytes off the tail.
        let seg = fs::read_dir(dir.join("segments"))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let data = fs::read(&seg).unwrap();
        fs::write(&seg, &data[..data.len() - 7]).unwrap();
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.scan_errors().len(), 1);
        let msg = store.scan_errors()[0].1.to_string();
        assert!(msg.contains("offset"), "error must carry the offset: {msg}");
        for k in 0..4u64 {
            assert_eq!(
                store.get(Namespace::Model, k).unwrap(),
                format!("payload-{k}").as_bytes(),
                "intact record {k} must survive the torn tail"
            );
        }
        assert!(store.get(Namespace::Model, 4).is_none(), "torn record dropped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn max_bytes_cap_drops_publishes_but_keeps_reads() {
        let dir = tmpdir("cap");
        let store = ArtifactStore::open(&dir).unwrap();
        // Rebuild with a tiny cap via the parsed-cap field directly.
        let mut store = store;
        store.max_bytes = Some(120);
        assert!(store.put(Namespace::Model, 1, b"x"));
        assert!(!store.put(Namespace::Model, 2, &[0u8; 256]), "over cap");
        assert_eq!(store.stats().capped, 1);
        assert_eq!(store.get(Namespace::Model, 1).unwrap(), b"x");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_store_discipline() {
        assert_eq!(parse_store(None), EnvVar::<PathBuf>::Unset);
        assert_eq!(parse_store(Some("0")), EnvVar::<PathBuf>::Unset);
        assert_eq!(parse_store(Some("off")), EnvVar::<PathBuf>::Unset);
        assert_eq!(parse_store(Some("")), EnvVar::Invalid);
        assert_eq!(parse_store(Some("   ")), EnvVar::Invalid);
        assert_eq!(
            parse_store(Some(" /tmp/yali-store ")),
            EnvVar::Value(PathBuf::from("/tmp/yali-store"))
        );
    }

    #[test]
    fn parse_max_bytes_discipline() {
        assert_eq!(parse_max_bytes(None), EnvVar::<u64>::Unset);
        assert_eq!(parse_max_bytes(Some("1024")), EnvVar::Value(1024));
        assert_eq!(parse_max_bytes(Some(" 8k ")), EnvVar::Value(8192));
        assert_eq!(parse_max_bytes(Some("2M")), EnvVar::Value(2 << 20));
        assert_eq!(parse_max_bytes(Some("1g")), EnvVar::Value(1 << 30));
        assert_eq!(parse_max_bytes(Some("0")), EnvVar::Invalid);
        assert_eq!(parse_max_bytes(Some("")), EnvVar::Invalid);
        assert_eq!(parse_max_bytes(Some("abc")), EnvVar::Invalid);
        assert_eq!(parse_max_bytes(Some("-5")), EnvVar::Invalid);
        assert_eq!(parse_max_bytes(Some("12q")), EnvVar::Invalid);
    }

    #[test]
    fn embedding_codec_round_trips_both_shapes() {
        let v = Embedding::Vector(vec![1.5, -0.0, f64::MIN_POSITIVE]);
        let decoded = decode_embedding(&encode_embedding(&v)).unwrap();
        assert_eq!(decoded, v);
        let g = Embedding::Graph(ProgramGraph {
            feats: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            edges: vec![
                (0, 1, yali_embed::EdgeKind::Control),
                (1, 0, yali_embed::EdgeKind::Memory),
            ],
        });
        assert_eq!(decode_embedding(&encode_embedding(&g)).unwrap(), g);
        // Foreign version byte: a miss, not a panic.
        let mut bad = encode_embedding(&v);
        bad[0] = bad[0].wrapping_add(1);
        assert!(decode_embedding(&bad).is_none());
    }

    #[test]
    fn module_codec_preserves_the_content_hash() {
        let m = yali_minic::compile("int f(int a) { return a * a + 3; }").unwrap();
        let decoded = decode_module(&encode_module(&m)).unwrap();
        assert_eq!(decoded.content_hash(), m.content_hash());
        assert_eq!(yali_ir::print_module(&decoded), yali_ir::print_module(&m));
    }

    #[test]
    fn model_codec_round_trips_and_rejects_foreign_versions() {
        let blob = vec![9u8, 8, 7];
        assert_eq!(decode_model(&encode_model(&blob)).unwrap(), blob);
        let mut bad = encode_model(&blob);
        bad[0] = bad[0].wrapping_add(1);
        assert!(decode_model(&bad).is_none());
        assert!(decode_model(&[]).is_none());
    }

    #[test]
    fn store_keys_separate_kinds_and_seeds() {
        assert_ne!(
            embed_key(1, EmbeddingKind::Histogram),
            embed_key(1, EmbeddingKind::Milepost)
        );
        assert_ne!(embed_key(1, EmbeddingKind::Cfg), embed_key(2, EmbeddingKind::Cfg));
        assert_ne!(transform_key(1, "fla", 0), transform_key(1, "fla", 1));
        assert_ne!(transform_key(1, "fla", 0), transform_key(1, "bcf", 0));
    }
}
