//! # yali-core
//!
//! The game-based framework of "A Game-Based Framework to Compare Program
//! Classifiers and Evaders" (CGO 2023): four adversarial games matching
//! program classifiers against evaders.
//!
//! - [`game`] — Games 0–3 (Definition 2.4, Figure 1): symmetric and
//!   asymmetric matches between a classifier and an evader;
//! - [`arena`] — the classification arena: corpora, classifier design
//!   points (embedding × model × normalizer), training and challenge
//!   plumbing;
//! - [`transformer`] — the players' transformations: optimization levels,
//!   O-LLVM passes, and Zhang-style source strategies;
//! - [`discover`] — RQ7: identifying the transformer itself;
//! - [`malware_exp`] — RQ8: MIRAI-family identification;
//! - [`av`] — the signature-scanner stand-in for VirusTotal;
//! - [`scale`] — workload scaling (`YALI_SCALE=small|medium|paper`);
//! - [`engine`] — the parallel experiment engine: a deterministic
//!   scoped-thread map (`YALI_THREADS`) and a content-addressed embedding
//!   cache;
//! - [`report`] — aggregates the `yali-obs` registry and the engine's
//!   cache counters into a [`report::RunReport`] (`RUNSTATS.json`);
//! - [`store`] — the persistent content-addressed artifact store
//!   (`YALI_STORE=dir`): the caches read through it, so embeddings,
//!   transformed modules, and trained models outlive the process and can
//!   be shared by the workers of a sharded `yali-grid` sweep.
//!
//! # Quickstart
//!
//! ```
//! use yali_core::{Corpus, GameConfig, ClassifierSpec, play, Game, Transformer};
//! use yali_ml::ModelKind;
//!
//! // A small POJ-style corpus: 4 classes, 8 solutions each.
//! let corpus = Corpus::poj(4, 8, 42);
//! // Game 0: no evader.
//! let cfg = GameConfig::game0(ClassifierSpec::histogram(ModelKind::Rf), 42);
//! let r0 = play(&corpus, &cfg);
//! // Game 1: the evader obfuscates with O-LLVM.
//! let cfg1 = cfg.clone().with_game(Game::Game1, Transformer::Ir(yali_obf::IrObf::Ollvm));
//! let r1 = play(&corpus, &cfg1);
//! assert!(r0.accuracy >= r1.accuracy);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod av;
pub mod discover;
pub mod engine;
pub mod game;
pub mod malware_exp;
pub mod report;
pub mod scale;
pub mod store;
pub mod transformer;

pub use arena::{
    fit_vector_cached, transform_all, ClassifierSpec, Corpus, ModelChoice, Sample,
    TrainedClassifier,
};
pub use av::SignatureScanner;
pub use discover::{discover_transformer, DiscoverDataset, DiscoverResult};
pub use engine::{
    embed_cached, par_map, par_map_with, transform_cached, CacheStats, EmbedCache, TransformCache,
};
pub use game::{play, Game, GameConfig, GameResult};
pub use malware_exp::{malware_round, MalwareCorpus, MalwarePoint, MALWARE_TRANSFORMERS};
pub use report::{FleetReport, RunReport, ShardReport, RUNSTATS_SCHEMA_VERSION};
pub use scale::Scale;
pub use store::{ArtifactStore, Namespace, StoreStats};
pub use transformer::{SourceStrategy, Transformer};
