//! The parallel experiment engine: a deterministic scoped-thread map and a
//! content-addressed embedding cache.
//!
//! Experiments in this crate are embarrassingly parallel at two grains —
//! per-sample (transform, embed, classify) and per-round (seeds, sweep
//! points) — and they recompute the same embeddings over and over: every
//! game embeds each module once to train and once per challenge, and the
//! benchmark sweeps replay the same modules across many design points.
//!
//! Three primitives exploit that without touching any experiment's
//! results:
//!
//! - [`par_map`] (re-exported from [`yali_par`], where `yali-ml`'s
//!   data-parallel trainers share it) fans a slice out over
//!   `std::thread::scope` workers and returns outputs **in input order**.
//!   Each `(index, item)` pair is handed to the same closure it would meet
//!   serially, so any experiment whose per-item work is a pure function of
//!   `(index, item)` produces byte-identical results at every thread count
//!   (including 1). Worker count comes from the `YALI_THREADS` environment
//!   variable, or the machine's available parallelism when unset.
//! - [`EmbedCache`] memoizes [`EmbeddingKind::embed`] keyed by the 64-bit
//!   structural hash of the module ([`yali_ir::Module::content_hash`])
//!   plus the embedding kind. The hash ignores module names and arena
//!   numbering — exactly the things embeddings cannot observe — so a
//!   cache hit returns the same embedding the recomputation would.
//!   [`CacheStats`] exposes hit/miss/insert counters.
//! - [`TransformCache`] does the same for [`Transformer::apply`], keyed by
//!   a hash of the printed source program plus the transformer and seed —
//!   the complete input of that pure function. Sweeps that pit many
//!   models against the same transformed corpus stop re-obfuscating it
//!   per design point.
//! - [`ModelCache`] is the trained-model store: serialized classifier
//!   blobs keyed by a digest of the complete training input (embedding,
//!   model, training knobs, training-set content hashes, labels). Arena,
//!   game, discover, and malware sweeps that revisit a design point load
//!   the fitted model instead of retraining it; weights round-trip via
//!   `f64::to_bits`, so a loaded model classifies byte-identically to the
//!   one the retrain would produce.
//!
//! `YALI_CACHE=0` bypasses all three caches.
//!
//! With `YALI_STORE=dir` set, the *global* instances of all three caches
//! additionally read through the persistent [`crate::store`]: a memory
//! miss consults the disk index before computing, and a computed artifact
//! is published to disk as it enters memory. Warm artifacts therefore
//! survive the process and are shared by the workers of a `yali-grid`
//! sweep. Locally constructed caches ([`EmbedCache::new`] etc.) stay
//! memory-only — their counter semantics are part of the unit-test
//! contract — and a disk hit still counts as a memory *miss* in
//! [`CacheStats`]; the disk traffic is accounted separately in
//! [`crate::store::StoreStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::transformer::Transformer;
use yali_embed::{Embedding, EmbeddingKind};

pub use yali_par::{par_for_each_mut, par_map, par_map_with, worker_count};

/// Snapshot of [`EmbedCache`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the embedding.
    pub misses: u64,
    /// Entries actually stored (≤ misses: concurrent misses on one key
    /// store once).
    pub inserts: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when nothing was looked up). This is
    /// the number [`crate::report::RunReport`] publishes per cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Alias of [`CacheStats::hit_ratio`] (the original name).
    pub fn hit_rate(&self) -> f64 {
        self.hit_ratio()
    }
}

/// The hit/miss/insert counter trio shared by [`EmbedCache`],
/// [`TransformCache`], and [`ModelCache`] (formerly copy-pasted into each).
#[derive(Debug, Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl CacheCounters {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a first-writer insert (concurrent misses on one key store
    /// once, so inserts ≤ misses).
    fn insert(&self) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, entries: usize) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries,
        }
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
    }
}

const SHARDS: usize = 16;

/// A sharded, content-addressed embedding cache.
///
/// Keys are `(Module::content_hash(), EmbeddingKind)`. The structural hash
/// normalizes away module names and instruction-arena numbering, so any
/// two modules that print identically share one entry — in particular the
/// same transformed module reached through different experiment paths.
pub struct EmbedCache {
    shards: Vec<Mutex<HashMap<(u64, EmbeddingKind), Embedding>>>,
    counters: CacheCounters,
    /// Whether memory misses read through the persistent store. Only the
    /// global instance attaches; local instances keep the exact counter
    /// semantics the unit tests pin down.
    attached: bool,
}

impl Default for EmbedCache {
    fn default() -> Self {
        EmbedCache::new()
    }
}

impl EmbedCache {
    /// An empty, memory-only cache.
    pub fn new() -> EmbedCache {
        EmbedCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: CacheCounters::default(),
            attached: false,
        }
    }

    /// The process-wide cache used by the experiment drivers. Reads
    /// through the persistent store when `YALI_STORE` is active.
    pub fn global() -> &'static EmbedCache {
        static GLOBAL: OnceLock<EmbedCache> = OnceLock::new();
        GLOBAL.get_or_init(|| EmbedCache {
            attached: true,
            ..EmbedCache::new()
        })
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<(u64, EmbeddingKind), Embedding>> {
        // Spread the (already well-mixed) FNV hash across shards.
        &self.shards[(key as usize) % SHARDS]
    }

    /// Computes (or recalls) `kind`'s embedding of `m`.
    pub fn embed(&self, m: &yali_ir::Module, kind: EmbeddingKind) -> Embedding {
        let key = (m.content_hash(), kind);
        if let Some(e) = self.shard(key.0).lock().unwrap().get(&key) {
            self.counters.hit();
            return e.clone();
        }
        self.counters.miss();
        // Disk layer: a store hit skips the computation and warms memory.
        let store = if self.attached { crate::store::active() } else { None };
        if let Some(store) = &store {
            let skey = crate::store::embed_key(key.0, kind);
            if let Some(e) = store
                .get(crate::store::Namespace::Embed, skey)
                .and_then(|bytes| crate::store::decode_embedding(&bytes))
            {
                let mut shard = self.shard(key.0).lock().unwrap();
                if shard.insert(key, e.clone()).is_none() {
                    self.counters.insert();
                }
                return e;
            }
        }
        // Compute outside the lock: embeddings dominate the cost and other
        // keys in the shard must not wait on this one.
        let e = kind.embed(m);
        let mut shard = self.shard(key.0).lock().unwrap();
        if shard.insert(key, e.clone()).is_none() {
            self.counters.insert();
            drop(shard);
            if let Some(store) = &store {
                let skey = crate::store::embed_key(key.0, kind);
                store.put(
                    crate::store::Namespace::Embed,
                    skey,
                    &crate::store::encode_embedding(&e),
                );
            }
        }
        e
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.counters
            .snapshot(self.shards.iter().map(|s| s.lock().unwrap().len()).sum())
    }

    /// Empties the cache and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.counters.reset();
    }
}

/// Whether the global caches are in use. `YALI_CACHE=0` (or `off`)
/// bypasses them entirely — every transform and embedding is recomputed,
/// which is the pre-engine behavior (useful as a benchmark baseline and
/// when bisecting a suspected cache bug).
pub fn caching_enabled() -> bool {
    !matches!(
        std::env::var("YALI_CACHE").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    )
}

/// Embeds through the global [`EmbedCache`] (or directly, under
/// `YALI_CACHE=0`). Under observability every embedding is a `embed.one`
/// span; with a trace sink attached the open event carries the module's
/// content hash, so a timeline can tell recomputes from replays.
pub fn embed_cached(m: &yali_ir::Module, kind: EmbeddingKind) -> Embedding {
    let _span = if yali_obs::trace_on() {
        yali_obs::span_attr!("embed.one", "module", m.content_hash())
    } else {
        yali_obs::span!("embed.one")
    };
    if !caching_enabled() {
        return kind.embed(m);
    }
    EmbedCache::global().embed(m, kind)
}

/// One transform-cache shard: `(source hash, transformer, seed)` → module.
type TransformShard = Mutex<HashMap<(u64, Transformer, u64), yali_ir::Module>>;

/// A content-addressed cache for [`Transformer::apply`].
///
/// `apply` is a pure function of `(program, transformer, seed)`; the key
/// hashes the printed source (stable across clones) plus the other two, so
/// a hit returns the module the recomputation would produce. This is what
/// keeps sweeps from re-obfuscating one corpus once per design point.
pub struct TransformCache {
    shards: Vec<TransformShard>,
    counters: CacheCounters,
    /// See [`EmbedCache`]: only the global instance reads through disk.
    attached: bool,
}

impl Default for TransformCache {
    fn default() -> Self {
        TransformCache::new()
    }
}

impl TransformCache {
    /// An empty, memory-only cache.
    pub fn new() -> TransformCache {
        TransformCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: CacheCounters::default(),
            attached: false,
        }
    }

    /// The process-wide cache used by the experiment drivers. Reads
    /// through the persistent store when `YALI_STORE` is active.
    pub fn global() -> &'static TransformCache {
        static GLOBAL: OnceLock<TransformCache> = OnceLock::new();
        GLOBAL.get_or_init(|| TransformCache {
            attached: true,
            ..TransformCache::new()
        })
    }

    /// Applies (or recalls) `t` to `program` under `seed`.
    pub fn apply(&self, program: &yali_minic::Program, t: Transformer, seed: u64) -> yali_ir::Module {
        let mut h = yali_ir::Fnv64::new();
        h.write_str(&yali_minic::print(program));
        let key = (h.finish(), t, seed);
        let shard = &self.shards[(key.0 as usize) % SHARDS];
        if let Some(m) = shard.lock().unwrap().get(&key) {
            self.counters.hit();
            return m.clone();
        }
        self.counters.miss();
        let store = if self.attached { crate::store::active() } else { None };
        let skey = crate::store::transform_key(key.0, t.name(), seed);
        if let Some(store) = &store {
            if let Some(m) = store
                .get(crate::store::Namespace::Transform, skey)
                .and_then(|bytes| crate::store::decode_module(&bytes))
            {
                if shard.lock().unwrap().insert(key, m.clone()).is_none() {
                    self.counters.insert();
                }
                return m;
            }
        }
        let m = t.apply(program, seed);
        if shard.lock().unwrap().insert(key, m.clone()).is_none() {
            self.counters.insert();
            if let Some(store) = &store {
                store.put(
                    crate::store::Namespace::Transform,
                    skey,
                    &crate::store::encode_module(&m),
                );
            }
        }
        m
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.counters
            .snapshot(self.shards.iter().map(|s| s.lock().unwrap().len()).sum())
    }

    /// Empties the cache and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.counters.reset();
    }
}

/// Transforms through the global [`TransformCache`] (or directly, under
/// `YALI_CACHE=0`).
pub fn transform_cached(program: &yali_minic::Program, t: Transformer, seed: u64) -> yali_ir::Module {
    let _span = yali_obs::span!("transform.one");
    if !caching_enabled() {
        return t.apply(program, seed);
    }
    TransformCache::global().apply(program, t, seed)
}

/// The content-addressed trained-model store.
///
/// Values are serialized model blobs ([`crate::arena::TrainedClassifier`]
/// and `VectorClassifier` byte encodings); keys digest the complete
/// training input, so a hit deserializes to the model the retrain would
/// have produced, bit for bit. Blobs are shared via `Arc`: a hit clones a
/// pointer, not the weights.
pub struct ModelCache {
    shards: Vec<Mutex<HashMap<u64, Arc<Vec<u8>>>>>,
    counters: CacheCounters,
    /// See [`EmbedCache`]: only the global instance reads through disk.
    attached: bool,
}

impl Default for ModelCache {
    fn default() -> Self {
        ModelCache::new()
    }
}

impl ModelCache {
    /// An empty, memory-only store.
    pub fn new() -> ModelCache {
        ModelCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: CacheCounters::default(),
            attached: false,
        }
    }

    /// The process-wide store used by the experiment drivers. Reads
    /// through the persistent store when `YALI_STORE` is active.
    pub fn global() -> &'static ModelCache {
        static GLOBAL: OnceLock<ModelCache> = OnceLock::new();
        GLOBAL.get_or_init(|| ModelCache {
            attached: true,
            ..ModelCache::new()
        })
    }

    /// Looks up a model blob, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let found = self.shards[(key as usize) % SHARDS]
            .lock()
            .unwrap()
            .get(&key)
            .cloned();
        match found {
            Some(b) => {
                self.counters.hit();
                Some(b)
            }
            None => {
                self.counters.miss();
                if self.attached {
                    if let Some(store) = crate::store::active() {
                        if let Some(blob) = store
                            .get(crate::store::Namespace::Model, key)
                            .and_then(|bytes| crate::store::decode_model(&bytes))
                        {
                            let blob = Arc::new(blob);
                            let mut shard =
                                self.shards[(key as usize) % SHARDS].lock().unwrap();
                            if shard.insert(key, blob.clone()).is_none() {
                                self.counters.insert();
                            }
                            return Some(blob);
                        }
                    }
                }
                None
            }
        }
    }

    /// Stores a freshly trained model's blob (first writer wins; a
    /// concurrent trainer of the same key stores once).
    pub fn insert(&self, key: u64, bytes: Vec<u8>) {
        let mut shard = self.shards[(key as usize) % SHARDS].lock().unwrap();
        let encoded = if self.attached {
            Some(crate::store::encode_model(&bytes))
        } else {
            None
        };
        if shard.insert(key, Arc::new(bytes)).is_none() {
            self.counters.insert();
            drop(shard);
            if let Some(encoded) = encoded {
                if let Some(store) = crate::store::active() {
                    store.put(crate::store::Namespace::Model, key, &encoded);
                }
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.counters
            .snapshot(self.shards.iter().map(|s| s.lock().unwrap().len()).sum())
    }

    /// Empties the store and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.counters.reset();
    }
}

/// Clears all global caches (benchmarks use this to measure cold starts).
pub fn clear_caches() {
    EmbedCache::global().clear();
    TransformCache::global().clear();
    ModelCache::global().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(src: &str) -> yali_ir::Module {
        yali_minic::compile(src).expect("test program compiles")
    }

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let serial = par_map_with(1, &items, |i, &v| v * v + i as u64);
        for threads in [2, 3, 8, 32] {
            let parallel = par_map_with(threads, &items, |i, &v| v * v + i as u64);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_with(4, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map_with(4, &[7u32], |i, &v| v + i as u32), vec![7]);
        assert_eq!(
            par_map_with(64, &[1u32, 2], |_, &v| v * 10),
            vec![10, 20],
            "more threads than chunks"
        );
    }

    #[test]
    fn par_for_each_mut_equals_the_serial_loop() {
        let mut a: Vec<usize> = (0..57).collect();
        let mut b = a.clone();
        for (i, t) in a.iter_mut().enumerate() {
            *t = *t * 3 + i;
        }
        par_for_each_mut(&mut b, |i, t| *t = *t * 3 + i);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_hits_on_structurally_equal_modules() {
        let cache = EmbedCache::new();
        let m1 = module("int f(int a) { return a * a + 3; }");
        let e1 = cache.embed(&m1, EmbeddingKind::Histogram);
        let e2 = cache.embed(&m1, EmbeddingKind::Histogram);
        assert_eq!(e1, e2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn cache_distinguishes_kinds_and_contents() {
        let cache = EmbedCache::new();
        let m1 = module("int f(int a) { return a + 1; }");
        let m2 = module("int f(int a) { return a - 1; }");
        cache.embed(&m1, EmbeddingKind::Histogram);
        cache.embed(&m1, EmbeddingKind::Milepost);
        cache.embed(&m2, EmbeddingKind::Histogram);
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.entries, 3);
    }

    #[test]
    fn cached_equals_uncached() {
        let cache = EmbedCache::new();
        let m = module("int g(int x) { int s = 0; while (x > 0) { s = s + x; x = x - 1; } return s; }");
        for kind in EmbeddingKind::ALL {
            assert_eq!(cache.embed(&m, kind), kind.embed(&m), "{kind}");
            // Second round: answered from cache, still identical.
            assert_eq!(cache.embed(&m, kind), kind.embed(&m), "{kind} cached");
        }
        assert_eq!(cache.stats().hits, EmbeddingKind::ALL.len() as u64);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = EmbedCache::new();
        cache.embed(&module("int f() { return 4; }"), EmbeddingKind::Histogram);
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (0, 0, 0, 0));
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn cache_is_shared_across_threads() {
        let cache = EmbedCache::new();
        let ms: Vec<yali_ir::Module> =
            (0..8).map(|_| module("int f(int a) { return a * 2; }")).collect();
        let embs = par_map_with(4, &ms, |_, m| cache.embed(m, EmbeddingKind::Histogram));
        assert!(embs.windows(2).all(|w| w[0] == w[1]));
        let s = cache.stats();
        // All eight modules share one key; at least one lookup computed.
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits + s.misses, 8);
        assert!(s.misses >= 1);
    }

    #[test]
    fn transform_cache_matches_direct_application() {
        let cache = TransformCache::new();
        let p = yali_minic::parse("int f(int a) { return a * 3 + 1; }").unwrap();
        for t in [
            Transformer::None,
            Transformer::Opt(yali_opt::OptLevel::O3),
            Transformer::Ir(yali_obf::IrObf::Fla),
        ] {
            let direct = t.apply(&p, 9);
            let cold = cache.apply(&p, t, 9);
            let warm = cache.apply(&p, t, 9);
            assert_eq!(yali_ir::print_module(&direct), yali_ir::print_module(&cold), "{t}");
            assert_eq!(yali_ir::print_module(&direct), yali_ir::print_module(&warm), "{t}");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (3, 3, 3));
    }

    #[test]
    fn transform_cache_distinguishes_seeds_and_programs() {
        let cache = TransformCache::new();
        let p1 = yali_minic::parse("int f(int a) { return a + 2; }").unwrap();
        let p2 = yali_minic::parse("int f(int a) { return a - 2; }").unwrap();
        let t = Transformer::Ir(yali_obf::IrObf::Bcf);
        cache.apply(&p1, t, 1);
        cache.apply(&p1, t, 2); // same program, new seed: distinct entry
        cache.apply(&p2, t, 1); // new program: distinct entry
        cache.apply(&p1, Transformer::None, 1); // new transformer
        let s = cache.stats();
        assert_eq!((s.hits, s.entries), (0, 4));
    }

    #[test]
    fn model_cache_counts_and_clears() {
        let cache = ModelCache::new();
        assert!(cache.get(42).is_none());
        cache.insert(42, vec![1, 2, 3]);
        cache.insert(42, vec![1, 2, 3]); // same key: no second entry
        assert_eq!(cache.get(42).unwrap().as_slice(), &[1, 2, 3]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        cache.clear();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (0, 0, 0, 0));
    }

    #[test]
    fn attached_caches_read_through_the_store() {
        let dir = std::env::temp_dir().join(format!(
            "yali_engine_store_test_{}_{}",
            std::process::id(),
            yali_obs::epoch_ns()
        ));
        crate::store::set_store_dir(Some(&dir)).unwrap();

        // Publish via one attached cache, then recall via a second one
        // with empty memory: the artifact must come back from disk.
        let m = module("int readthrough(int a) { return a * 7 + 5; }");
        let writer = EmbedCache { attached: true, ..EmbedCache::new() };
        let e = writer.embed(&m, EmbeddingKind::Histogram);
        let reader = EmbedCache { attached: true, ..EmbedCache::new() };
        let before = crate::store::active_stats().unwrap().disk_hits;
        assert_eq!(reader.embed(&m, EmbeddingKind::Histogram), e);
        assert!(
            crate::store::active_stats().unwrap().disk_hits > before,
            "second cache must hit the disk, not recompute"
        );
        let s = reader.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (0, 1, 1), "disk hit is a memory miss");

        // Same story for models.
        let mc1 = ModelCache { attached: true, ..ModelCache::new() };
        mc1.insert(0xfeed_beef, vec![4, 5, 6]);
        let mc2 = ModelCache { attached: true, ..ModelCache::new() };
        assert_eq!(mc2.get(0xfeed_beef).unwrap().as_slice(), &[4, 5, 6]);

        // And transforms: the recalled module embeds identically.
        let p = yali_minic::parse("int readthrough(int a) { return a - 9; }").unwrap();
        let t = Transformer::Ir(yali_obf::IrObf::Fla);
        let tc1 = TransformCache { attached: true, ..TransformCache::new() };
        let direct = tc1.apply(&p, t, 3);
        let tc2 = TransformCache { attached: true, ..TransformCache::new() };
        let from_disk = tc2.apply(&p, t, 3);
        assert_eq!(yali_ir::print_module(&from_disk), yali_ir::print_module(&direct));
        assert_eq!(from_disk.content_hash(), direct.content_hash());

        crate::store::set_store_dir(None).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn experiment_types_are_send_and_sync() {
        fn ok<T: Send + Sync>() {}
        ok::<Embedding>();
        ok::<EmbeddingKind>();
        ok::<crate::Transformer>();
        ok::<yali_ml::VectorClassifier>();
        ok::<yali_ml::Dgcnn>();
        ok::<crate::arena::TrainedClassifier>();
        ok::<EmbedCache>();
    }
}
