//! Experiment scaling: the paper's full runs take ~19 days; the default
//! scale here finishes in minutes while preserving the comparisons'
//! shapes. Set `YALI_SCALE=paper` (or `medium`) to grow the workloads.

/// Workload sizes for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Problem classes for the Game-0..3 experiments (paper: 104).
    pub classes: usize,
    /// Problem classes for the embedding comparison (paper: 32).
    pub embed_classes: usize,
    /// Solutions per class (paper: 500).
    pub per_class: usize,
    /// Measurement rounds per box plot (paper: 10).
    pub rounds: usize,
    /// Malware seed-suite size per side (paper: 36).
    pub malware_train: usize,
    /// Malware challenge size per side (paper: 12).
    pub malware_test: usize,
    /// Programs per transformer in RQ7 (paper: 500).
    pub discover_per_class: usize,
}

impl Scale {
    /// The fast default (CI-sized).
    pub const SMALL: Scale = Scale {
        classes: 8,
        embed_classes: 5,
        per_class: 12,
        rounds: 2,
        malware_train: 10,
        malware_test: 5,
        discover_per_class: 15,
    };

    /// A middle setting for overnight runs.
    pub const MEDIUM: Scale = Scale {
        classes: 32,
        embed_classes: 16,
        per_class: 40,
        rounds: 5,
        malware_train: 24,
        malware_test: 10,
        discover_per_class: 80,
    };

    /// The paper's sizes.
    pub const PAPER: Scale = Scale {
        classes: 104,
        embed_classes: 32,
        per_class: 500,
        rounds: 10,
        malware_train: 36,
        malware_test: 12,
        discover_per_class: 500,
    };

    /// Reads `YALI_SCALE` (`small` default, `medium`, `paper`).
    pub fn from_env() -> Scale {
        match std::env::var("YALI_SCALE").as_deref() {
            Ok("paper") => Scale::PAPER,
            Ok("medium") => Scale::MEDIUM,
            _ => Scale::SMALL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_small() {
        // The test environment does not set YALI_SCALE.
        if std::env::var("YALI_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::SMALL);
        }
    }

    #[test]
    fn paper_scale_matches_the_paper() {
        assert_eq!(Scale::PAPER.classes, 104);
        assert_eq!(Scale::PAPER.per_class, 500);
        assert_eq!(Scale::PAPER.embed_classes, 32);
        assert_eq!(Scale::PAPER.rounds, 10);
    }
}
