//! # yali-prof
//!
//! The analysis half of the observability stack: where `yali-obs` emits
//! telemetry (counters, histograms, spans, the `YALI_TRACE` JSONL sink)
//! and `yali_core::report` aggregates it into `RUNSTATS.json`, this crate
//! reads it all back:
//!
//! - [`trace`] — a strict JSONL trace parser that reconstructs per-thread
//!   span trees, rejecting unbalanced or out-of-order events with
//!   line-numbered errors;
//! - [`profile`] — flamegraph-style **self vs. total** time per span
//!   label, and **critical-path** extraction through a run's span nesting;
//! - [`timeline`] — pool **busy/idle per worker** over time buckets, from
//!   the `par_worker` region events;
//! - [`chrome`] — Chrome Trace Format export, loadable in Perfetto or
//!   `chrome://tracing`;
//! - [`diff`] — the run-over-run **regression watch** comparing two
//!   `RUNSTATS_*.json`/`BENCH_*.json` reports against thresholds.
//!
//! The `yali-prof` binary fronts all of it:
//!
//! ```text
//! yali-prof top TRACE.jsonl --top 15      # self/total profile
//! yali-prof critical-path TRACE.jsonl    # the chain bounding wall time
//! yali-prof timeline TRACE.jsonl         # pool busy/idle per worker
//! yali-prof export --chrome TRACE.jsonl -o trace.json   # open in Perfetto
//! yali-prof diff RUNSTATS_old.json RUNSTATS_new.json    # exit 1 on regression
//! yali-prof selfcheck                    # golden-fixture round trip
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod crosspath;
pub mod diff;
pub mod merge;
pub mod profile;
pub mod timeline;
pub mod trace;

pub use chrome::to_chrome;
pub use crosspath::{cross_path, render_cross_path, render_cross_path_json, CrossPath};
pub use diff::{diff_files, diff_values, DiffConfig, Violation};
pub use merge::{merge_traces, to_chrome_merged, to_jsonl_merged, MergedProcess, MergedTrace};
pub use profile::{
    critical_path, profile, render_critical_path, render_critical_path_json, render_top,
    render_top_json, Profile,
};
pub use timeline::{render_timeline, timeline, Timeline};
pub use trace::{parse_trace, parse_trace_file, SpanNode, Trace, TraceError};

/// The golden trace fixture (a hand-written capture exercising every event
/// kind) and its committed Chrome export. `selfcheck` re-exports the
/// fixture and demands byte identity, so any drift in the exporter or the
/// parser shows up as a CI failure, not a silently different file.
pub const GOLDEN_TRACE: &str = include_str!("../fixtures/golden.jsonl");
/// The committed Chrome Trace Format export of [`GOLDEN_TRACE`].
pub const GOLDEN_CHROME: &str = include_str!("../fixtures/golden_chrome.json");
/// Shard 0 of the two-process merge fixture: a grid-style worker capture
/// with a preamble and a trace-context-carrying span.
pub const GOLDEN_SHARD0: &str = include_str!("../fixtures/golden_shard0.jsonl");
/// Shard 1 of the two-process merge fixture (epoch offset from shard 0).
pub const GOLDEN_SHARD1: &str = include_str!("../fixtures/golden_shard1.jsonl");
/// The committed merged Chrome export of the two shard fixtures —
/// `selfcheck` holds `yali-prof merge` to byte identity against it.
pub const GOLDEN_MERGED_CHROME: &str = include_str!("../fixtures/golden_merged_chrome.json");

/// Parses the golden fixture, re-exports it, and checks the export is
/// byte-identical to the committed one (plus profile/timeline sanity).
/// Returns a human-readable report, or the first failure.
pub fn selfcheck() -> Result<String, String> {
    let trace = parse_trace(GOLDEN_TRACE).map_err(|e| format!("golden fixture: {e}"))?;
    let exported = to_chrome(&trace);
    if exported != GOLDEN_CHROME {
        // Find the first differing line for a useful message.
        let diff_line = exported
            .lines()
            .zip(GOLDEN_CHROME.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| exported.lines().count().min(GOLDEN_CHROME.lines().count()) + 1);
        return Err(format!(
            "chrome export of the golden fixture is not byte-identical to \
             fixtures/golden_chrome.json (first difference at line {diff_line}); if the \
             exporter changed intentionally, regenerate the fixture with \
             `yali-prof export --chrome` and commit it"
        ));
    }
    let p = profile::profile(&trace);
    let self_total = p.self_total_ns();
    if self_total != p.root_wall_ns {
        return Err(format!(
            "golden profile self-time total {self_total}ns != root wall {}ns",
            p.root_wall_ns
        ));
    }
    let tl = timeline::timeline(&trace, 8)
        .ok_or("golden fixture lost its par_worker events".to_string())?;
    // The two-process merge fixture: stitch the committed shard captures,
    // demand a byte-identical Chrome export, and demand the merged JSONL
    // re-satisfies the strict parser.
    let s0 = parse_trace(GOLDEN_SHARD0).map_err(|e| format!("shard0 fixture: {e}"))?;
    let s1 = parse_trace(GOLDEN_SHARD1).map_err(|e| format!("shard1 fixture: {e}"))?;
    let merged = merge::merge_traces(vec![
        ("golden_shard0.jsonl".to_string(), s0),
        ("golden_shard1.jsonl".to_string(), s1),
    ]);
    let merged_chrome = merge::to_chrome_merged(&merged);
    if merged_chrome != GOLDEN_MERGED_CHROME {
        let diff_line = merged_chrome
            .lines()
            .zip(GOLDEN_MERGED_CHROME.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| {
                merged_chrome
                    .lines()
                    .count()
                    .min(GOLDEN_MERGED_CHROME.lines().count())
                    + 1
            });
        return Err(format!(
            "merged chrome export of the shard fixtures is not byte-identical to \
             fixtures/golden_merged_chrome.json (first difference at line {diff_line}); if the \
             merge exporter changed intentionally, regenerate the fixture with \
             `yali-prof merge` and commit it"
        ));
    }
    let merged_jsonl = merge::to_jsonl_merged(&merged);
    parse_trace(&merged_jsonl)
        .map_err(|e| format!("merged shard fixtures fail the strict parser: {e}"))?;
    Ok(format!(
        "selfcheck ok: {} events, {} spans on {} thread(s), {} label(s), export {} bytes, \
         pool timeline over {} worker slot(s), merged export {} bytes over {} process lane(s)",
        trace.n_events,
        trace.n_spans,
        trace.tids().len(),
        p.labels.len(),
        exported.len(),
        tl.workers.len(),
        merged_chrome.len(),
        merged.processes.len(),
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn selfcheck_passes_on_the_committed_fixture() {
        let report = super::selfcheck().expect("selfcheck");
        assert!(report.contains("selfcheck ok"), "{report}");
    }
}
