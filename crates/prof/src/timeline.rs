//! Pool utilization timeline: busy/idle per worker over time buckets,
//! derived from the `par_worker` region events the `yali-par` pool emits
//! (one per worker per `par_map` region, carrying the worker's index, its
//! start timestamp `t0_ns`, and its busy nanoseconds).
//!
//! A worker is considered busy over `[t0_ns, t0_ns + busy_ns)` — the
//! pool's accounting counts a worker's whole lifetime inside a region as
//! busy, so idle time in this view is the time a worker slot exists but no
//! region runs on it (the pool starving between regions, exactly the
//! signal an arena sweep needs to see).

use crate::trace::Trace;

/// A busy interval of one worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BusySlot {
    worker: u64,
    start_ns: u64,
    end_ns: u64,
}

/// The bucketed busy/idle view of the pool across a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Timeline start (earliest worker start), nanoseconds on the trace
    /// epoch clock.
    pub start_ns: u64,
    /// Timeline end (latest worker end).
    pub end_ns: u64,
    /// Worker slot indexes observed, ascending (row order of
    /// [`Timeline::busy`]).
    pub workers: Vec<u64>,
    /// Busy fraction in `[0, 1]` per worker row per bucket.
    pub busy: Vec<Vec<f64>>,
    /// Mean busy fraction across worker rows per bucket.
    pub utilization: Vec<f64>,
    /// `par_map` regions that contributed.
    pub regions: u64,
}

/// Builds the pool timeline with `buckets` equal time buckets. Returns
/// `None` when the trace carries no `par_worker` events (a serial run, or
/// a trace captured before the pool was instrumented).
pub fn timeline(trace: &Trace, buckets: usize) -> Option<Timeline> {
    let buckets = buckets.max(1);
    let mut slots: Vec<BusySlot> = Vec::new();
    let mut regions = 0u64;
    for r in &trace.regions {
        match r.label.as_str() {
            "par_worker" => {
                // Tolerate events from older producers that lack the
                // per-worker fields; they simply contribute nothing.
                if let (Some(&worker), Some(&t0), Some(&busy)) = (
                    r.fields.get("worker"),
                    r.fields.get("t0_ns"),
                    r.fields.get("busy_ns"),
                ) {
                    slots.push(BusySlot {
                        worker,
                        start_ns: t0,
                        end_ns: t0 + busy,
                    });
                }
            }
            "par_map" => regions += 1,
            _ => {}
        }
    }
    if slots.is_empty() {
        return None;
    }
    let start_ns = slots.iter().map(|s| s.start_ns).min().unwrap();
    let end_ns = slots.iter().map(|s| s.end_ns).max().unwrap().max(start_ns + 1);
    let mut workers: Vec<u64> = slots.iter().map(|s| s.worker).collect();
    workers.sort_unstable();
    workers.dedup();

    let span = (end_ns - start_ns) as f64;
    let bucket_ns = span / buckets as f64;
    let mut busy = vec![vec![0.0f64; buckets]; workers.len()];
    for s in &slots {
        let row = workers.binary_search(&s.worker).expect("worker indexed");
        for (b, cell) in busy[row].iter_mut().enumerate() {
            let b_lo = start_ns as f64 + b as f64 * bucket_ns;
            let b_hi = b_lo + bucket_ns;
            let overlap = (s.end_ns as f64).min(b_hi) - (s.start_ns as f64).max(b_lo);
            if overlap > 0.0 {
                *cell += overlap / bucket_ns;
            }
        }
    }
    // Overlapping regions can stack the same worker slot past 1.0; the
    // timeline reads as a fraction, so clamp.
    for row in &mut busy {
        for cell in row {
            *cell = cell.min(1.0);
        }
    }
    let utilization: Vec<f64> = (0..buckets)
        .map(|b| busy.iter().map(|row| row[b]).sum::<f64>() / workers.len() as f64)
        .collect();
    Some(Timeline {
        start_ns,
        end_ns,
        workers,
        busy,
        utilization,
        regions,
    })
}

/// Maps a busy fraction to a density glyph.
fn glyph(frac: f64) -> char {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let idx = (frac * 10.0).floor() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Renders the timeline as one ASCII row per worker plus a pool summary
/// row (` ` idle through `@` fully busy).
pub fn render_timeline(t: &Timeline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "pool timeline: {} worker slot(s), {} region(s), {:.3}ms window, {} bucket(s)\n",
        t.workers.len(),
        t.regions,
        (t.end_ns - t.start_ns) as f64 / 1e6,
        t.utilization.len(),
    ));
    for (row, w) in t.workers.iter().enumerate() {
        out.push_str(&format!("  w{w:<3} |"));
        for &frac in &t.busy[row] {
            out.push(glyph(frac));
        }
        out.push_str("|\n");
    }
    out.push_str("  pool |");
    for &frac in &t.utilization {
        out.push(glyph(frac));
    }
    let mean = t.utilization.iter().sum::<f64>() / t.utilization.len().max(1) as f64;
    out.push_str(&format!("| mean busy {:.0}%\n", mean * 100.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_trace;

    fn worker_event(tid: u64, worker: u64, t0: u64, busy: u64) -> String {
        format!(
            r#"{{"ev":"region","label":"par_worker","tid":{tid},"t_ns":{},"worker":{worker},"t0_ns":{t0},"busy_ns":{busy},"items":4}}"#,
            t0 + busy
        )
    }

    #[test]
    fn timeline_buckets_busy_intervals_per_worker() {
        // Worker 0 busy over the whole [0, 1000) window, worker 1 only
        // over the first half.
        let text = [
            worker_event(5, 0, 0, 1000),
            worker_event(6, 1, 0, 500),
            r#"{"ev":"region","label":"par_map","tid":1,"t_ns":1000,"t0_ns":0,"wall_ns":1000,"busy_ns":1500,"workers":2,"items":8}"#
                .to_string(),
        ]
        .join("\n");
        let t = parse_trace(&text).unwrap();
        let tl = timeline(&t, 4).unwrap();
        assert_eq!(tl.workers, vec![0, 1]);
        assert_eq!(tl.regions, 1);
        assert_eq!(tl.start_ns, 0);
        assert_eq!(tl.end_ns, 1000);
        // Worker 0: busy in all four buckets; worker 1: first two only.
        for b in 0..4 {
            assert!((tl.busy[0][b] - 1.0).abs() < 1e-9, "w0 b{b}={}", tl.busy[0][b]);
        }
        assert!((tl.busy[1][0] - 1.0).abs() < 1e-9);
        assert!((tl.busy[1][1] - 1.0).abs() < 1e-9);
        assert!(tl.busy[1][2].abs() < 1e-9);
        assert!(tl.busy[1][3].abs() < 1e-9);
        // Pool utilization: 1.0 first half, 0.5 second half.
        assert!((tl.utilization[0] - 1.0).abs() < 1e-9);
        assert!((tl.utilization[3] - 0.5).abs() < 1e-9);
        let text = render_timeline(&tl);
        assert!(text.contains("w0"), "{text}");
        assert!(text.contains("mean busy 75%"), "{text}");
    }

    #[test]
    fn timeline_is_none_without_worker_events() {
        let t = parse_trace("").unwrap();
        assert!(timeline(&t, 8).is_none());
    }

    #[test]
    fn overlapping_slots_clamp_at_fully_busy() {
        let text = [worker_event(5, 0, 0, 100), worker_event(6, 0, 0, 100)].join("\n");
        let t = parse_trace(&text).unwrap();
        let tl = timeline(&t, 2).unwrap();
        assert!(tl.busy[0].iter().all(|&f| f <= 1.0));
    }
}
