//! Run-over-run regression watch: compares two `RUNSTATS_*.json` run
//! reports (or two `BENCH_*.json` benchmark reports) and flags drift past
//! configurable thresholds — counter deltas, phase-time ratios, cache
//! hit-ratio drops, and speedup floors.
//!
//! The thresholds default to values loose enough that an unmodified tree
//! re-running its benches passes (criterion picks iteration counts
//! adaptively, so raw counters legitimately scale by a few x between
//! runs) but tight enough that a real regression — a cache that stopped
//! hitting, a phase that got an order of magnitude slower, a parallel
//! mode that fell back to serial — fails the gate with the offending
//! metric named in the message.

use serde_json::Value;

/// The highest `RUNSTATS.json` `schema_version` this analyzer understands
/// (kept in lockstep with `yali_core::report::RUNSTATS_SCHEMA_VERSION`).
pub const MAX_SUPPORTED_SCHEMA: u64 = 4;

/// Thresholds for [`diff_values`]. All ratios compare `new` against `old`.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// A counter may grow or shrink by at most this factor (counters scale
    /// with the benchmark's adaptive iteration count, so this is loose).
    pub max_counter_ratio: f64,
    /// Counters with both sides below this floor are ignored (tiny counts
    /// are all noise).
    pub min_counter: u64,
    /// A phase's mean wall time may grow by at most this factor.
    pub max_phase_ratio: f64,
    /// Phases with an old mean below this many nanoseconds are ignored
    /// (sub-threshold spans measure clock overhead, not work).
    pub min_phase_ns: f64,
    /// A cache hit ratio may drop by at most this much (absolute).
    pub max_hit_drop: f64,
    /// A benchmark mode's speedup-vs-serial must stay at least this
    /// fraction of its old value.
    pub min_speedup_ratio: f64,
    /// A serving mode's p99 latency may grow by at most this factor
    /// (applied only when both reports carry `p99_ns`).
    pub max_p99_ratio: f64,
    /// A serving mode's sustained throughput must stay at least this
    /// fraction of its old value (applied only when both reports carry
    /// `qps`).
    pub min_qps_ratio: f64,
    /// Fleet reports (`RUNSTATS_grid.json`): the slowest shard's wall time
    /// may exceed the median shard's by at most this factor.
    pub max_straggler_ratio: f64,
    /// Fleet reports: each shard's share of a fleet counter may drift from
    /// the even split (`fleet / n_shards`) by at most this factor in
    /// either direction.
    pub max_shard_drift: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            max_counter_ratio: 8.0,
            min_counter: 16,
            max_phase_ratio: 10.0,
            min_phase_ns: 50_000.0,
            max_hit_drop: 0.15,
            min_speedup_ratio: 0.5,
            max_p99_ratio: 3.0,
            min_qps_ratio: 0.5,
            max_straggler_ratio: 3.0,
            max_shard_drift: 4.0,
        }
    }
}

/// One threshold breach: the metric that moved and how.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The metric that breached (`counter game.rounds.game1`,
    /// `cache embed hit_ratio`, `phase game.fit mean_ns`, …).
    pub metric: String,
    /// Old value, new value, and the threshold that was crossed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "REGRESSION {}: {}", self.metric, self.detail)
    }
}

/// What kind of report a JSON document is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A `RUNSTATS_*.json` run report (caches/phases/pool/counters).
    RunStats,
    /// A `BENCH_*.json` benchmark report (modes with speedups).
    Bench,
    /// A `RUNSTATS_grid.json` fleet report (merged fleet + per-shard
    /// sections from a sharded `yali-grid run`).
    Fleet,
}

/// Detects the report kind from its top-level keys.
pub fn detect_kind(v: &Value) -> Result<ReportKind, String> {
    if v.get("fleet").as_object().is_some() && v.get("shards").as_array().is_some() {
        Ok(ReportKind::Fleet)
    } else if v.get("phases").as_object().is_some() && v.get("caches").as_object().is_some() {
        Ok(ReportKind::RunStats)
    } else if v.get("modes").as_array().is_some() {
        Ok(ReportKind::Bench)
    } else {
        Err("report is neither a RUNSTATS (caches+phases) nor a BENCH (modes) nor a fleet \
             (fleet+shards) document"
            .into())
    }
}

fn schema_version(v: &Value) -> u64 {
    // Reports written before the field existed are schema 1.
    v.get("schema_version").as_u64().unwrap_or(1)
}

/// Compares two parsed reports of the same kind. Returns the list of
/// threshold breaches (empty = the gate passes) or an error when the
/// documents are not comparable at all.
pub fn diff_values(old: &Value, new: &Value, cfg: &DiffConfig) -> Result<Vec<Violation>, String> {
    let kind = detect_kind(old)?;
    let new_kind = detect_kind(new)?;
    if kind != new_kind {
        return Err(format!("cannot compare {kind:?} against {new_kind:?}"));
    }
    match kind {
        ReportKind::RunStats => diff_runstats(old, new, cfg),
        ReportKind::Bench => diff_bench(old, new, cfg),
        ReportKind::Fleet => diff_fleet(old, new, cfg),
    }
}

/// Fleet reports: the merged `fleet` section diffs like any RUNSTATS
/// document, and two fleet-only health gates apply to the **new** report
/// on its own — the straggler ceiling (slowest shard wall vs. median) and
/// the per-shard counter drift band (no shard may carry a share of a
/// fleet counter further than `max_shard_drift` from the even split).
fn diff_fleet(old: &Value, new: &Value, cfg: &DiffConfig) -> Result<Vec<Violation>, String> {
    let mut out = diff_runstats(old.get("fleet"), new.get("fleet"), cfg)?;

    if let Some(r) = new.get("straggler_ratio").as_f64() {
        if r > cfg.max_straggler_ratio {
            out.push(Violation {
                metric: "fleet straggler_ratio".into(),
                detail: format!(
                    "slowest shard ran {r:.2}x the median shard wall (ceiling {:.1}x)",
                    cfg.max_straggler_ratio
                ),
            });
        }
    }

    let empty_vec = Vec::new();
    let shards = new.get("shards").as_array().unwrap_or(&empty_vec);
    let n = shards.len().max(1) as f64;
    let empty = std::collections::BTreeMap::new();
    let fleet_counters = new
        .get("fleet")
        .get("counters")
        .as_object()
        .unwrap_or(&empty);
    for (name, fv) in fleet_counters {
        if name.ends_with("_ns") {
            continue;
        }
        let Some(total) = fv.as_u64() else { continue };
        let expect = total as f64 / n;
        if expect < cfg.min_counter as f64 {
            continue;
        }
        for sh in shards {
            let Some(c) = sh.get("report").get("counters").get(name).as_u64() else {
                continue;
            };
            let ratio = c as f64 / expect;
            if ratio > cfg.max_shard_drift || ratio < 1.0 / cfg.max_shard_drift {
                out.push(Violation {
                    metric: format!(
                        "shard {} counter {name}",
                        sh.get("shard").as_u64().unwrap_or(0)
                    ),
                    detail: format!(
                        "{c} vs an even split of {expect:.0} ({ratio:.2}x outside the {:.0}x \
                         drift band)",
                        cfg.max_shard_drift
                    ),
                });
            }
        }
    }
    Ok(out)
}

fn diff_runstats(old: &Value, new: &Value, cfg: &DiffConfig) -> Result<Vec<Violation>, String> {
    let (vo, vn) = (schema_version(old), schema_version(new));
    if vo > MAX_SUPPORTED_SCHEMA || vn > MAX_SUPPORTED_SCHEMA {
        return Err(format!(
            "unsupported RUNSTATS schema_version (old {vo}, new {vn}; this yali-prof understands \
             up to {MAX_SUPPORTED_SCHEMA})"
        ));
    }
    let mut out = Vec::new();
    if vn < vo {
        out.push(Violation {
            metric: "schema_version".into(),
            detail: format!("regressed from {vo} to {vn}"),
        });
    }

    // Counter deltas. Timing-sum counters (`*_ns`) scale with wall time,
    // not with work, so they are exempt; everything else must stay within
    // max_counter_ratio in either direction.
    let empty = std::collections::BTreeMap::new();
    let old_counters = old.get("counters").as_object().unwrap_or(&empty);
    let new_counters = new.get("counters").as_object().unwrap_or(&empty);
    for (name, ov) in old_counters {
        if name.ends_with("_ns") {
            continue;
        }
        let (Some(o), Some(n)) = (ov.as_u64(), new_counters.get(name).and_then(Value::as_u64))
        else {
            continue;
        };
        if o < cfg.min_counter && n < cfg.min_counter {
            continue;
        }
        if o > 0 && n == 0 {
            out.push(Violation {
                metric: format!("counter {name}"),
                detail: format!("disappeared (old {o}, new 0)"),
            });
            continue;
        }
        if o == 0 {
            continue; // newly exercised series: fine
        }
        let ratio = n as f64 / o as f64;
        if ratio > cfg.max_counter_ratio || ratio < 1.0 / cfg.max_counter_ratio {
            out.push(Violation {
                metric: format!("counter {name}"),
                detail: format!(
                    "old {o}, new {n} ({ratio:.2}x outside the {:.0}x band)",
                    cfg.max_counter_ratio
                ),
            });
        }
    }

    // Cache hit-ratio drift.
    let old_caches = old.get("caches").as_object().unwrap_or(&empty);
    let new_caches = new.get("caches").as_object().unwrap_or(&empty);
    for (name, oc) in old_caches {
        let Some(nc) = new_caches.get(name) else {
            out.push(Violation {
                metric: format!("cache {name}"),
                detail: "missing from the new report".into(),
            });
            continue;
        };
        let (Some(o), Some(n)) = (oc.get("hit_ratio").as_f64(), nc.get("hit_ratio").as_f64())
        else {
            continue;
        };
        if o - n > cfg.max_hit_drop {
            out.push(Violation {
                metric: format!("cache {name} hit_ratio"),
                detail: format!(
                    "dropped from {o:.3} to {n:.3} (more than the {:.2} allowance)",
                    cfg.max_hit_drop
                ),
            });
        }
    }

    // Artifact-store hit-ratio drift (schema 3+). Only comparable when
    // both runs had a store attached — a run without one legitimately
    // reports zeros.
    if let (Some(os), Some(ns)) = (old.get("store").as_object(), new.get("store").as_object()) {
        let active = |s: &std::collections::BTreeMap<String, Value>| {
            s.get("active").and_then(Value::as_bool).unwrap_or(false)
        };
        if active(os) && active(ns) {
            if let (Some(o), Some(n)) = (
                os.get("disk_hit_ratio").and_then(Value::as_f64),
                ns.get("disk_hit_ratio").and_then(Value::as_f64),
            ) {
                if o - n > cfg.max_hit_drop {
                    out.push(Violation {
                        metric: "store disk_hit_ratio".into(),
                        detail: format!(
                            "dropped from {o:.3} to {n:.3} (more than the {:.2} allowance)",
                            cfg.max_hit_drop
                        ),
                    });
                }
            }
        }
    }

    // Phase-time ratios: per-entry means, so adaptive iteration counts
    // cancel out.
    let old_phases = old.get("phases").as_object().unwrap_or(&empty);
    let new_phases = new.get("phases").as_object().unwrap_or(&empty);
    for (name, op) in old_phases {
        let Some(np) = new_phases.get(name) else {
            continue; // a phase may vanish when its code path is off
        };
        let (Some(o), Some(n)) = (op.get("mean_ns").as_f64(), np.get("mean_ns").as_f64()) else {
            continue;
        };
        if o < cfg.min_phase_ns {
            continue;
        }
        let ratio = n / o;
        if ratio > cfg.max_phase_ratio {
            out.push(Violation {
                metric: format!("phase {name} mean_ns"),
                detail: format!(
                    "slowed from {:.0}ns to {:.0}ns ({ratio:.1}x > {:.0}x)",
                    o, n, cfg.max_phase_ratio
                ),
            });
        }
    }
    Ok(out)
}

fn diff_bench(old: &Value, new: &Value, cfg: &DiffConfig) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    let empty_vec = Vec::new();
    let old_modes = old.get("modes").as_array().unwrap_or(&empty_vec);
    let new_modes = new.get("modes").as_array().unwrap_or(&empty_vec);
    for om in old_modes {
        let Some(name) = om.get("name").as_str() else {
            continue;
        };
        let Some(nm) = new_modes.iter().find(|m| m.get("name").as_str() == Some(name)) else {
            out.push(Violation {
                metric: format!("mode {name}"),
                detail: "missing from the new report".into(),
            });
            continue;
        };
        if let (Some(o), Some(n)) = (
            om.get("speedup_vs_serial").as_f64(),
            nm.get("speedup_vs_serial").as_f64(),
        ) {
            if o > 0.0 && n < o * cfg.min_speedup_ratio {
                out.push(Violation {
                    metric: format!("mode {name} speedup_vs_serial"),
                    detail: format!(
                        "fell from {o:.2}x to {n:.2}x (below {:.0}% of the baseline)",
                        cfg.min_speedup_ratio * 100.0
                    ),
                });
            }
        }
        // Serving modes (BENCH_serve.json) additionally carry tail-latency
        // and throughput fields; both sides must have them to compare — a
        // plain throughput bench without percentiles is not penalized.
        if let (Some(o), Some(n)) = (om.get("p99_ns").as_f64(), nm.get("p99_ns").as_f64()) {
            if o > 0.0 && n > o * cfg.max_p99_ratio {
                out.push(Violation {
                    metric: format!("mode {name} p99_ns"),
                    detail: format!(
                        "tail latency grew from {o:.0}ns to {n:.0}ns ({:.1}x > {:.1}x ceiling)",
                        n / o,
                        cfg.max_p99_ratio
                    ),
                });
            }
        }
        if let (Some(o), Some(n)) = (om.get("qps").as_f64(), nm.get("qps").as_f64()) {
            if o > 0.0 && n < o * cfg.min_qps_ratio {
                out.push(Violation {
                    metric: format!("mode {name} qps"),
                    detail: format!(
                        "throughput fell from {o:.1} to {n:.1} qps (below {:.0}% of the baseline)",
                        cfg.min_qps_ratio * 100.0
                    ),
                });
            }
        }
    }

    // The top-level `live` section (BENCH_serve.json): the daemon's own
    // windowed telemetry, sampled over the bench run. The same tail/
    // throughput thresholds apply, and the same both-sides-present rule —
    // a zero means "window was empty when sampled", which is a bench
    // harness artifact, not a serving regression.
    if let (Some(ol), Some(nl)) = (old.get("live").as_object(), new.get("live").as_object()) {
        let f = |m: &std::collections::BTreeMap<String, Value>, k: &str| {
            m.get(k).and_then(Value::as_f64).filter(|&v| v > 0.0)
        };
        if let (Some(o), Some(n)) = (f(ol, "windowed_p99_ns"), f(nl, "windowed_p99_ns")) {
            if n > o * cfg.max_p99_ratio {
                out.push(Violation {
                    metric: "live windowed_p99_ns".into(),
                    detail: format!(
                        "live tail grew from {o:.0}ns to {n:.0}ns ({:.1}x > {:.1}x ceiling)",
                        n / o,
                        cfg.max_p99_ratio
                    ),
                });
            }
        }
        if let (Some(o), Some(n)) = (f(ol, "rolling_qps"), f(nl, "rolling_qps")) {
            if n < o * cfg.min_qps_ratio {
                out.push(Violation {
                    metric: "live rolling_qps".into(),
                    detail: format!(
                        "live throughput fell from {o:.1} to {n:.1} qps (below {:.0}% of the \
                         baseline)",
                        cfg.min_qps_ratio * 100.0
                    ),
                });
            }
        }
    }
    Ok(out)
}

/// Reads, parses, and diffs two report files.
pub fn diff_files(
    old_path: &str,
    new_path: &str,
    cfg: &DiffConfig,
) -> Result<Vec<Violation>, String> {
    let read = |path: &str| -> Result<Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    };
    diff_values(&read(old_path)?, &read(new_path)?, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runstats(rounds: u64, hit_ratio: f64, fit_mean: f64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
              "schema_version": 2,
              "obs_enabled": true,
              "caches": {{"embed": {{"hits": 100, "misses": 10, "hit_ratio": {hit_ratio}}}}},
              "phases": {{"game.fit": {{"count": 40, "mean_ns": {fit_mean}, "total_ns": 1}}}},
              "counters": {{"game.rounds.game1": {rounds}, "par.busy_ns": 999999}}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_runstats_pass() {
        let v = runstats(120, 0.9, 1_000_000.0);
        assert!(diff_values(&v, &v, &DiffConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn mild_run_to_run_noise_passes() {
        let old = runstats(120, 0.90, 1_000_000.0);
        let new = runstats(260, 0.85, 1_900_000.0); // ~2x counters, small drift
        assert!(diff_values(&old, &new, &DiffConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn perturbed_counter_fails_and_names_the_metric() {
        let old = runstats(120, 0.9, 1_000_000.0);
        let new = runstats(120 * 100, 0.9, 1_000_000.0);
        let violations = diff_values(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "counter game.rounds.game1");
        assert!(violations[0].to_string().contains("REGRESSION"));
        // The other direction (collapse) also trips.
        let new = runstats(1, 0.9, 1_000_000.0);
        let violations = diff_values(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(violations[0].metric, "counter game.rounds.game1");
    }

    #[test]
    fn timing_counters_are_exempt() {
        let old = runstats(120, 0.9, 1_000_000.0);
        let new: Value = serde_json::from_str(
            r#"{"schema_version":2,"obs_enabled":true,"caches":{"embed":{"hit_ratio":0.9}},"phases":{},"counters":{"game.rounds.game1":120,"par.busy_ns":1}}"#,
        )
        .unwrap();
        // par.busy_ns went from 999999 to 1: no violation (it ends in _ns).
        assert!(diff_values(&old, &new, &DiffConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cache_hit_ratio_drop_fails() {
        let old = runstats(120, 0.95, 1_000_000.0);
        let new = runstats(120, 0.40, 1_000_000.0);
        let violations = diff_values(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "cache embed hit_ratio");
    }

    #[test]
    fn phase_blowup_fails_but_fast_phases_are_ignored() {
        let old = runstats(120, 0.9, 1_000_000.0);
        let new = runstats(120, 0.9, 20_000_000.0);
        let violations = diff_values(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "phase game.fit mean_ns");
        // A sub-floor phase can blow up freely (it measures overhead).
        let old = runstats(120, 0.9, 100.0);
        let new = runstats(120, 0.9, 40_000.0);
        assert!(diff_values(&old, &new, &DiffConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn bench_speedup_floor() {
        let mk = |speedup: f64| -> Value {
            serde_json::from_str(&format!(
                r#"{{"modes":[{{"name":"sweep/parallel_cached","mean_ns":5.0,"speedup_vs_serial":{speedup}}}]}}"#
            ))
            .unwrap()
        };
        let cfg = DiffConfig::default();
        assert!(diff_values(&mk(2.2), &mk(1.8), &cfg).unwrap().is_empty());
        let violations = diff_values(&mk(2.2), &mk(0.6), &cfg).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "mode sweep/parallel_cached speedup_vs_serial");
        // A mode vanishing is itself a regression.
        let gone: Value = serde_json::from_str(r#"{"modes":[]}"#).unwrap();
        let violations = diff_values(&mk(2.2), &gone, &cfg).unwrap();
        assert_eq!(violations[0].metric, "mode sweep/parallel_cached");
    }

    #[test]
    fn serve_bench_p99_ceiling_and_qps_floor() {
        let mk = |p99: f64, qps: f64| -> Value {
            serde_json::from_str(&format!(
                r#"{{"modes":[{{"name":"serve/batched","mean_ns":5.0,"speedup_vs_serial":2.5,
                     "p99_ns":{p99},"qps":{qps}}}]}}"#
            ))
            .unwrap()
        };
        let cfg = DiffConfig::default();
        // Mild drift on both axes passes.
        assert!(diff_values(&mk(2_000_000.0, 900.0), &mk(4_000_000.0, 700.0), &cfg)
            .unwrap()
            .is_empty());
        // Tail latency past the ceiling fails and names the mode.
        let violations =
            diff_values(&mk(2_000_000.0, 900.0), &mk(9_000_000.0, 900.0), &cfg).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "mode serve/batched p99_ns");
        // Throughput under the floor fails.
        let violations =
            diff_values(&mk(2_000_000.0, 900.0), &mk(2_000_000.0, 300.0), &cfg).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "mode serve/batched qps");
        // Thresholds are tunable like the speedup floor.
        let loose = DiffConfig {
            max_p99_ratio: 10.0,
            min_qps_ratio: 0.1,
            ..DiffConfig::default()
        };
        assert!(diff_values(&mk(2_000_000.0, 900.0), &mk(9_000_000.0, 300.0), &loose)
            .unwrap()
            .is_empty());
        // Reports without the serving fields are not penalized.
        let plain: Value = serde_json::from_str(
            r#"{"modes":[{"name":"serve/batched","mean_ns":5.0,"speedup_vs_serial":2.5}]}"#,
        )
        .unwrap();
        assert!(diff_values(&plain, &plain, &cfg).unwrap().is_empty());
        assert!(diff_values(&plain, &mk(2_000_000.0, 900.0), &cfg)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn live_section_gates_windowed_tail_and_rolling_qps() {
        let mk = |p99: f64, qps: f64| -> Value {
            serde_json::from_str(&format!(
                r#"{{"modes":[{{"name":"serve/batched","mean_ns":5.0}}],
                     "live":{{"windowed_p99_ns":{p99},"rolling_qps":{qps},"window_count":64}}}}"#
            ))
            .unwrap()
        };
        let cfg = DiffConfig::default();
        assert!(diff_values(&mk(2e6, 900.0), &mk(4e6, 700.0), &cfg)
            .unwrap()
            .is_empty());
        let violations = diff_values(&mk(2e6, 900.0), &mk(9e6, 900.0), &cfg).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "live windowed_p99_ns");
        let violations = diff_values(&mk(2e6, 900.0), &mk(2e6, 100.0), &cfg).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "live rolling_qps");
        // An empty window on either side (0) or a report without the
        // section never gates — garbage must not fail a build.
        assert!(diff_values(&mk(0.0, 0.0), &mk(9e6, 1.0), &cfg)
            .unwrap()
            .is_empty());
        assert!(diff_values(&mk(2e6, 900.0), &mk(0.0, 0.0), &cfg)
            .unwrap()
            .is_empty());
        let plain: Value =
            serde_json::from_str(r#"{"modes":[{"name":"serve/batched","mean_ns":5.0}]}"#).unwrap();
        assert!(diff_values(&plain, &mk(2e6, 900.0), &cfg).unwrap().is_empty());
        assert!(diff_values(&mk(2e6, 900.0), &plain, &cfg).unwrap().is_empty());
    }

    fn fleet(rounds0: u64, rounds1: u64, straggler: f64) -> Value {
        let fleet_rounds = rounds0 + rounds1;
        serde_json::from_str(&format!(
            r#"{{
              "schema_version": 4,
              "n_shards": 2,
              "straggler_ratio": {straggler},
              "fleet": {{
                "schema_version": 4,
                "caches": {{"embed": {{"hits": 100, "misses": 10, "hit_ratio": 0.9}}}},
                "phases": {{"grid.worker": {{"count": 2, "mean_ns": 1000000.0, "total_ns": 2000000}}}},
                "counters": {{"game.rounds.game1": {fleet_rounds}}}
              }},
              "shards": [
                {{"shard": 0, "wall_ns": 1000, "points": 4,
                  "report": {{"counters": {{"game.rounds.game1": {rounds0}}}}}}},
                {{"shard": 1, "wall_ns": 1200, "points": 4,
                  "report": {{"counters": {{"game.rounds.game1": {rounds1}}}}}}}
              ]
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn balanced_fleet_passes_and_is_detected() {
        let v = fleet(100, 110, 1.2);
        assert_eq!(detect_kind(&v).unwrap(), ReportKind::Fleet);
        assert!(diff_values(&v, &v, &DiffConfig::default())
            .unwrap()
            .is_empty());
        // Fleet vs plain RUNSTATS is not comparable.
        let rs = runstats(100, 0.9, 1_000_000.0);
        assert!(diff_values(&v, &rs, &DiffConfig::default()).is_err());
    }

    #[test]
    fn straggler_ceiling_gates_the_new_fleet() {
        let old = fleet(100, 110, 1.2);
        let new = fleet(100, 110, 5.0);
        let violations = diff_values(&old, &new, &DiffConfig::default()).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "fleet straggler_ratio");
        // The ceiling is tunable.
        let loose = DiffConfig {
            max_straggler_ratio: 6.0,
            ..DiffConfig::default()
        };
        assert!(diff_values(&old, &new, &loose).unwrap().is_empty());
    }

    #[test]
    fn shard_drift_outside_the_band_gates() {
        let old = fleet(100, 110, 1.2);
        // Shard 1 got starved: 4 rounds against shard 0's 206.
        let new = fleet(206, 4, 1.2);
        let violations = diff_values(&old, &new, &DiffConfig::default()).unwrap();
        assert!(
            violations
                .iter()
                .any(|v| v.metric == "shard 1 counter game.rounds.game1"),
            "{violations:?}"
        );
        // The fleet totals also diff like any RUNSTATS document.
        let collapsed = fleet(1, 1, 1.0);
        let violations = diff_values(&old, &collapsed, &DiffConfig::default()).unwrap();
        assert!(
            violations
                .iter()
                .any(|v| v.metric == "counter game.rounds.game1"),
            "{violations:?}"
        );
    }

    #[test]
    fn schema_version_handling() {
        let old = runstats(120, 0.9, 1_000_000.0);
        // Future schema: not comparable at all.
        let mut future = runstats(120, 0.9, 1_000_000.0);
        if let Value::Object(o) = &mut future {
            o.insert("schema_version".into(), Value::Number(99.0));
        }
        assert!(diff_values(&old, &future, &DiffConfig::default()).is_err());
        // Pre-versioned reports (schema 1) still compare.
        let mut v1 = runstats(120, 0.9, 1_000_000.0);
        if let Value::Object(o) = &mut v1 {
            o.remove("schema_version");
        }
        assert!(diff_values(&v1, &old, &DiffConfig::default())
            .unwrap()
            .is_empty());
        // Downgrading the writer is flagged.
        let violations = diff_values(&old, &v1, &DiffConfig::default()).unwrap();
        assert_eq!(violations[0].metric, "schema_version");
    }

    #[test]
    fn mismatched_or_unknown_documents_error() {
        let rs = runstats(1, 0.9, 1.0);
        let bench: Value = serde_json::from_str(r#"{"modes":[]}"#).unwrap();
        let junk: Value = serde_json::from_str(r#"{"x":1}"#).unwrap();
        assert!(diff_values(&rs, &bench, &DiffConfig::default()).is_err());
        assert!(diff_values(&junk, &junk, &DiffConfig::default()).is_err());
    }
}
