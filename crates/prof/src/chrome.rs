//! Chrome Trace Format export: renders a parsed [`Trace`] as a JSON
//! `traceEvents` document loadable in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing`.
//!
//! Spans become complete events (`"ph":"X"`) with microsecond `ts`/`dur`
//! derived from the open/close timestamps on the shared epoch clock (the
//! `Instant`-measured `dur_ns` rides along in `args`, so the authoritative
//! number survives the unit conversion). Pool `par_map`/`par_worker`
//! region events become `X` slices too — workers get a synthetic
//! `pool.w<i>` thread name — and warnings become instant events
//! (`"ph":"i"`).
//!
//! The output is deliberately deterministic — fixed field order, fixed
//! float formatting — so re-exporting an unchanged trace is byte-identical
//! (the property `yali-prof selfcheck` pins with a golden fixture).

use crate::trace::{SpanNode, Trace};

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds to the microsecond ticks Chrome Trace Format expects,
/// rendered with fixed precision so export is deterministic.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn span_event(s: &SpanNode, pid: u64, offset_ns: u64, out: &mut Vec<String>) {
    let mut args = format!("\"seq\":{},\"depth\":{},\"dur_ns\":{}", s.seq, s.depth, s.dur_ns);
    if let Some((trace_id, parent)) = s.ctx {
        args.push_str(&format!(
            ",\"trace\":\"{trace_id:#018x}\",\"parent\":\"{parent:#018x}\""
        ));
    }
    if let Some((k, v)) = &s.attr {
        args.push_str(&format!(",\"{}\":\"{}\"", esc(k), esc(v)));
    }
    out.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
        esc(&s.label),
        us(s.open_ns + offset_ns),
        us(s.close_ns.saturating_sub(s.open_ns)),
        pid,
        s.tid,
        args,
    ));
    for c in &s.children {
        span_event(c, pid, offset_ns, out);
    }
}

/// Renders one trace's events onto process lane `pid`, with every
/// timestamp shifted forward by `offset_ns` (0 for single-process export;
/// the per-process clock offset for `yali-prof merge`).
pub(crate) fn push_process_events(
    trace: &Trace,
    pid: u64,
    offset_ns: u64,
    events: &mut Vec<String>,
) {
    for root in &trace.roots {
        span_event(root, pid, offset_ns, events);
    }
    for r in &trace.regions {
        let t0 = r.fields.get("t0_ns").copied();
        let (name, dur) = match r.label.as_str() {
            "par_map" => ("par_map".to_string(), r.fields.get("wall_ns").copied()),
            "par_worker" => (
                format!("pool.w{}", r.fields.get("worker").copied().unwrap_or(0)),
                r.fields.get("busy_ns").copied(),
            ),
            other => (other.to_string(), None),
        };
        let mut args: Vec<String> = r
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", esc(k), v))
            .collect();
        if let Some((trace_id, parent)) = r.ctx {
            args.push(format!("\"trace\":\"{trace_id:#018x}\""));
            args.push(format!("\"parent\":\"{parent:#018x}\""));
        }
        args.sort();
        let args = args.join(",");
        match (t0, dur) {
            (Some(t0), Some(dur)) => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"pool\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
                esc(&name),
                us(t0 + offset_ns),
                us(dur),
                pid,
                r.tid,
                args,
            )),
            _ => events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"pool\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{{}}}}}",
                esc(&name),
                us(r.t_ns + offset_ns),
                pid,
                r.tid,
                args,
            )),
        }
    }
    for w in &trace.warns {
        events.push(format!(
            "{{\"name\":\"warn\",\"cat\":\"warn\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{\"msg\":\"{}\"}}}}",
            us(w.t_ns + offset_ns),
            pid,
            w.tid,
            esc(&w.msg),
        ));
    }
}

/// Wraps rendered events in the deterministic document envelope.
pub(crate) fn envelope(events: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the trace as a Chrome Trace Format JSON document (single
/// process: every event on lane `pid` 1, timestamps unshifted).
pub fn to_chrome(trace: &Trace) -> String {
    let mut events: Vec<String> = Vec::new();
    push_process_events(trace, 1, 0, &mut events);
    envelope(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_trace;

    #[test]
    fn exports_valid_chrome_trace_format() {
        let text = r#"
{"ev":"open","span":"root","tid":1,"seq":0,"depth":0,"t_ns":1000}
{"ev":"open","span":"child","tid":1,"seq":1,"depth":1,"t_ns":2000,"module":"0xab"}
{"ev":"close","span":"child","tid":1,"seq":1,"depth":1,"t_ns":3000,"dur_ns":1000,"module":"0xab"}
{"ev":"close","span":"root","tid":1,"seq":0,"depth":0,"t_ns":5000,"dur_ns":4000}
{"ev":"region","label":"par_worker","tid":7,"t_ns":4500,"worker":2,"t0_ns":2500,"busy_ns":2000,"items":4}
{"ev":"warn","tid":1,"t_ns":4900,"msg":"careful"}
"#;
        let trace = parse_trace(text.trim()).unwrap();
        let chrome = to_chrome(&trace);
        // The whole document parses as JSON and has the shape Perfetto
        // expects: a traceEvents array of objects with ph/ts/pid/tid.
        let v = serde_json::from_str(&chrome).expect("chrome export parses");
        let events = v["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), 4);
        for ev in events {
            assert!(ev["ph"].as_str().is_some(), "{ev:?}");
            assert!(ev["ts"].is_number(), "{ev:?}");
            assert!(ev["tid"].is_number(), "{ev:?}");
            assert!(ev["pid"].is_number(), "{ev:?}");
        }
        // Complete events carry dur in microseconds.
        assert_eq!(events[0]["name"], "root");
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["ts"].as_f64().unwrap(), 1.0);
        assert_eq!(events[0]["dur"].as_f64().unwrap(), 4.0);
        // The attr survives into args on the child span.
        assert_eq!(events[1]["args"]["module"], "0xab");
        // The worker slice lands on its own named slot.
        assert_eq!(events[2]["name"], "pool.w2");
        assert_eq!(events[2]["dur"].as_f64().unwrap(), 2.0);
        // Warnings become instants.
        assert_eq!(events[3]["ph"], "i");
    }

    #[test]
    fn export_is_deterministic() {
        let text = r#"
{"ev":"open","span":"a","tid":1,"seq":0,"depth":0,"t_ns":10}
{"ev":"close","span":"a","tid":1,"seq":0,"depth":0,"t_ns":20,"dur_ns":10}
"#;
        let trace = parse_trace(text.trim()).unwrap();
        assert_eq!(to_chrome(&trace), to_chrome(&trace));
        let reparsed = parse_trace(text.trim()).unwrap();
        assert_eq!(to_chrome(&trace), to_chrome(&reparsed));
    }
}
