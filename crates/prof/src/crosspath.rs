//! Cross-process critical path: what a client-observed request latency
//! was spent on, hop by hop, across the serve daemon.
//!
//! The serve protocol forwards each traced request's [`yali_obs::TraceContext`]
//! to the daemon, which echoes it on a `serve.job` region carrying the
//! per-hop decomposition of that request's time inside the server
//! (`queue_wait_ns`, `batch_fill_ns`, `infer_ns`, `reply_ns` — disjoint
//! by construction on the producer side). This module joins the two ends
//! by trace id: pick a `client.*` span (the slowest one, or the one named
//! with `--trace-id`), find the `serve.job` region sharing its trace id,
//! and attribute the client-observed duration to the server hops plus an
//! `unattributed` remainder (wire + client-side overhead; negative only
//! under clock skew between the two processes' `Instant` domains).

use crate::merge::MergedTrace;
use crate::profile::fmt_ns;

/// The server-side hop fields of a `serve.job` region, in pipeline order.
pub const HOP_ORDER: [&str; 4] = ["queue_wait_ns", "batch_fill_ns", "infer_ns", "reply_ns"];

/// One attributed hop of a request's cross-process path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Hop field name (`queue_wait_ns`, `batch_fill_ns`, ...).
    pub label: String,
    /// Time the request spent in this hop.
    pub dur_ns: u64,
}

/// A client request's latency joined with its server-side decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossPath {
    /// The shared distributed trace id.
    pub trace_id: u64,
    /// Label of the chosen client span (`client.request`, ...).
    pub client_label: String,
    /// Lane name of the process that ran the client span.
    pub client_process: String,
    /// The client-observed duration being decomposed.
    pub client_dur_ns: u64,
    /// Lane name of the process that emitted the matching `serve.job`.
    pub server_process: String,
    /// The server-side request id from the `serve.job` region, if stamped.
    pub req: Option<u64>,
    /// Server-side hops in [`HOP_ORDER`] (absent fields are skipped).
    pub hops: Vec<Hop>,
    /// Client duration minus the summed hops: wire time plus client-side
    /// overhead. Negative only under cross-process clock skew.
    pub unattributed_ns: i64,
}

/// Extracts the cross-process path of one request from a merged (or
/// single-capture) timeline. `want` filters to a specific trace id;
/// `None` picks the slowest context-carrying `client.*` span — the
/// request most worth explaining.
pub fn cross_path(m: &MergedTrace, want: Option<u64>) -> Result<CrossPath, String> {
    let mut client: Option<(u64, u64, String, String)> = None;
    for p in &m.processes {
        for s in p.trace.spans() {
            if !s.label.starts_with("client.") {
                continue;
            }
            let Some((trace_id, _)) = s.ctx else { continue };
            if want.is_some_and(|w| w != trace_id) {
                continue;
            }
            if client.as_ref().is_none_or(|(dur, ..)| s.dur_ns > *dur) {
                client = Some((s.dur_ns, trace_id, s.label.clone(), p.name.clone()));
            }
        }
    }
    let (client_dur_ns, trace_id, client_label, client_process) = client.ok_or_else(|| {
        match want {
            Some(w) => format!("no client.* span with trace id {w:#018x} in the trace"),
            None => "no client.* span carrying a trace context in the trace \
                     (was the client run with tracing on?)"
                .to_string(),
        }
    })?;

    let mut job = None;
    for p in &m.processes {
        for r in &p.trace.regions {
            if r.label == "serve.job" && r.ctx.map(|(t, _)| t) == Some(trace_id) {
                job = Some((r, p.name.clone()));
            }
        }
    }
    let (job, server_process) = job.ok_or_else(|| {
        format!(
            "no serve.job region with trace id {trace_id:#018x} — the server \
             side of this request was not captured (merge the server trace in?)"
        )
    })?;

    let hops: Vec<Hop> = HOP_ORDER
        .iter()
        .filter_map(|k| {
            job.fields.get(*k).map(|&dur_ns| Hop {
                label: k.trim_end_matches("_ns").to_string(),
                dur_ns,
            })
        })
        .collect();
    let attributed: u64 = hops.iter().map(|h| h.dur_ns).sum();
    Ok(CrossPath {
        trace_id,
        client_label,
        client_process,
        client_dur_ns,
        server_process,
        req: job.fields.get("req").copied(),
        hops,
        unattributed_ns: client_dur_ns as i64 - attributed as i64,
    })
}

/// Renders the cross-path as an indented text attribution table.
pub fn render_cross_path(cp: &CrossPath) -> String {
    let mut out = format!(
        "cross-process path for trace {:#018x}\n{} {} observed by {}\n  served by {}{}\n",
        cp.trace_id,
        cp.client_label,
        fmt_ns(cp.client_dur_ns),
        cp.client_process,
        cp.server_process,
        cp.req.map_or(String::new(), |r| format!(" (req {r})")),
    );
    let wall = cp.client_dur_ns.max(1);
    for hop in &cp.hops {
        out.push_str(&format!(
            "  {:<12} {:>12} {:>6.2}%\n",
            hop.label,
            fmt_ns(hop.dur_ns),
            100.0 * hop.dur_ns as f64 / wall as f64,
        ));
    }
    let (sign, mag) = if cp.unattributed_ns < 0 {
        ("-", cp.unattributed_ns.unsigned_abs())
    } else {
        ("", cp.unattributed_ns as u64)
    };
    out.push_str(&format!(
        "  {:<12} {:>12} {:>6.2}%  (wire + client overhead)\n",
        "unattributed",
        format!("{sign}{}", fmt_ns(mag)),
        100.0 * cp.unattributed_ns as f64 / wall as f64,
    ));
    out
}

/// Renders the cross-path as a deterministic JSON document (the
/// machine-readable twin of [`render_cross_path`]).
pub fn render_cross_path_json(cp: &CrossPath) -> String {
    let mut out = format!(
        "{{\"trace_id\":\"{:#018x}\",\"client\":{{\"label\":\"{}\",\"process\":\"{}\",\"dur_ns\":{}}},\"server\":{{\"process\":\"{}\"",
        cp.trace_id,
        crate::chrome::esc(&cp.client_label),
        crate::chrome::esc(&cp.client_process),
        cp.client_dur_ns,
        crate::chrome::esc(&cp.server_process),
    );
    if let Some(r) = cp.req {
        out.push_str(&format!(",\"req\":{r}"));
    }
    out.push_str("},\"hops\":[");
    for (i, hop) in cp.hops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"dur_ns\":{}}}",
            crate::chrome::esc(&hop.label),
            hop.dur_ns,
        ));
    }
    out.push_str(&format!(
        "],\"unattributed_ns\":{}}}\n",
        cp.unattributed_ns
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_traces;
    use crate::trace::parse_trace;

    fn fixture() -> MergedTrace {
        // Client capture: two requests, trace ids 0xa1 (100us) and 0xa2
        // (60us). Server capture: a serve.job per request with the hop
        // decomposition.
        let client = "\
{\"ev\":\"preamble\",\"tid\":1,\"t_ns\":0,\"pid\":10,\"role\":\"client\",\"unix_ns\":\"0x00000000000003e8\"}\n\
{\"ev\":\"open\",\"span\":\"client.request\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":1000,\"trace\":\"0x00000000000000a1\",\"parent\":\"0x0000000000000001\"}\n\
{\"ev\":\"close\",\"span\":\"client.request\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":101000,\"dur_ns\":100000}\n\
{\"ev\":\"open\",\"span\":\"client.request\",\"tid\":1,\"seq\":1,\"depth\":0,\"t_ns\":110000,\"trace\":\"0x00000000000000a2\",\"parent\":\"0x0000000000000002\"}\n\
{\"ev\":\"close\",\"span\":\"client.request\",\"tid\":1,\"seq\":1,\"depth\":0,\"t_ns\":170000,\"dur_ns\":60000}\n";
        let server = "\
{\"ev\":\"preamble\",\"tid\":1,\"t_ns\":0,\"pid\":20,\"role\":\"serve\",\"unix_ns\":\"0x00000000000003e8\"}\n\
{\"ev\":\"region\",\"label\":\"serve.job\",\"tid\":1,\"t_ns\":50000,\"trace\":\"0x00000000000000a1\",\"parent\":\"0x0000000000000001\",\"req\":7,\"rows\":1,\"queue_wait_ns\":30000,\"batch_fill_ns\":20000,\"infer_ns\":25000,\"reply_ns\":5000}\n\
{\"ev\":\"region\",\"label\":\"serve.job\",\"tid\":1,\"t_ns\":90000,\"trace\":\"0x00000000000000a2\",\"parent\":\"0x0000000000000002\",\"req\":8,\"rows\":1,\"queue_wait_ns\":10000,\"batch_fill_ns\":10000,\"infer_ns\":25000,\"reply_ns\":5000}\n";
        merge_traces(vec![
            ("client.jsonl".to_string(), parse_trace(client).unwrap()),
            ("server.jsonl".to_string(), parse_trace(server).unwrap()),
        ])
    }

    #[test]
    fn picks_the_slowest_client_span_and_joins_its_job() {
        let cp = cross_path(&fixture(), None).unwrap();
        assert_eq!(cp.trace_id, 0xa1);
        assert_eq!(cp.client_label, "client.request");
        assert_eq!(cp.client_dur_ns, 100_000);
        assert_eq!(cp.client_process, "client pid=10");
        assert_eq!(cp.server_process, "serve pid=20");
        assert_eq!(cp.req, Some(7));
        let labels: Vec<&str> = cp.hops.iter().map(|h| h.label.as_str()).collect();
        assert_eq!(labels, vec!["queue_wait", "batch_fill", "infer", "reply"]);
        // 100us client - (30+20+25+5)us server = 20us wire/client overhead.
        assert_eq!(cp.unattributed_ns, 20_000);
    }

    #[test]
    fn trace_id_filter_selects_a_specific_request() {
        let cp = cross_path(&fixture(), Some(0xa2)).unwrap();
        assert_eq!(cp.trace_id, 0xa2);
        assert_eq!(cp.client_dur_ns, 60_000);
        assert_eq!(cp.req, Some(8));
        assert_eq!(cp.unattributed_ns, 10_000);

        let err = cross_path(&fixture(), Some(0xff)).unwrap_err();
        assert!(err.contains("0x00000000000000ff"), "{err}");
    }

    #[test]
    fn renders_text_and_json_attribution() {
        let cp = cross_path(&fixture(), None).unwrap();
        let text = render_cross_path(&cp);
        assert!(text.contains("0x00000000000000a1"), "{text}");
        assert!(text.contains("queue_wait"), "{text}");
        assert!(text.contains("unattributed"), "{text}");
        assert!(text.contains("30.000us"), "{text}");

        let json = render_cross_path_json(&cp);
        let v: serde_json::Value = serde_json::from_str(&json).expect("cross-path json parses");
        assert_eq!(v["trace_id"].as_str().unwrap(), "0x00000000000000a1");
        assert_eq!(v["client"]["dur_ns"].as_u64().unwrap(), 100_000);
        assert_eq!(v["server"]["req"].as_u64().unwrap(), 7);
        assert_eq!(v["hops"].as_array().unwrap().len(), 4);
        assert_eq!(v["unattributed_ns"].as_u64().unwrap(), 20_000);
    }

    #[test]
    fn missing_ends_error_helpfully() {
        let lone = "\
{\"ev\":\"open\",\"span\":\"fit\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":1}\n\
{\"ev\":\"close\",\"span\":\"fit\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":2,\"dur_ns\":1}\n";
        let m = merge_traces(vec![("x.jsonl".to_string(), parse_trace(lone).unwrap())]);
        let err = cross_path(&m, None).unwrap_err();
        assert!(err.contains("no client."), "{err}");

        let client_only = "\
{\"ev\":\"open\",\"span\":\"client.request\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":1,\"trace\":\"0x00000000000000a1\",\"parent\":\"0x0000000000000001\"}\n\
{\"ev\":\"close\",\"span\":\"client.request\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":2,\"dur_ns\":1}\n";
        let m = merge_traces(vec![(
            "c.jsonl".to_string(),
            parse_trace(client_only).unwrap(),
        )]);
        let err = cross_path(&m, None).unwrap_err();
        assert!(err.contains("serve.job"), "{err}");
    }
}
