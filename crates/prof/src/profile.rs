//! Flamegraph-style aggregation over reconstructed span trees: per-label
//! **self vs. total** time, and the **critical path** through the deepest
//! nesting of a run's most expensive root span.
//!
//! Self time is the flamegraph invariant: a span's duration minus the
//! durations of its direct children. Summed over every span of a tree the
//! children's contributions telescope away, so the self-time total of a
//! trace equals the summed wall time of its root spans (up to the clamping
//! of negative self times, which only occur on sub-microsecond clock skew
//! between a parent's and its children's independent `Instant` reads).

use std::collections::BTreeMap;

use crate::trace::{SpanNode, Trace};

/// Aggregated timings for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelProfile {
    /// The span label.
    pub label: String,
    /// Spans with this label.
    pub count: u64,
    /// Summed duration (time with this label anywhere on the stack edge —
    /// a parent's total includes its children).
    pub total_ns: u64,
    /// Summed self time (duration minus direct children).
    pub self_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// A whole-trace profile: per-label rows plus the root wall time they
/// must account for.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// One row per label, sorted by descending self time (ties by label).
    pub labels: Vec<LabelProfile>,
    /// Summed duration of every root span — the wall time the self-time
    /// column decomposes.
    pub root_wall_ns: u64,
}

impl Profile {
    /// Summed self time across every label (equals [`Profile::root_wall_ns`]
    /// up to clamping).
    pub fn self_total_ns(&self) -> u64 {
        self.labels.iter().map(|l| l.self_ns).sum()
    }
}

/// Builds the per-label self/total profile of a trace.
pub fn profile(trace: &Trace) -> Profile {
    let mut by_label: BTreeMap<&str, LabelProfile> = BTreeMap::new();
    fn walk<'a>(node: &'a SpanNode, by_label: &mut BTreeMap<&'a str, LabelProfile>) {
        let row = by_label
            .entry(node.label.as_str())
            .or_insert_with(|| LabelProfile {
                label: node.label.clone(),
                count: 0,
                total_ns: 0,
                self_ns: 0,
                max_ns: 0,
            });
        row.count += 1;
        row.total_ns += node.dur_ns;
        row.self_ns += node.self_ns();
        row.max_ns = row.max_ns.max(node.dur_ns);
        for c in &node.children {
            walk(c, by_label);
        }
    }
    for root in &trace.roots {
        walk(root, &mut by_label);
    }
    let mut labels: Vec<LabelProfile> = by_label.into_values().collect();
    labels.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.label.cmp(&b.label)));
    Profile {
        labels,
        root_wall_ns: trace.roots.iter().map(|r| r.dur_ns).sum(),
    }
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the `--top N` text profile: the N labels with the most self
/// time, with their share of the root wall time, plus an accounting
/// footer.
pub fn render_top(p: &Profile, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12} {:>7}\n",
        "span", "count", "total", "self", "max", "self%"
    ));
    let wall = p.root_wall_ns.max(1);
    for row in p.labels.iter().take(n) {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12} {:>12} {:>12} {:>6.2}%\n",
            row.label,
            row.count,
            fmt_ns(row.total_ns),
            fmt_ns(row.self_ns),
            fmt_ns(row.max_ns),
            100.0 * row.self_ns as f64 / wall as f64,
        ));
    }
    if p.labels.len() > n {
        out.push_str(&format!("... {} more label(s)\n", p.labels.len() - n));
    }
    out.push_str(&format!(
        "self-time total {} of root wall {}\n",
        fmt_ns(p.self_total_ns()),
        fmt_ns(p.root_wall_ns),
    ));
    out
}

/// Renders the `--top N` profile as a deterministic JSON document (the
/// machine-readable twin of [`render_top`], for scripts and CI gates):
/// `{"root_wall_ns":..,"self_total_ns":..,"labels":[{...}, ...]}` with
/// the same descending-self-time order and N-row truncation.
pub fn render_top_json(p: &Profile, n: usize) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"root_wall_ns\":{},\"self_total_ns\":{},\"n_labels\":{},\"labels\":[",
        p.root_wall_ns,
        p.self_total_ns(),
        p.labels.len(),
    ));
    for (i, row) in p.labels.iter().take(n).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{}}}",
            crate::chrome::esc(&row.label),
            row.count,
            row.total_ns,
            row.self_ns,
            row.max_ns,
        ));
    }
    out.push_str("]}\n");
    out
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// The span label at this step.
    pub label: String,
    /// Nesting depth (0 = the chosen root).
    pub depth: u64,
    /// The span's duration.
    pub dur_ns: u64,
    /// The span's self time.
    pub self_ns: u64,
}

/// Extracts the critical path of the trace: starting from the most
/// expensive root span (the game-phase root of a run), repeatedly descend
/// into the most expensive child. The result is the chain of spans that
/// bounds the run's wall time — shortening anything off this path cannot
/// make the run faster than the path itself.
pub fn critical_path(trace: &Trace) -> Vec<CriticalStep> {
    let mut path = Vec::new();
    let Some(mut node) = trace.roots.iter().max_by_key(|r| r.dur_ns) else {
        return path;
    };
    loop {
        path.push(CriticalStep {
            label: node.label.clone(),
            depth: node.depth,
            dur_ns: node.dur_ns,
            self_ns: node.self_ns(),
        });
        match node.children.iter().max_by_key(|c| c.dur_ns) {
            Some(next) => node = next,
            None => return path,
        }
    }
}

/// Renders the critical path as an indented text chain.
pub fn render_critical_path(path: &[CriticalStep]) -> String {
    if path.is_empty() {
        return "trace has no spans\n".to_string();
    }
    let mut out = String::new();
    let total = path[0].dur_ns.max(1);
    out.push_str("critical path (most expensive child at every level):\n");
    for (i, step) in path.iter().enumerate() {
        out.push_str(&format!(
            "{:indent$}{} {} (self {}, {:.1}% of path root)\n",
            "",
            step.label,
            fmt_ns(step.dur_ns),
            fmt_ns(step.self_ns),
            100.0 * step.dur_ns as f64 / total as f64,
            indent = i * 2,
        ));
    }
    out
}

/// Renders the critical path as a deterministic JSON document (the
/// machine-readable twin of [`render_critical_path`]).
pub fn render_critical_path_json(path: &[CriticalStep]) -> String {
    let mut out = String::from("{\"steps\":[");
    for (i, step) in path.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"depth\":{},\"dur_ns\":{},\"self_ns\":{}}}",
            crate::chrome::esc(&step.label),
            step.depth,
            step.dur_ns,
            step.self_ns,
        ));
    }
    out.push_str(&format!(
        "],\"root_dur_ns\":{}}}\n",
        path.first().map_or(0, |s| s.dur_ns)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_trace;

    fn sample_trace() -> Trace {
        // root(1000) { fit(600) { gemm(200), gemm(100) }, infer(250) }
        let text = r#"
{"ev":"open","span":"root","tid":1,"seq":0,"depth":0,"t_ns":0}
{"ev":"open","span":"fit","tid":1,"seq":1,"depth":1,"t_ns":100}
{"ev":"open","span":"gemm","tid":1,"seq":2,"depth":2,"t_ns":150}
{"ev":"close","span":"gemm","tid":1,"seq":2,"depth":2,"t_ns":350,"dur_ns":200}
{"ev":"open","span":"gemm","tid":1,"seq":3,"depth":2,"t_ns":400}
{"ev":"close","span":"gemm","tid":1,"seq":3,"depth":2,"t_ns":500,"dur_ns":100}
{"ev":"close","span":"fit","tid":1,"seq":1,"depth":1,"t_ns":700,"dur_ns":600}
{"ev":"open","span":"infer","tid":1,"seq":4,"depth":1,"t_ns":710}
{"ev":"close","span":"infer","tid":1,"seq":4,"depth":1,"t_ns":960,"dur_ns":250}
{"ev":"close","span":"root","tid":1,"seq":0,"depth":0,"t_ns":1000,"dur_ns":1000}
"#;
        parse_trace(text.trim()).unwrap()
    }

    #[test]
    fn self_times_telescope_to_the_root_wall() {
        let p = profile(&sample_trace());
        assert_eq!(p.root_wall_ns, 1000);
        assert_eq!(p.self_total_ns(), 1000);
        let get = |name: &str| p.labels.iter().find(|l| l.label == name).unwrap();
        assert_eq!(get("root").self_ns, 150); // 1000 - 600 - 250
        assert_eq!(get("root").total_ns, 1000);
        assert_eq!(get("fit").self_ns, 300); // 600 - 200 - 100
        assert_eq!(get("gemm").self_ns, 300);
        assert_eq!(get("gemm").count, 2);
        assert_eq!(get("gemm").max_ns, 200);
        assert_eq!(get("infer").self_ns, 250);
    }

    #[test]
    fn labels_sort_by_descending_self_time() {
        let p = profile(&sample_trace());
        let selfs: Vec<u64> = p.labels.iter().map(|l| l.self_ns).collect();
        let mut sorted = selfs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(selfs, sorted);
    }

    #[test]
    fn render_top_truncates_and_accounts() {
        let p = profile(&sample_trace());
        let text = render_top(&p, 2);
        assert!(text.contains("more label(s)"), "{text}");
        assert!(text.contains("self-time total"), "{text}");
        let full = render_top(&p, 10);
        assert!(full.contains("root"), "{full}");
        assert!(full.contains("gemm"), "{full}");
    }

    #[test]
    fn critical_path_follows_the_heaviest_children() {
        let path = critical_path(&sample_trace());
        let labels: Vec<&str> = path.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["root", "fit", "gemm"]);
        assert_eq!(path[2].dur_ns, 200); // the heavier of the two gemms
        let text = render_critical_path(&path);
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn json_renderers_mirror_the_text_ones() {
        let p = profile(&sample_trace());
        let v: serde_json::Value =
            serde_json::from_str(&render_top_json(&p, 2)).expect("top json parses");
        assert_eq!(v["root_wall_ns"].as_u64().unwrap(), 1000);
        assert_eq!(v["self_total_ns"].as_u64().unwrap(), 1000);
        assert_eq!(v["n_labels"].as_u64().unwrap(), 4);
        let rows = v["labels"].as_array().unwrap();
        assert_eq!(rows.len(), 2, "truncated to the requested top N");
        assert_eq!(rows[0]["self_ns"].as_u64().unwrap(), p.labels[0].self_ns);

        let path = critical_path(&sample_trace());
        let v: serde_json::Value =
            serde_json::from_str(&render_critical_path_json(&path)).expect("path json parses");
        let steps = v["steps"].as_array().unwrap();
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0]["label"].as_str().unwrap(), "root");
        assert_eq!(v["root_dur_ns"].as_u64().unwrap(), 1000);
        let empty: serde_json::Value =
            serde_json::from_str(&render_critical_path_json(&[])).unwrap();
        assert_eq!(empty["root_dur_ns"].as_u64().unwrap(), 0);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let t = parse_trace("").unwrap();
        let p = profile(&t);
        assert!(p.labels.is_empty());
        assert_eq!(p.root_wall_ns, 0);
        assert!(critical_path(&t).is_empty());
        assert!(render_critical_path(&[]).contains("no spans"));
    }
}
