//! The trace model: a strict parser from the `yali-obs` JSONL span schema
//! to reconstructed per-thread span trees.
//!
//! The producer side (`yali_obs::span`) guarantees stack discipline per
//! thread — RAII guards drop LIFO — and stamps every open/close pair with
//! a per-thread monotone sequence id and its nesting depth. This parser
//! holds the producer to that contract: any unbalanced close, out-of-order
//! sequence id, depth mismatch, or malformed line is rejected with the
//! 1-based line number where the trace went wrong. A trace that parses is
//! therefore unambiguously reconstructible; every analysis downstream
//! (profiles, critical paths, exports) works on the [`Trace`] built here
//! and never re-reads the raw text.

use std::collections::BTreeMap;

use serde_json::Value;

/// A parse or validation error, carrying the 1-based line number of the
/// offending event (0 means end-of-input, e.g. a span left open).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line of the offending event; 0 for end-of-input errors.
    pub line: usize,
    /// What was wrong.
    pub msg: String,
}

impl TraceError {
    fn new(line: usize, msg: impl Into<String>) -> TraceError {
        TraceError {
            line,
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "trace error at end of input: {}", self.msg)
        } else {
            write!(f, "trace error at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for TraceError {}

/// One reconstructed span: an open/close pair plus every span nested
/// inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span label (`game.round`, `embed.batch`, …).
    pub label: String,
    /// Thread that ran the span.
    pub tid: u64,
    /// Per-thread monotone open sequence id.
    pub seq: u64,
    /// Nesting depth at open (0 = a root span of its thread).
    pub depth: u64,
    /// Open timestamp, nanoseconds on the shared process epoch clock.
    pub open_ns: u64,
    /// Close timestamp on the same clock.
    pub close_ns: u64,
    /// Measured duration from the close event (monotonic `Instant`
    /// elapsed — the authoritative wall time of the span).
    pub dur_ns: u64,
    /// The optional attribute carried on both events (key, rendered value).
    pub attr: Option<(String, String)>,
    /// Distributed trace context from the open event: `(trace_id,
    /// parent_span)` parsed from the `trace`/`parent` hex fields. `None`
    /// for spans opened with no context installed.
    pub ctx: Option<(u64, u64)>,
    /// Spans nested directly inside this one, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration minus the duration of direct children: the time this span
    /// spent in its own code (clamped at 0 against clock skew between the
    /// parent's and children's independent `Instant` reads).
    pub fn self_ns(&self) -> u64 {
        self.dur_ns
            .saturating_sub(self.children.iter().map(|c| c.dur_ns).sum())
    }
}

/// One `region` event (e.g. the pool's `par_map` / `par_worker` reports):
/// a label, the emitting thread, a timestamp, and free-form numeric
/// fields.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionEvent {
    /// Region label (`par_map`, `par_worker`, …).
    pub label: String,
    /// Thread that emitted the event.
    pub tid: u64,
    /// Emission timestamp on the process epoch clock.
    pub t_ns: u64,
    /// Every numeric payload field (`wall_ns`, `busy_ns`, `worker`, …).
    pub fields: BTreeMap<String, u64>,
    /// Distributed trace context, when the region was emitted with one
    /// installed (`trace`/`parent` hex fields).
    pub ctx: Option<(u64, u64)>,
    /// 1-based source line in the JSONL file.
    pub line: usize,
}

/// The `{"ev":"preamble",...}` line `yali-obs` stamps when a trace sink
/// attaches: process identity plus the clock handshake `yali-prof merge`
/// aligns timelines with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Preamble {
    /// Thread that attached the sink.
    pub tid: u64,
    /// Process-epoch nanoseconds at emission (one half of the handshake).
    pub t_ns: u64,
    /// Operating-system process id.
    pub pid: u64,
    /// Declared role (`serve`, `worker`, `client`, `main`, …).
    pub role: String,
    /// Shard index, for `yali-grid` workers.
    pub shard: Option<u64>,
    /// Wall-clock nanoseconds since the Unix epoch sampled at the same
    /// instant as `t_ns` (the other half of the handshake; parsed from a
    /// hex string — the value exceeds 2^53).
    pub unix_ns: u64,
    /// 1-based source line in the JSONL file.
    pub line: usize,
}

/// One `warn` event.
#[derive(Debug, Clone, PartialEq)]
pub struct WarnEvent {
    /// Thread that warned.
    pub tid: u64,
    /// Emission timestamp on the process epoch clock.
    pub t_ns: u64,
    /// The warning text.
    pub msg: String,
}

/// A fully parsed and validated trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Top-level spans of every thread, ordered by open timestamp (ties
    /// broken by thread id, then sequence id).
    pub roots: Vec<SpanNode>,
    /// Every `region` event, in file order.
    pub regions: Vec<RegionEvent>,
    /// Every `warn` event, in file order.
    pub warns: Vec<WarnEvent>,
    /// Flight-recorder dump meta lines (`{"ev":"recorder",...}`), in file
    /// order; carries the dump's kept/dropped/repair accounting as
    /// free-form numeric fields. Ignored by profile/timeline/export.
    pub recorder: Vec<RegionEvent>,
    /// Preamble lines in file order (one per process that wrote into the
    /// file; plain single-process captures carry exactly one, streamed
    /// captures from before the preamble was introduced carry none).
    pub preambles: Vec<Preamble>,
    /// Total events parsed (spans count their open and close separately).
    pub n_events: usize,
    /// Total reconstructed spans.
    pub n_spans: usize,
}

impl Trace {
    /// Thread ids that opened at least one span, ascending.
    pub fn tids(&self) -> Vec<u64> {
        let mut tids: Vec<u64> = Vec::new();
        fn walk(node: &SpanNode, tids: &mut Vec<u64>) {
            tids.push(node.tid);
            for c in &node.children {
                walk(c, tids);
            }
        }
        for r in &self.roots {
            walk(r, &mut tids);
        }
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Every span in open order (depth-first over [`Trace::roots`]).
    pub fn spans(&self) -> Vec<&SpanNode> {
        let mut out = Vec::with_capacity(self.n_spans);
        fn walk<'a>(node: &'a SpanNode, out: &mut Vec<&'a SpanNode>) {
            out.push(node);
            for c in &node.children {
                walk(c, out);
            }
        }
        for r in &self.roots {
            walk(r, &mut out);
        }
        out
    }
}

/// A span opened but not yet closed during parsing.
struct PendingSpan {
    label: String,
    seq: u64,
    depth: u64,
    open_ns: u64,
    attr: Option<(String, String)>,
    ctx: Option<(u64, u64)>,
    line: usize,
    children: Vec<SpanNode>,
}

/// Per-thread parser state: the open-span stack and the last open seq.
#[derive(Default)]
struct ThreadState {
    stack: Vec<PendingSpan>,
    last_seq: Option<u64>,
}

fn field_u64(v: &Value, key: &str, line: usize) -> Result<u64, TraceError> {
    v.get(key)
        .as_u64()
        .ok_or_else(|| TraceError::new(line, format!("missing or non-integer field {key:?}")))
}

fn field_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, TraceError> {
    v.get(key)
        .as_str()
        .ok_or_else(|| TraceError::new(line, format!("missing or non-string field {key:?}")))
}

/// Parses a `"0x..."` hex-string field (how the sink renders u64 values
/// that may exceed 2^53, the exact-integer range of JSON doubles).
fn field_hex(v: &Value, key: &str, line: usize) -> Result<u64, TraceError> {
    let s = field_str(v, key, line)?;
    s.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| {
            TraceError::new(line, format!("field {key:?} is not a \"0x...\" hex string"))
        })
}

/// Extracts the optional distributed trace context: the `trace`/`parent`
/// hex fields must appear together or not at all.
fn extract_ctx(v: &Value, line: usize) -> Result<Option<(u64, u64)>, TraceError> {
    let has_trace = !matches!(v.get("trace"), Value::Null);
    let has_parent = !matches!(v.get("parent"), Value::Null);
    match (has_trace, has_parent) {
        (false, false) => Ok(None),
        (true, true) => Ok(Some((
            field_hex(v, "trace", line)?,
            field_hex(v, "parent", line)?,
        ))),
        _ => Err(TraceError::new(
            line,
            "trace context must carry both \"trace\" and \"parent\" or neither",
        )),
    }
}

/// Renders an attribute value the way the sink wrote it (hex attrs are
/// strings already; numbers print in decimal).
fn render_attr(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) if n.fract() == 0.0 => format!("{}", *n as i64),
        Value::Number(n) => format!("{n}"),
        Value::Bool(b) => format!("{b}"),
        other => format!("{other:?}"),
    }
}

/// Extracts the single optional attribute: any key outside `known`.
fn extract_attr(
    obj: &BTreeMap<String, Value>,
    known: &[&str],
    line: usize,
) -> Result<Option<(String, String)>, TraceError> {
    let mut attr = None;
    for (k, v) in obj {
        if known.contains(&k.as_str()) {
            continue;
        }
        if attr.is_some() {
            return Err(TraceError::new(
                line,
                format!("more than one attribute on event (extra key {k:?})"),
            ));
        }
        attr = Some((k.clone(), render_attr(v)));
    }
    Ok(attr)
}

/// Parses a JSONL trace capture into a validated [`Trace`].
///
/// Strictness, in order of checking per line: the line must be a JSON
/// object with a known `ev` kind; required fields must be present with
/// the right types; span opens must carry a strictly increasing per-thread
/// `seq` and a `depth` equal to the thread's current nesting; span closes
/// must match the innermost open span of their thread in label and `seq`,
/// and echo its attribute if both carry one. At end of input every opened
/// span must have closed.
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut threads: BTreeMap<u64, ThreadState> = BTreeMap::new();
    let mut trace = Trace::default();
    let mut closed_roots: Vec<SpanNode> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(raw)
            .map_err(|e| TraceError::new(line, format!("invalid JSON: {e}")))?;
        let obj = v
            .as_object()
            .ok_or_else(|| TraceError::new(line, "event is not a JSON object"))?;
        trace.n_events += 1;
        match field_str(&v, "ev", line)? {
            "open" => {
                let label = field_str(&v, "span", line)?.to_string();
                let tid = field_u64(&v, "tid", line)?;
                let seq = field_u64(&v, "seq", line)?;
                let depth = field_u64(&v, "depth", line)?;
                let open_ns = field_u64(&v, "t_ns", line)?;
                let ctx = extract_ctx(&v, line)?;
                let attr = extract_attr(
                    obj,
                    &["ev", "span", "tid", "seq", "depth", "t_ns", "trace", "parent"],
                    line,
                )?;
                let st = threads.entry(tid).or_default();
                if let Some(last) = st.last_seq {
                    if seq <= last {
                        return Err(TraceError::new(
                            line,
                            format!(
                                "out-of-order open on tid {tid}: seq {seq} after seq {last} \
                                 (per-thread sequence ids must be strictly increasing)"
                            ),
                        ));
                    }
                }
                st.last_seq = Some(seq);
                if depth != st.stack.len() as u64 {
                    return Err(TraceError::new(
                        line,
                        format!(
                            "depth mismatch on tid {tid}: open of {label:?} claims depth \
                             {depth} but {} span(s) are open",
                            st.stack.len()
                        ),
                    ));
                }
                st.stack.push(PendingSpan {
                    label,
                    seq,
                    depth,
                    open_ns,
                    attr,
                    ctx,
                    line,
                    children: Vec::new(),
                });
            }
            "close" => {
                let label = field_str(&v, "span", line)?;
                let tid = field_u64(&v, "tid", line)?;
                let seq = field_u64(&v, "seq", line)?;
                let depth = field_u64(&v, "depth", line)?;
                let close_ns = field_u64(&v, "t_ns", line)?;
                let dur_ns = field_u64(&v, "dur_ns", line)?;
                let attr = extract_attr(
                    obj,
                    &["ev", "span", "tid", "seq", "depth", "t_ns", "dur_ns", "trace", "parent"],
                    line,
                )?;
                let st = threads.entry(tid).or_default();
                let open = st.stack.pop().ok_or_else(|| {
                    TraceError::new(
                        line,
                        format!("unbalanced close of {label:?} on tid {tid}: no span is open"),
                    )
                })?;
                if open.label != label || open.seq != seq {
                    return Err(TraceError::new(
                        line,
                        format!(
                            "close of {label:?} (seq {seq}) on tid {tid} does not match the \
                             innermost open span {:?} (seq {}, opened at line {})",
                            open.label, open.seq, open.line
                        ),
                    ));
                }
                if depth != open.depth {
                    return Err(TraceError::new(
                        line,
                        format!(
                            "depth mismatch on tid {tid}: close of {label:?} claims depth \
                             {depth} but its open (line {}) was at depth {}",
                            open.line, open.depth
                        ),
                    ));
                }
                if let (Some(oa), Some(ca)) = (&open.attr, &attr) {
                    if oa != ca {
                        return Err(TraceError::new(
                            line,
                            format!(
                                "attribute mismatch on tid {tid}: close carries {ca:?} but \
                                 the open (line {}) carried {oa:?}",
                                open.line
                            ),
                        ));
                    }
                }
                let node = SpanNode {
                    label: open.label,
                    tid,
                    seq: open.seq,
                    depth: open.depth,
                    open_ns: open.open_ns,
                    close_ns,
                    dur_ns,
                    attr: open.attr.or(attr),
                    ctx: open.ctx,
                    children: open.children,
                };
                trace.n_spans += 1;
                match st.stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => closed_roots.push(node),
                }
            }
            "region" => {
                let label = field_str(&v, "label", line)?.to_string();
                let tid = field_u64(&v, "tid", line)?;
                let t_ns = field_u64(&v, "t_ns", line)?;
                let ctx = extract_ctx(&v, line)?;
                let mut fields = BTreeMap::new();
                for (k, fv) in obj {
                    if matches!(k.as_str(), "ev" | "label" | "tid" | "t_ns" | "trace" | "parent") {
                        continue;
                    }
                    let n = fv.as_u64().ok_or_else(|| {
                        TraceError::new(
                            line,
                            format!("region field {k:?} is not a non-negative integer"),
                        )
                    })?;
                    fields.insert(k.clone(), n);
                }
                trace.regions.push(RegionEvent {
                    label,
                    tid,
                    t_ns,
                    fields,
                    ctx,
                    line,
                });
            }
            // The identity + clock-handshake line yali-obs stamps when a
            // trace sink attaches (see `Preamble`).
            "preamble" => {
                let shard = match v.get("shard") {
                    Value::Null => None,
                    _ => Some(field_u64(&v, "shard", line)?),
                };
                trace.preambles.push(Preamble {
                    tid: field_u64(&v, "tid", line)?,
                    t_ns: field_u64(&v, "t_ns", line)?,
                    pid: field_u64(&v, "pid", line)?,
                    role: field_str(&v, "role", line)?.to_string(),
                    shard,
                    unix_ns: field_hex(&v, "unix_ns", line)?,
                    line,
                });
            }
            "warn" => {
                trace.warns.push(WarnEvent {
                    tid: field_u64(&v, "tid", line)?,
                    t_ns: field_u64(&v, "t_ns", line)?,
                    msg: field_str(&v, "msg", line)?.to_string(),
                });
            }
            // The flight recorder prefixes its dumps with one meta line
            // describing what the dump kept and repaired (events, dropped,
            // orphan_closes, ...). Shaped like a labelless region: tid,
            // t_ns, and free-form numeric fields.
            "recorder" => {
                let tid = field_u64(&v, "tid", line)?;
                let t_ns = field_u64(&v, "t_ns", line)?;
                let mut fields = BTreeMap::new();
                for (k, fv) in obj {
                    if matches!(k.as_str(), "ev" | "tid" | "t_ns") {
                        continue;
                    }
                    let n = fv.as_u64().ok_or_else(|| {
                        TraceError::new(
                            line,
                            format!("recorder field {k:?} is not a non-negative integer"),
                        )
                    })?;
                    fields.insert(k.clone(), n);
                }
                trace.recorder.push(RegionEvent {
                    label: "recorder".to_string(),
                    tid,
                    t_ns,
                    fields,
                    ctx: None,
                    line,
                });
            }
            other => {
                return Err(TraceError::new(
                    line,
                    format!("unknown event kind {other:?}"),
                ));
            }
        }
    }

    for (tid, st) in &threads {
        if let Some(open) = st.stack.last() {
            return Err(TraceError::new(
                0,
                format!(
                    "span {:?} on tid {tid} (opened at line {}) was never closed",
                    open.label, open.line
                ),
            ));
        }
    }

    closed_roots.sort_by_key(|s| (s.open_ns, s.tid, s.seq));
    trace.roots = closed_roots;
    Ok(trace)
}

/// Reads and parses a trace file (convenience wrapper over
/// [`parse_trace`]).
pub fn parse_trace_file(path: &str) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    parse_trace(&text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(span: &str, tid: u64, seq: u64, depth: u64, t: u64) -> String {
        format!(
            r#"{{"ev":"open","span":"{span}","tid":{tid},"seq":{seq},"depth":{depth},"t_ns":{t}}}"#
        )
    }

    fn close(span: &str, tid: u64, seq: u64, depth: u64, t: u64, dur: u64) -> String {
        format!(
            r#"{{"ev":"close","span":"{span}","tid":{tid},"seq":{seq},"depth":{depth},"t_ns":{t},"dur_ns":{dur}}}"#
        )
    }

    #[test]
    fn parses_nested_spans_into_a_tree() {
        let text = [
            open("root", 1, 0, 0, 100),
            open("child", 1, 1, 1, 200),
            close("child", 1, 1, 1, 300, 100),
            open("child", 1, 2, 1, 350),
            close("child", 1, 2, 1, 450, 100),
            close("root", 1, 0, 0, 500, 400),
        ]
        .join("\n");
        let t = parse_trace(&text).unwrap();
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.n_spans, 3);
        let root = &t.roots[0];
        assert_eq!(root.label, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.self_ns(), 200);
        assert_eq!(root.children[0].seq, 1);
        assert_eq!(root.children[1].seq, 2);
        assert_eq!(t.tids(), vec![1]);
        assert_eq!(t.spans().len(), 3);
    }

    #[test]
    fn interleaved_threads_reconstruct_independently() {
        let text = [
            open("a", 1, 0, 0, 10),
            open("b", 2, 0, 0, 20),
            close("b", 2, 0, 0, 40, 20),
            close("a", 1, 0, 0, 50, 40),
        ]
        .join("\n");
        let t = parse_trace(&text).unwrap();
        assert_eq!(t.roots.len(), 2);
        assert_eq!(t.roots[0].label, "a"); // earlier open first
        assert_eq!(t.roots[1].label, "b");
        assert_eq!(t.tids(), vec![1, 2]);
    }

    #[test]
    fn attr_is_carried_and_checked_on_both_ends() {
        let text = [
            r#"{"ev":"open","span":"e","tid":1,"seq":0,"depth":0,"t_ns":1,"module":"0xab"}"#
                .to_string(),
            r#"{"ev":"close","span":"e","tid":1,"seq":0,"depth":0,"t_ns":2,"dur_ns":1,"module":"0xab"}"#
                .to_string(),
        ]
        .join("\n");
        let t = parse_trace(&text).unwrap();
        assert_eq!(
            t.roots[0].attr,
            Some(("module".to_string(), "0xab".to_string()))
        );

        let bad = text.replace(r#""dur_ns":1,"module":"0xab""#, r#""dur_ns":1,"module":"0xcd""#);
        let err = parse_trace(&bad).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("attribute mismatch"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_and_out_of_order_events_with_line_numbers() {
        // Close without an open.
        let err = parse_trace(&close("x", 1, 0, 0, 10, 5)).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("unbalanced close"), "{err}");

        // Open never closed.
        let err = parse_trace(&open("x", 1, 0, 0, 10)).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.msg.contains("never closed"), "{err}");

        // Non-monotone per-thread seq.
        let text = [
            open("a", 1, 5, 0, 10),
            close("a", 1, 5, 0, 20, 10),
            open("b", 1, 5, 0, 30),
            close("b", 1, 5, 0, 40, 10),
        ]
        .join("\n");
        let err = parse_trace(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("out-of-order"), "{err}");

        // Close of the wrong span.
        let text = [
            open("a", 1, 0, 0, 10),
            open("b", 1, 1, 1, 20),
            close("a", 1, 0, 1, 30, 20),
        ]
        .join("\n");
        let err = parse_trace(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.msg.contains("does not match"), "{err}");

        // Depth that disagrees with the open stack.
        let err = parse_trace(&open("a", 1, 0, 3, 10)).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("depth mismatch"), "{err}");
    }

    #[test]
    fn rejects_malformed_lines_and_unknown_kinds() {
        let err = parse_trace("not json").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.msg.contains("invalid JSON"), "{err}");

        let err = parse_trace(r#"{"ev":"explode","tid":1}"#).unwrap_err();
        assert!(err.msg.contains("unknown event kind"), "{err}");

        let err = parse_trace(r#"{"ev":"open","span":"x","tid":1}"#).unwrap_err();
        assert!(err.msg.contains("seq"), "{err}");

        let err = parse_trace("[1,2]").unwrap_err();
        assert!(err.msg.contains("not a JSON object"), "{err}");
    }

    #[test]
    fn regions_and_warns_pass_through() {
        let text = [
            r#"{"ev":"region","label":"par_map","tid":1,"t_ns":100,"wall_ns":50,"busy_ns":40,"workers":2,"items":8,"t0_ns":50}"#,
            r#"{"ev":"region","label":"par_worker","tid":7,"t_ns":90,"worker":0,"t0_ns":55,"busy_ns":35,"items":4}"#,
            r#"{"ev":"warn","tid":1,"t_ns":120,"msg":"something odd"}"#,
        ]
        .join("\n");
        let t = parse_trace(text.as_str()).unwrap();
        assert_eq!(t.regions.len(), 2);
        assert_eq!(t.regions[0].label, "par_map");
        assert_eq!(t.regions[0].fields["workers"], 2);
        assert_eq!(t.regions[1].fields["worker"], 0);
        assert_eq!(t.warns.len(), 1);
        assert_eq!(t.warns[0].msg, "something odd");
    }

    #[test]
    fn recorder_meta_lines_parse_with_numeric_fields() {
        let text = format!(
            "{}\n{}\n{}\n",
            r#"{"ev":"recorder","tid":3,"t_ns":500,"events":2,"dropped":7,"orphan_closes":1,"unclosed_opens":0,"threads":1}"#,
            open("a", 1, 0, 0, 10),
            close("a", 1, 0, 0, 20, 10),
        );
        let t = parse_trace(&text).unwrap();
        assert_eq!(t.recorder.len(), 1);
        assert_eq!(t.recorder[0].tid, 3);
        assert_eq!(t.recorder[0].fields["dropped"], 7);
        assert_eq!(t.n_spans, 1);
        // Non-numeric payload fields are rejected, like regions.
        let err =
            parse_trace(r#"{"ev":"recorder","tid":1,"t_ns":0,"events":"lots"}"#).unwrap_err();
        assert!(err.msg.contains("not a non-negative integer"), "{err}");
    }

    #[test]
    fn preambles_and_span_contexts_parse() {
        let text = [
            r#"{"ev":"preamble","tid":1,"t_ns":500,"pid":4242,"role":"worker","shard":1,"unix_ns":"0x18cfe97a1b2c3d4e"}"#.to_string(),
            r#"{"ev":"open","span":"serve.dispatch","tid":1,"seq":0,"depth":0,"t_ns":600,"trace":"0xdeadbeefdeadbeef","parent":"0x0000000000000005","req":"0x0000000000000007"}"#.to_string(),
            close("serve.dispatch", 1, 0, 0, 700, 100),
            r#"{"ev":"region","label":"serve.job","tid":1,"t_ns":650,"trace":"0xdeadbeefdeadbeef","parent":"0x0000000000000005","req":7,"queue_wait_ns":40}"#.to_string(),
            open("plain", 1, 1, 0, 800),
            close("plain", 1, 1, 0, 900, 100),
        ]
        .join("\n");
        let t = parse_trace(&text).unwrap();
        assert_eq!(t.preambles.len(), 1);
        let p = &t.preambles[0];
        assert_eq!((p.pid, p.role.as_str(), p.shard), (4242, "worker", Some(1)));
        assert_eq!(p.unix_ns, 0x18cf_e97a_1b2c_3d4e);
        assert_eq!(t.roots.len(), 2);
        assert_eq!(
            t.roots[0].ctx,
            Some((0xdead_beef_dead_beef, 5)),
            "span context survives the parse"
        );
        // The context fields are known keys: the one-attribute budget is
        // still available for a real attr (req above).
        assert_eq!(t.roots[0].attr.as_ref().unwrap().0, "req");
        assert_eq!(t.roots[1].ctx, None);
        assert_eq!(t.regions[0].ctx, Some((0xdead_beef_dead_beef, 5)));
        assert_eq!(t.regions[0].fields["queue_wait_ns"], 40);
        assert!(!t.regions[0].fields.contains_key("trace"));
    }

    #[test]
    fn half_a_context_is_rejected() {
        let text = r#"{"ev":"open","span":"x","tid":1,"seq":0,"depth":0,"t_ns":1,"trace":"0x01"}"#;
        let err = parse_trace(text).unwrap_err();
        assert!(err.msg.contains("both"), "{err}");
        // A numeric context is rejected: trace ids are full u64s and must
        // travel as hex strings (JSON doubles are exact only to 2^53).
        let text =
            r#"{"ev":"open","span":"x","tid":1,"seq":0,"depth":0,"t_ns":1,"trace":12,"parent":13}"#;
        let err = parse_trace(text).unwrap_err();
        assert!(err.msg.contains("\"trace\""), "{err}");
        let text = r#"{"ev":"open","span":"x","tid":1,"seq":0,"depth":0,"t_ns":1,"trace":"zz","parent":"0x1"}"#;
        let err = parse_trace(text).unwrap_err();
        assert!(err.msg.contains("hex string"), "{err}");
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let text = format!(
            "{}\n\n{}\n",
            open("a", 1, 0, 0, 1),
            close("a", 1, 0, 0, 2, 1)
        );
        assert_eq!(parse_trace(&text).unwrap().n_spans, 1);
    }
}
