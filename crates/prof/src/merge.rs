//! Multi-process trace stitching: N single-process JSONL captures (grid
//! shards, a serve daemon, its clients) become one timeline.
//!
//! ## Clock alignment
//!
//! Every process timestamps events on its own epoch clock (`Instant`
//! elapsed since its first observability event), so raw `t_ns` values
//! from different processes are not comparable. The preamble each sink
//! stamps on attach carries the handshake that fixes this: `t_ns` on the
//! process epoch paired with `unix_ns` wall-clock nanoseconds sampled at
//! the same instant. From the pair, `wall_at_epoch = unix_ns - t_ns` is
//! the wall time of the process's epoch; the merge shifts every process
//! forward by `wall_at_epoch - min(wall_at_epoch)` so all timelines share
//! the earliest process's epoch. A capture with no preamble (e.g. a
//! flight-recorder dump) cannot be aligned and keeps offset 0, which pins
//! it to the base timeline.
//!
//! ## Outputs
//!
//! [`to_chrome_merged`] renders one Chrome Trace Format document with one
//! **process lane per input** (`process_name` metadata from the
//! preamble's role/shard/pid), loadable in Perfetto. [`to_jsonl_merged`]
//! re-emits one strict-parser-clean JSONL file: thread ids are remapped
//! into disjoint per-process bands, timestamps are shifted onto the
//! common timeline, and each process's preamble is re-stamped with its
//! shifted epoch — so a merged file re-merges with all offsets 0 and
//! re-parses under the same strict validation as any single capture.

use crate::chrome;
use crate::trace::{RegionEvent, SpanNode, Trace};

/// One input capture placed on the merged timeline.
#[derive(Debug, Clone)]
pub struct MergedProcess {
    /// Chrome process lane (1-based, in input order).
    pub lane: u64,
    /// Human-readable lane name (`role shard=N pid=P`).
    pub name: String,
    /// Operating-system pid from the preamble (0 when absent).
    pub pid: u64,
    /// Role from the preamble (`proc<lane>` when absent).
    pub role: String,
    /// Shard index from the preamble.
    pub shard: Option<u64>,
    /// Nanoseconds this process's epoch lags the merged timeline base.
    pub offset_ns: u64,
    /// Where the capture came from (file path; diagnostics only).
    pub source: String,
    /// The parsed capture.
    pub trace: Trace,
}

/// N captures stitched onto one timeline.
#[derive(Debug, Clone)]
pub struct MergedTrace {
    /// One entry per input, in input order.
    pub processes: Vec<MergedProcess>,
}

/// Stitches parsed captures into one timeline. `inputs` pairs each trace
/// with its source name (used for lane naming only when the capture has
/// no preamble). Deterministic: lanes follow input order, offsets follow
/// the preamble handshake.
pub fn merge_traces(inputs: Vec<(String, Trace)>) -> MergedTrace {
    let walls: Vec<Option<u64>> = inputs
        .iter()
        .map(|(_, t)| {
            t.preambles
                .first()
                .map(|p| p.unix_ns.saturating_sub(p.t_ns))
        })
        .collect();
    let base = walls.iter().flatten().copied().min().unwrap_or(0);
    let processes = inputs
        .into_iter()
        .zip(walls)
        .enumerate()
        .map(|(i, ((source, trace), wall))| {
            let lane = i as u64 + 1;
            let (pid, role, shard) = match trace.preambles.first() {
                Some(p) => (p.pid, p.role.clone(), p.shard),
                None => (0, format!("proc{lane}"), None),
            };
            let name = match shard {
                Some(s) => format!("{role} shard={s} pid={pid}"),
                None => format!("{role} pid={pid}"),
            };
            MergedProcess {
                lane,
                name,
                pid,
                role,
                shard,
                offset_ns: wall.map_or(0, |w| w - base),
                source,
                trace,
            }
        })
        .collect();
    MergedTrace { processes }
}

/// Renders the merged timeline as one Chrome Trace Format document:
/// `process_name`/`process_sort_index` metadata per lane, then every
/// process's events with timestamps shifted onto the common base.
/// Deterministic for fixed inputs (the property the committed two-process
/// golden fixture pins).
pub fn to_chrome_merged(m: &MergedTrace) -> String {
    let mut events: Vec<String> = Vec::new();
    for p in &m.processes {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            p.lane,
            chrome::esc(&p.name),
        ));
        events.push(format!(
            "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"sort_index\":{}}}}}",
            p.lane, p.lane,
        ));
    }
    for p in &m.processes {
        chrome::push_process_events(&p.trace, p.lane, p.offset_ns, &mut events);
    }
    chrome::envelope(&events)
}

/// Largest thread id appearing anywhere in a trace (spans, regions,
/// warns, recorder meta, preambles).
fn max_tid(t: &Trace) -> u64 {
    let mut m = 0;
    for s in t.spans() {
        m = m.max(s.tid);
    }
    for r in t.regions.iter().chain(&t.recorder) {
        m = m.max(r.tid);
    }
    for w in &t.warns {
        m = m.max(w.tid);
    }
    for p in &t.preambles {
        m = m.max(p.tid);
    }
    m
}

fn push_span_jsonl(s: &SpanNode, tid: u64, offset_ns: u64, out: &mut String) {
    let mut tail = String::new();
    if let Some((trace_id, parent)) = s.ctx {
        tail.push_str(&format!(
            ",\"trace\":\"{trace_id:#018x}\",\"parent\":\"{parent:#018x}\""
        ));
    }
    if let Some((k, v)) = &s.attr {
        tail.push_str(&format!(
            ",\"{}\":\"{}\"",
            chrome::esc(k),
            chrome::esc(v)
        ));
    }
    out.push_str(&format!(
        "{{\"ev\":\"open\",\"span\":\"{}\",\"tid\":{},\"seq\":{},\"depth\":{},\"t_ns\":{}{}}}\n",
        chrome::esc(&s.label),
        tid,
        s.seq,
        s.depth,
        s.open_ns + offset_ns,
        tail,
    ));
    for c in &s.children {
        push_span_jsonl(c, tid, offset_ns, out);
    }
    out.push_str(&format!(
        "{{\"ev\":\"close\",\"span\":\"{}\",\"tid\":{},\"seq\":{},\"depth\":{},\"t_ns\":{},\"dur_ns\":{}{}}}\n",
        chrome::esc(&s.label),
        tid,
        s.seq,
        s.depth,
        s.close_ns + offset_ns,
        s.dur_ns,
        tail,
    ));
}

fn push_region_jsonl(r: &RegionEvent, ev: &str, tid: u64, offset_ns: u64, out: &mut String) {
    out.push_str(&format!(
        "{{\"ev\":\"{ev}\",{}\"tid\":{},\"t_ns\":{}",
        if ev == "region" {
            format!("\"label\":\"{}\",", chrome::esc(&r.label))
        } else {
            String::new()
        },
        tid,
        r.t_ns + offset_ns,
    ));
    if let Some((trace_id, parent)) = r.ctx {
        out.push_str(&format!(
            ",\"trace\":\"{trace_id:#018x}\",\"parent\":\"{parent:#018x}\""
        ));
    }
    for (k, v) in &r.fields {
        out.push_str(&format!(",\"{}\":{}", chrome::esc(k), v));
    }
    out.push_str("}\n");
}

/// Re-emits the merged timeline as one strict-parser-clean JSONL capture.
///
/// Thread ids are remapped into disjoint bands (`lane * stride + tid`
/// where `stride` exceeds every input's largest tid), so per-thread
/// sequence and stack validation still holds per process. Timestamps are
/// shifted onto the common base and each preamble is re-stamped with its
/// shifted `t_ns` (its `unix_ns` is unchanged, so the handshake stays
/// truthful: re-merging the merged file yields offset 0 for every lane).
pub fn to_jsonl_merged(m: &MergedTrace) -> String {
    let stride = m.processes.iter().map(|p| max_tid(&p.trace)).max().unwrap_or(0) + 1;
    let mut out = String::new();
    for p in &m.processes {
        let remap = |tid: u64| p.lane * stride + tid;
        for pre in &p.trace.preambles {
            let mut line = format!(
                "{{\"ev\":\"preamble\",\"tid\":{},\"t_ns\":{},\"pid\":{},\"role\":\"{}\"",
                remap(pre.tid),
                pre.t_ns + p.offset_ns,
                pre.pid,
                chrome::esc(&pre.role),
            );
            if let Some(s) = pre.shard {
                line.push_str(&format!(",\"shard\":{s}"));
            }
            line.push_str(&format!(",\"unix_ns\":\"{:#018x}\"}}\n", pre.unix_ns));
            out.push_str(&line);
        }
        for root in &p.trace.roots {
            push_span_jsonl(root, remap(root.tid), p.offset_ns, &mut out);
        }
        for r in &p.trace.regions {
            push_region_jsonl(r, "region", remap(r.tid), p.offset_ns, &mut out);
        }
        for r in &p.trace.recorder {
            push_region_jsonl(r, "recorder", remap(r.tid), p.offset_ns, &mut out);
        }
        for w in &p.trace.warns {
            out.push_str(&format!(
                "{{\"ev\":\"warn\",\"tid\":{},\"t_ns\":{},\"msg\":\"{}\"}}\n",
                remap(w.tid),
                w.t_ns + p.offset_ns,
                chrome::esc(&w.msg),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::parse_trace;

    fn capture(role: &str, shard: Option<u64>, pid: u64, unix_ns: u64, t0: u64) -> String {
        let shard_field = shard.map_or(String::new(), |s| format!(",\"shard\":{s}"));
        let preamble = format!(
            "{{\"ev\":\"preamble\",\"tid\":1,\"t_ns\":{t0},\"pid\":{pid},\"role\":\"{role}\"{shard_field},\"unix_ns\":\"{unix_ns:#018x}\"}}"
        );
        let open = format!(
            "{{\"ev\":\"open\",\"span\":\"work\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":{},\"trace\":\"0x00000000000000aa\",\"parent\":\"0x0000000000000000\"}}",
            t0 + 10
        );
        let close = format!(
            "{{\"ev\":\"close\",\"span\":\"work\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":{},\"dur_ns\":100}}",
            t0 + 110
        );
        format!("{preamble}\n{open}\n{close}\n")
    }

    fn merged_pair() -> MergedTrace {
        // Process A's epoch is 1000ns of wall time earlier than B's.
        let a = capture("serve", None, 100, 5_000_000, 50);
        let b = capture("worker", Some(1), 200, 5_001_000, 0);
        merge_traces(vec![
            ("a.jsonl".to_string(), parse_trace(&a).unwrap()),
            ("b.jsonl".to_string(), parse_trace(&b).unwrap()),
        ])
    }

    #[test]
    fn offsets_follow_the_preamble_handshake() {
        let m = merged_pair();
        // wall_at_epoch(A) = 5_000_000 - 50; wall_at_epoch(B) = 5_001_000.
        assert_eq!(m.processes[0].offset_ns, 0);
        assert_eq!(m.processes[1].offset_ns, 1050);
        assert_eq!(m.processes[0].name, "serve pid=100");
        assert_eq!(m.processes[1].name, "worker shard=1 pid=200");
    }

    #[test]
    fn chrome_merged_has_one_lane_per_process() {
        let m = merged_pair();
        let doc = to_chrome_merged(&m);
        let v = serde_json::from_str(&doc).expect("merged chrome parses");
        let events = v["traceEvents"].as_array().unwrap();
        // 2 metadata pairs + 2 spans.
        assert_eq!(events.len(), 6);
        assert_eq!(events[0]["name"], "process_name");
        assert_eq!(events[0]["args"]["name"], "serve pid=100");
        assert_eq!(events[2]["args"]["name"], "worker shard=1 pid=200");
        let span_pids: Vec<f64> = events[4..]
            .iter()
            .map(|e| e["pid"].as_f64().unwrap())
            .collect();
        assert_eq!(span_pids, vec![1.0, 2.0]);
        // B's span is shifted onto the common base: (0 + 10 + 1050) / 1000 µs.
        assert_eq!(events[5]["ts"].as_f64().unwrap(), 1.060);
        // The span context survives into args.
        assert_eq!(events[4]["args"]["trace"], "0x00000000000000aa");
        assert_eq!(to_chrome_merged(&m), to_chrome_merged(&m), "deterministic");
    }

    #[test]
    fn merged_jsonl_reparses_and_remerges_with_zero_offsets() {
        let m = merged_pair();
        let jsonl = to_jsonl_merged(&m);
        let reparsed = parse_trace(&jsonl).expect("merged JSONL re-satisfies the strict parser");
        assert_eq!(reparsed.n_spans, 2);
        assert_eq!(reparsed.preambles.len(), 2);
        // Thread ids landed in disjoint per-process bands.
        assert_eq!(reparsed.tids().len(), 2);
        // The re-stamped handshake makes a second merge a fixed point.
        let again = merge_traces(vec![("m.jsonl".to_string(), reparsed)]);
        assert_eq!(again.processes[0].offset_ns, 0);
        let spans = again.processes[0].trace.spans().len();
        assert_eq!(spans, 2);
    }

    #[test]
    fn preamble_less_captures_keep_offset_zero_and_a_synthetic_name() {
        let plain = concat!(
            "{\"ev\":\"open\",\"span\":\"x\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":5}\n",
            "{\"ev\":\"close\",\"span\":\"x\",\"tid\":1,\"seq\":0,\"depth\":0,\"t_ns\":9,\"dur_ns\":4}\n",
        );
        let m = merge_traces(vec![(
            "dump.jsonl".to_string(),
            parse_trace(plain).unwrap(),
        )]);
        assert_eq!(m.processes[0].offset_ns, 0);
        assert_eq!(m.processes[0].name, "proc1 pid=0");
        let jsonl = to_jsonl_merged(&m);
        assert!(parse_trace(&jsonl).is_ok());
    }
}
