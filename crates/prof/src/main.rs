//! The `yali-prof` CLI: trace analysis, Perfetto export, and the
//! run-over-run regression watch over the files the instrumented engine
//! writes (`YALI_TRACE` JSONL captures, `RUNSTATS_*.json`,
//! `BENCH_*.json`).

use yali_prof::diff::DiffConfig;

const USAGE: &str = "\
yali-prof — trace analysis and regression watch for yali telemetry

USAGE:
  yali-prof top <TRACE.jsonl> [--top N] [--json]  self/total time per span label
  yali-prof critical-path <TRACE.jsonl> [--json]  the span chain bounding wall time
  yali-prof timeline <TRACE.jsonl> [--buckets N]  pool busy/idle per worker
  yali-prof export --chrome <TRACE.jsonl> [-o OUT.json]
                                                Chrome Trace Format (Perfetto)
  yali-prof merge <TRACE.jsonl>... [-o OUT.json] [--jsonl OUT.jsonl]
                                                stitch N process captures into one
                                                clock-aligned Chrome timeline (one
                                                process lane per input)
  yali-prof cross-path <TRACE.jsonl>... [--trace-id 0xID] [--json]
                                                client-to-server latency attribution
                                                for one request (slowest by default)
  yali-prof diff <OLD.json> <NEW.json> [options]  compare RUNSTATS/BENCH reports
      --max-counter-ratio X   counter growth/shrink band   (default 8)
      --max-phase-ratio X     phase mean_ns growth cap     (default 10)
      --max-hit-drop X        cache hit-ratio drop cap     (default 0.15)
      --min-speedup-ratio X   speedup floor vs baseline    (default 0.5)
      --max-p99-ratio X       serve p99 latency ceiling    (default 3)
      --min-qps-ratio X       serve throughput floor       (default 0.5)
      --max-straggler-ratio X fleet slowest/median shard   (default 3)
      --max-shard-drift X     per-shard counter drift band (default 4)
      --min-phase-ns X        ignore phases faster than X  (default 50000)
  yali-prof selfcheck                           golden-fixture round trip

EXIT: 0 ok; 1 analysis/regression failure; 2 usage error";

fn fail(msg: &str) -> i32 {
    eprintln!("yali-prof: {msg}");
    1
}

fn usage(msg: &str) -> i32 {
    eprintln!("yali-prof: {msg}\n\n{USAGE}");
    2
}

/// Pulls `--flag value` out of `args`, parsed as `T`.
fn take_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Result<Option<T>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let raw = args.remove(i + 1);
        args.remove(i);
        raw.parse::<T>()
            .map(Some)
            .map_err(|_| format!("{flag} value {raw:?} did not parse"))
    } else {
        Ok(None)
    }
}

/// Removes a boolean `--flag` from `args`, reporting whether it was there.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let n = args.len();
    args.retain(|a| a != flag);
    args.len() != n
}

/// Parses a trace id given as `0x...` hex or decimal.
fn parse_trace_id(raw: &str) -> Result<u64, String> {
    let parsed = match raw.strip_prefix("0x") {
        Some(h) => u64::from_str_radix(h, 16),
        None => raw.parse::<u64>(),
    };
    parsed.map_err(|_| format!("--trace-id value {raw:?} is not a 0x hex or decimal id"))
}

/// Parses every listed capture and stitches them onto one timeline.
fn merge_inputs(paths: &[String]) -> Result<yali_prof::MergedTrace, String> {
    let mut inputs = Vec::with_capacity(paths.len());
    for path in paths {
        inputs.push((path.clone(), yali_prof::parse_trace_file(path)?));
    }
    Ok(yali_prof::merge_traces(inputs))
}

fn run() -> i32 {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage("missing command");
    };
    args.remove(0);
    match cmd.as_str() {
        "top" => {
            let n = match take_flag::<usize>(&mut args, "--top") {
                Ok(v) => v.unwrap_or(20),
                Err(e) => return usage(&e),
            };
            let json = take_switch(&mut args, "--json");
            let [path] = args.as_slice() else {
                return usage("top takes exactly one trace file");
            };
            match yali_prof::parse_trace_file(path) {
                Ok(trace) => {
                    let p = yali_prof::profile(&trace);
                    if json {
                        print!("{}", yali_prof::render_top_json(&p, n));
                    } else {
                        print!("{}", yali_prof::render_top(&p, n));
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        "critical-path" => {
            let json = take_switch(&mut args, "--json");
            let [path] = args.as_slice() else {
                return usage("critical-path takes exactly one trace file");
            };
            match yali_prof::parse_trace_file(path) {
                Ok(trace) => {
                    let path = yali_prof::critical_path(&trace);
                    if json {
                        print!("{}", yali_prof::render_critical_path_json(&path));
                    } else {
                        print!("{}", yali_prof::render_critical_path(&path));
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        "timeline" => {
            let buckets = match take_flag::<usize>(&mut args, "--buckets") {
                Ok(v) => v.unwrap_or(60),
                Err(e) => return usage(&e),
            };
            let [path] = args.as_slice() else {
                return usage("timeline takes exactly one trace file");
            };
            match yali_prof::parse_trace_file(path) {
                Ok(trace) => match yali_prof::timeline(&trace, buckets) {
                    Some(tl) => {
                        print!("{}", yali_prof::render_timeline(&tl));
                        0
                    }
                    None => fail("trace has no par_worker events (serial run?)"),
                },
                Err(e) => fail(&e),
            }
        }
        "export" => {
            if args.iter().position(|a| a == "--chrome").is_none() {
                return usage("export currently supports only --chrome");
            }
            args.retain(|a| a != "--chrome");
            let out = match take_flag::<String>(&mut args, "-o") {
                Ok(v) => v,
                Err(e) => return usage(&e),
            };
            let [path] = args.as_slice() else {
                return usage("export takes exactly one trace file");
            };
            let out = out.unwrap_or_else(|| match path.strip_suffix(".jsonl") {
                Some(stem) => format!("{stem}.chrome.json"),
                None => format!("{path}.chrome.json"),
            });
            match yali_prof::parse_trace_file(path) {
                Ok(trace) => {
                    let chrome = yali_prof::to_chrome(&trace);
                    match std::fs::write(&out, &chrome) {
                        Ok(()) => {
                            println!(
                                "wrote {out} ({} bytes, {} spans) — load it at \
                                 https://ui.perfetto.dev or chrome://tracing",
                                chrome.len(),
                                trace.n_spans
                            );
                            0
                        }
                        Err(e) => fail(&format!("cannot write {out}: {e}")),
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "merge" => {
            let out = match take_flag::<String>(&mut args, "-o") {
                Ok(v) => v.unwrap_or_else(|| "merged_chrome.json".to_string()),
                Err(e) => return usage(&e),
            };
            let jsonl_out = match take_flag::<String>(&mut args, "--jsonl") {
                Ok(v) => v,
                Err(e) => return usage(&e),
            };
            if args.is_empty() {
                return usage("merge takes one or more trace files");
            }
            let merged = match merge_inputs(&args) {
                Ok(m) => m,
                Err(e) => return fail(&e),
            };
            let chrome = yali_prof::to_chrome_merged(&merged);
            if let Err(e) = std::fs::write(&out, &chrome) {
                return fail(&format!("cannot write {out}: {e}"));
            }
            for p in &merged.processes {
                println!(
                    "lane {}: {} (+{}us) from {}",
                    p.lane,
                    p.name,
                    p.offset_ns / 1000,
                    p.source
                );
            }
            println!(
                "wrote {out} ({} bytes, {} process lane(s)) — load it at \
                 https://ui.perfetto.dev or chrome://tracing",
                chrome.len(),
                merged.processes.len()
            );
            if let Some(jsonl_path) = jsonl_out {
                let jsonl = yali_prof::to_jsonl_merged(&merged);
                if let Err(e) = std::fs::write(&jsonl_path, &jsonl) {
                    return fail(&format!("cannot write {jsonl_path}: {e}"));
                }
                println!("wrote {jsonl_path} ({} bytes, merged JSONL)", jsonl.len());
            }
            0
        }
        "cross-path" => {
            let json = take_switch(&mut args, "--json");
            let want = match take_flag::<String>(&mut args, "--trace-id") {
                Ok(Some(raw)) => match parse_trace_id(&raw) {
                    Ok(id) => Some(id),
                    Err(e) => return usage(&e),
                },
                Ok(None) => None,
                Err(e) => return usage(&e),
            };
            if args.is_empty() {
                return usage("cross-path takes one or more trace files");
            }
            let merged = match merge_inputs(&args) {
                Ok(m) => m,
                Err(e) => return fail(&e),
            };
            match yali_prof::cross_path(&merged, want) {
                Ok(cp) => {
                    if json {
                        print!("{}", yali_prof::render_cross_path_json(&cp));
                    } else {
                        print!("{}", yali_prof::render_cross_path(&cp));
                    }
                    0
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => {
            let mut cfg = DiffConfig::default();
            let flags: [(&str, &mut f64); 8] = [
                ("--max-counter-ratio", &mut cfg.max_counter_ratio),
                ("--max-phase-ratio", &mut cfg.max_phase_ratio),
                ("--max-hit-drop", &mut cfg.max_hit_drop),
                ("--min-speedup-ratio", &mut cfg.min_speedup_ratio),
                ("--max-p99-ratio", &mut cfg.max_p99_ratio),
                ("--min-qps-ratio", &mut cfg.min_qps_ratio),
                ("--max-straggler-ratio", &mut cfg.max_straggler_ratio),
                ("--max-shard-drift", &mut cfg.max_shard_drift),
            ];
            for (flag, slot) in flags {
                match take_flag::<f64>(&mut args, flag) {
                    Ok(Some(v)) => *slot = v,
                    Ok(None) => {}
                    Err(e) => return usage(&e),
                }
            }
            match take_flag::<f64>(&mut args, "--min-phase-ns") {
                Ok(Some(v)) => cfg.min_phase_ns = v,
                Ok(None) => {}
                Err(e) => return usage(&e),
            }
            let [old, new] = args.as_slice() else {
                return usage("diff takes exactly two report files");
            };
            match yali_prof::diff_files(old, new, &cfg) {
                Ok(violations) if violations.is_empty() => {
                    println!("diff ok: {new} within thresholds of {old}");
                    0
                }
                Ok(violations) => {
                    for v in &violations {
                        eprintln!("{v}");
                    }
                    eprintln!(
                        "yali-prof: {} regression(s) comparing {new} against {old}",
                        violations.len()
                    );
                    1
                }
                Err(e) => fail(&e),
            }
        }
        "selfcheck" => match yali_prof::selfcheck() {
            Ok(report) => {
                println!("{report}");
                0
            }
            Err(e) => fail(&e),
        },
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            0
        }
        other => usage(&format!("unknown command {other:?}")),
    }
}

fn main() {
    std::process::exit(run());
}
