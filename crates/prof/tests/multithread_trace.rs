//! Multithreaded tracing round trip: a parallel fan-out under a live
//! `YALI_TRACE` sink must produce a capture the strict `yali-prof` parser
//! accepts — balanced open/close per thread, strictly monotone per-thread
//! sequence ids, depths that match the reconstructed nesting — and the
//! capture must carry the pool's per-worker region events so a
//! utilization timeline can be derived.

use std::collections::BTreeMap;

/// The obs enabled/trace state is process-global; every test in this file
/// serializes on this lock and restores the off state before returning.
static GLOBAL_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn capture_fanout(path: &str, threads: usize, items: usize) -> String {
    yali_obs::set_trace_path(Some(path));
    yali_obs::set_enabled(true);
    let data: Vec<u64> = (0..items as u64).collect();
    let out = {
        let _root = yali_obs::span!("test.fanout.root");
        yali_par::par_map_with(threads, &data, |i, &v| {
            let _outer = yali_obs::span_attr("test.fanout.item", "module", v);
            let _inner = yali_obs::span!("test.fanout.inner");
            std::hint::black_box(v.wrapping_mul(0x9E37_79B9).rotate_left(i as u32))
        })
    };
    assert_eq!(out.len(), items);
    yali_obs::set_enabled(false);
    yali_obs::set_trace_path(None);
    let text = std::fs::read_to_string(path).expect("trace written");
    let _ = std::fs::remove_file(path);
    text
}

#[test]
fn fanout_trace_parses_balanced_and_monotone() {
    let _lock = GLOBAL_STATE.lock().unwrap();
    let path = std::env::temp_dir().join("yali_prof_fanout.jsonl");
    let path = path.to_str().unwrap().to_string();
    let text = capture_fanout(&path, 4, 64);

    // The strict parser accepting the capture already proves balance,
    // per-thread monotone seq, and depth consistency; everything below
    // re-checks the invariants independently of the parser's own logic.
    let trace = yali_prof::parse_trace(&text).expect("fan-out trace parses");
    assert!(trace.n_spans > 2 * 64, "spans={}", trace.n_spans);

    let mut opens_per_tid: BTreeMap<u64, usize> = BTreeMap::new();
    let mut closes_per_tid: BTreeMap<u64, usize> = BTreeMap::new();
    let mut seqs_per_tid: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for line in text.lines() {
        let v = serde_json::from_str(line).expect("line parses");
        let tid = v["tid"].as_u64().unwrap();
        match v["ev"].as_str().unwrap() {
            "open" => {
                *opens_per_tid.entry(tid).or_default() += 1;
                seqs_per_tid.entry(tid).or_default().push(v["seq"].as_u64().unwrap());
            }
            "close" => *closes_per_tid.entry(tid).or_default() += 1,
            _ => {}
        }
    }
    assert_eq!(opens_per_tid, closes_per_tid, "balanced open/close per tid");
    for (tid, seqs) in &seqs_per_tid {
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "tid {tid} seq ids not strictly monotone: {seqs:?}"
        );
    }
    // The fan-out really did run on several threads (the root's thread
    // plus the pool workers), and each worker's items nest under it.
    assert!(trace.tids().len() >= 2, "tids={:?}", trace.tids());

    // Per-worker region events made it through, so the pool timeline is
    // derivable from this capture.
    let workers: Vec<&yali_prof::trace::RegionEvent> = trace
        .regions
        .iter()
        .filter(|r| r.label == "par_worker")
        .collect();
    assert!(!workers.is_empty(), "no par_worker events in the capture");
    for w in &workers {
        assert!(w.fields.contains_key("worker"), "worker index missing");
        assert!(w.fields.contains_key("t0_ns"));
        assert!(w.fields.contains_key("busy_ns"));
    }
    let tl = yali_prof::timeline(&trace, 10).expect("timeline derivable");
    assert!(!tl.workers.is_empty());
    assert!(tl.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));

    // The item spans carried their attr on open and close alike.
    let item_span = trace
        .spans()
        .into_iter()
        .find(|s| s.label == "test.fanout.item")
        .expect("item span present");
    assert!(item_span.attr.is_some(), "attr lost");
    assert_eq!(item_span.children.len(), 1, "inner span nests under item");
}

#[test]
fn serial_fanout_traces_identically_through_the_profile() {
    let _lock = GLOBAL_STATE.lock().unwrap();
    let path = std::env::temp_dir().join("yali_prof_serial.jsonl");
    let path = path.to_str().unwrap().to_string();
    let text = capture_fanout(&path, 1, 16);
    let trace = yali_prof::parse_trace(&text).expect("serial trace parses");
    // Serial run: every span lands on one thread, and the profile's
    // self-time decomposition accounts for the root's wall time.
    assert_eq!(trace.tids().len(), 1);
    let p = yali_prof::profile(&trace);
    let root = p
        .labels
        .iter()
        .find(|l| l.label == "test.fanout.root")
        .expect("root label");
    assert_eq!(root.count, 1);
    let sum: u64 = p.labels.iter().map(|l| l.self_ns).sum();
    let tolerance = p.root_wall_ns / 100 + 1000;
    assert!(
        sum.abs_diff(p.root_wall_ns) <= tolerance,
        "self-time sum {sum} vs root wall {} (tolerance {tolerance})",
        p.root_wall_ns
    );
}
