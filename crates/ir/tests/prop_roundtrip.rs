//! Property tests: printer/parser round trips and interpreter agreement on
//! randomly generated straight-line functions.

use proptest::prelude::*;
use yali_ir::interp::{run, ExecConfig, Val};
use yali_ir::{parse_module, print_module, FunctionBuilder, Module, Op, Type, Value};

/// A tiny recipe for one instruction of a random straight-line function.
#[derive(Debug, Clone)]
enum Step {
    Bin(u8, i64),
    CmpThenExt(u8),
    SelectConst(i64, i64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..13, -100i64..100).prop_map(|(o, c)| Step::Bin(o, c)),
        (0u8..6).prop_map(Step::CmpThenExt),
        (-50i64..50, -50i64..50).prop_map(|(a, b)| Step::SelectConst(a, b)),
    ]
}

fn build(steps: &[Step]) -> Module {
    let mut b = FunctionBuilder::new("f", vec![Type::I64], Type::I64);
    let entry = b.add_block();
    b.switch_to(entry);
    let mut cur = Value::Param(0);
    for s in steps {
        cur = match s {
            Step::Bin(o, c) => {
                let op = [
                    Op::Add,
                    Op::Sub,
                    Op::Mul,
                    Op::And,
                    Op::Or,
                    Op::Xor,
                    Op::Shl,
                    Op::LShr,
                    Op::AShr,
                    Op::SDiv,
                    Op::SRem,
                    Op::UDiv,
                    Op::URem,
                ][*o as usize % 13];
                // Keep divisors nonzero.
                let c = if matches!(op, Op::SDiv | Op::SRem | Op::UDiv | Op::URem) && *c == 0 {
                    7
                } else {
                    *c
                };
                b.binop(op, cur, Value::const_int(Type::I64, c))
            }
            Step::CmpThenExt(p) => {
                let pred = [
                    yali_ir::Cmp::Eq,
                    yali_ir::Cmp::Ne,
                    yali_ir::Cmp::Slt,
                    yali_ir::Cmp::Sle,
                    yali_ir::Cmp::Ult,
                    yali_ir::Cmp::Uge,
                ][*p as usize % 6];
                let c = b.icmp(pred, cur, Value::const_int(Type::I64, 3));
                b.cast(Op::ZExt, c, Type::I64)
            }
            Step::SelectConst(x, y) => {
                let c = b.icmp(yali_ir::Cmp::Sgt, cur, Value::const_int(Type::I64, 0));
                b.select(
                    c,
                    Value::const_int(Type::I64, *x),
                    Value::const_int(Type::I64, *y),
                )
            }
        };
    }
    b.ret(Some(cur));
    let mut m = Module::new("prop");
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_print_identity(steps in prop::collection::vec(step_strategy(), 1..20)) {
        let m = build(&steps);
        yali_ir::verify_module(&m).expect("generated module verifies");
        let once = print_module(&m);
        let parsed = parse_module(&once).expect("printed module parses");
        prop_assert_eq!(once, print_module(&parsed));
    }

    #[test]
    fn parsing_preserves_behaviour(steps in prop::collection::vec(step_strategy(), 1..20), arg in -1000i64..1000) {
        let m = build(&steps);
        let parsed = parse_module(&print_module(&m)).expect("parses");
        let a = run(&m, "f", &[Val::Int(arg)], &[], &ExecConfig::default());
        let b = run(&parsed, "f", &[Val::Int(arg)], &[], &ExecConfig::default());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn verifier_accepts_all_generated_modules(steps in prop::collection::vec(step_strategy(), 0..30)) {
        let m = build(&steps);
        prop_assert!(yali_ir::verify_module(&m).is_ok());
    }
}
