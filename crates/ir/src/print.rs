//! Textual rendering of IR modules.
//!
//! The concrete syntax is LLVM-flavoured:
//!
//! ```text
//! module "demo"
//!
//! declare void @print_int(i64)
//!
//! define i64 @abs(i64 %p0) {
//! b0:
//!   %v0 = icmp slt %p0, i64 0
//!   condbr %v0, b1, b2
//! b1:
//!   %v1 = sub i64 0, %p0
//!   br b2
//! b2:
//!   %v2 = phi i64 [%p0, b0], [%v1, b1]
//!   ret %v2
//! }
//! ```
//!
//! Instruction results are named `%vN` and blocks `bN`, densely numbered in
//! layout order, so a parse/print round trip is the identity on the printed
//! text (see [`crate::parse`]).

use crate::module::{Function, Inst, Module};
use crate::opcode::Op;
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};
use std::collections::HashMap;
use std::fmt;

/// Formats a float constant so that parsing recovers the exact bits.
pub(crate) fn fmt_float(v: f64) -> String {
    if v.is_nan() {
        "nan".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        let s = format!("{v:?}");
        s
    }
}

struct Namer {
    inst_names: HashMap<InstId, usize>,
    block_names: HashMap<BlockId, usize>,
}

impl Namer {
    // An explicit counter mirrors the printed-name contract (%vN).
    #[allow(clippy::explicit_counter_loop)]
    fn new(f: &Function) -> Namer {
        let mut inst_names = HashMap::new();
        let mut block_names = HashMap::new();
        for (bi, &b) in f.block_order().iter().enumerate() {
            block_names.insert(b, bi);
        }
        let mut n = 0;
        for (_, i) in f.iter_insts() {
            inst_names.insert(i, n);
            n += 1;
        }
        Namer {
            inst_names,
            block_names,
        }
    }

    fn value(&self, v: &Value) -> String {
        match v {
            Value::Inst(id) => match self.inst_names.get(id) {
                Some(n) => format!("%v{n}"),
                None => format!("%dangling{}", id.0),
            },
            Value::Param(i) => format!("%p{i}"),
            Value::ConstInt(ty, v) => format!("{ty} {v}"),
            Value::ConstFloat(v) => format!("f64 {}", fmt_float(*v)),
            Value::Undef(ty) => format!("undef {ty}"),
        }
    }

    fn block(&self, b: BlockId) -> String {
        match self.block_names.get(&b) {
            Some(n) => format!("b{n}"),
            None => format!("bdangling{}", b.0),
        }
    }
}

fn write_inst(
    out: &mut String,
    _f: &Function,
    namer: &Namer,
    id: InstId,
    inst: &Inst,
) -> fmt::Result {
    use fmt::Write;
    out.push_str("  ");
    if !inst.ty.is_void() {
        write!(out, "%v{} = ", namer.inst_names[&id])?;
    }
    match inst.op {
        Op::Ret => {
            if inst.args.is_empty() {
                out.push_str("ret");
            } else {
                write!(out, "ret {}", namer.value(&inst.args[0]))?;
            }
        }
        Op::Br => write!(out, "br {}", namer.block(inst.blocks[0]))?,
        Op::CondBr => write!(
            out,
            "condbr {}, {}, {}",
            namer.value(&inst.args[0]),
            namer.block(inst.blocks[0]),
            namer.block(inst.blocks[1])
        )?,
        Op::Switch => {
            write!(
                out,
                "switch {}, default {}",
                namer.value(&inst.args[0]),
                namer.block(inst.blocks[0])
            )?;
            for (v, b) in inst.args[1..].iter().zip(inst.blocks[1..].iter()) {
                write!(out, ", [{} -> {}]", namer.value(v), namer.block(*b))?;
            }
        }
        Op::Unreachable => out.push_str("unreachable"),
        Op::Alloca => {
            let elem = inst.ty.pointee().cloned().unwrap_or(Type::Void);
            write!(out, "alloca {}, {}", elem, namer.value(&inst.args[0]))?;
        }
        Op::Load => write!(out, "load {}, {}", inst.ty, namer.value(&inst.args[0]))?,
        Op::Store => write!(
            out,
            "store {}, {}",
            namer.value(&inst.args[0]),
            namer.value(&inst.args[1])
        )?,
        Op::Gep => write!(
            out,
            "gep {}, {}",
            namer.value(&inst.args[0]),
            namer.value(&inst.args[1])
        )?,
        Op::Phi => {
            write!(out, "phi {}", inst.ty)?;
            for (i, (v, b)) in inst.args.iter().zip(inst.blocks.iter()).enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                write!(out, "{sep}[{}, {}]", namer.value(v), namer.block(*b))?;
            }
        }
        Op::Call => {
            write!(
                out,
                "call {} @{}(",
                inst.ty,
                inst.callee.as_deref().unwrap_or("?")
            )?;
            for (i, a) in inst.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&namer.value(a));
            }
            out.push(')');
        }
        Op::ICmp | Op::FCmp => write!(
            out,
            "{} {} {}, {}",
            inst.op,
            inst.pred.expect("cmp without predicate"),
            namer.value(&inst.args[0]),
            namer.value(&inst.args[1])
        )?,
        Op::Select => write!(
            out,
            "select {}, {}, {}",
            namer.value(&inst.args[0]),
            namer.value(&inst.args[1]),
            namer.value(&inst.args[2])
        )?,
        op if op.is_cast() => write!(
            out,
            "{} {} to {}",
            op,
            namer.value(&inst.args[0]),
            inst.ty
        )?,
        Op::FNeg => write!(out, "fneg {}", namer.value(&inst.args[0]))?,
        op if op.is_int_binop() || op.is_float_binop() => write!(
            out,
            "{} {} {}, {}",
            op,
            inst.ty,
            namer.value(&inst.args[0]),
            namer.value(&inst.args[1])
        )?,
        op => {
            // Exotic opcodes print generically.
            write!(out, "{op}")?;
            for (i, a) in inst.args.iter().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                write!(out, "{sep}{}", namer.value(a))?;
            }
        }
    }
    out.push('\n');
    Ok(())
}

/// Renders a function definition or declaration.
pub fn print_function(f: &Function) -> String {
    use fmt::Write;
    let mut out = String::new();
    if f.is_declaration() {
        let _ = write!(out, "declare {} @{}(", f.ret, f.name);
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{p}");
        }
        out.push_str(")\n");
        return out;
    }
    let _ = write!(out, "define {} @{}(", f.ret, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{p} %p{i}");
    }
    out.push_str(") {\n");
    let namer = Namer::new(f);
    for &b in f.block_order() {
        let _ = writeln!(out, "{}:", namer.block(b));
        for &i in &f.block(b).insts {
            let _ = write_inst(&mut out, f, &namer, i, f.inst(i));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = format!("module \"{}\"\n", m.name);
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_module(self))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print_function(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::opcode::Cmp;

    #[test]
    fn prints_a_simple_function() {
        let mut b = FunctionBuilder::new("inc", vec![Type::I32], Type::I32);
        let e = b.add_block();
        b.switch_to(e);
        let s = b.binop(Op::Add, Value::Param(0), Value::const_int(Type::I32, 1));
        b.ret(Some(s));
        let text = print_function(&b.finish());
        assert!(text.contains("define i32 @inc(i32 %p0)"));
        assert!(text.contains("%v0 = add i32 %p0, i32 1"));
        assert!(text.contains("ret %v0"));
    }

    #[test]
    fn prints_declarations() {
        let f = Function::new("print_int", vec![Type::I64], Type::Void);
        assert_eq!(print_function(&f), "declare void @print_int(i64)\n");
    }

    #[test]
    fn prints_phi_and_cmp() {
        let mut b = FunctionBuilder::new("m", vec![Type::I64, Type::I64], Type::I64);
        let e = b.add_block();
        let t = b.add_block();
        let j = b.add_block();
        b.switch_to(e);
        let c = b.icmp(Cmp::Sgt, Value::Param(0), Value::Param(1));
        b.condbr(c, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(Type::I64, vec![(Value::Param(1), e), (Value::Param(0), t)]);
        b.ret(Some(p));
        let text = print_function(&b.finish());
        assert!(text.contains("icmp sgt %p0, %p1"));
        assert!(text.contains("phi i64 [%p1, b0], [%p0, b1]"));
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.0, -0.0, 1.5, 1e300, 1e-300, std::f64::consts::PI] {
            let s = fmt_float(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "for {s}");
        }
        assert_eq!(fmt_float(f64::NAN), "nan");
        assert_eq!(fmt_float(f64::INFINITY), "inf");
    }
}
