//! A convenience builder for constructing functions instruction by
//! instruction, in the style of LLVM's `IRBuilder`.

use crate::module::{Function, Inst};
use crate::opcode::{Cmp, Op};
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};

/// Builds instructions into a [`Function`], tracking a current insertion
/// block.
///
/// # Examples
///
/// ```
/// use yali_ir::{FunctionBuilder, Type, Value, Op};
/// let mut b = FunctionBuilder::new("inc", vec![Type::I32], Type::I32);
/// let entry = b.add_block();
/// b.switch_to(entry);
/// let one = Value::const_int(Type::I32, 1);
/// let sum = b.binop(Op::Add, Value::Param(0), one);
/// b.ret(Some(sum));
/// let f = b.finish();
/// assert_eq!(f.num_insts(), 2);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: Option<BlockId>,
}

impl FunctionBuilder {
    /// Starts building a function with the given signature.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> FunctionBuilder {
        FunctionBuilder {
            func: Function::new(name, params, ret),
            cur: None,
        }
    }

    /// Adds a fresh block (does not change the insertion point).
    pub fn add_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Sets the insertion point to the end of `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no insertion point was set.
    pub fn current(&self) -> BlockId {
        self.cur.expect("no insertion block set")
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction, for surgery the
    /// convenience methods do not cover (e.g. hoisting allocas into the
    /// entry block).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Emits a raw instruction at the insertion point.
    pub fn emit(&mut self, inst: Inst) -> Value {
        let b = self.current();
        let id = self.func.push_inst(b, inst);
        Value::Inst(id)
    }

    /// Emits a raw instruction and returns its id rather than a value.
    pub fn emit_id(&mut self, inst: Inst) -> InstId {
        let b = self.current();
        self.func.push_inst(b, inst)
    }

    /// Emits a binary operation; the result type is the type of `lhs`.
    pub fn binop(&mut self, op: Op, lhs: Value, rhs: Value) -> Value {
        let ty = self.func.value_type(&lhs);
        self.emit(Inst::new(op, ty, vec![lhs, rhs]))
    }

    /// Emits an integer comparison.
    pub fn icmp(&mut self, pred: Cmp, lhs: Value, rhs: Value) -> Value {
        let mut inst = Inst::new(Op::ICmp, Type::I1, vec![lhs, rhs]);
        inst.pred = Some(pred);
        self.emit(inst)
    }

    /// Emits a floating-point comparison.
    pub fn fcmp(&mut self, pred: Cmp, lhs: Value, rhs: Value) -> Value {
        let mut inst = Inst::new(Op::FCmp, Type::I1, vec![lhs, rhs]);
        inst.pred = Some(pred);
        self.emit(inst)
    }

    /// Emits an `alloca` of `count` elements of `elem`, yielding a pointer.
    pub fn alloca(&mut self, elem: Type, count: Value) -> Value {
        self.emit(Inst::new(Op::Alloca, Type::ptr(elem), vec![count]))
    }

    /// Emits a load through `ptr`.
    ///
    /// # Panics
    ///
    /// Panics if `ptr` is not pointer-typed.
    pub fn load(&mut self, ptr: Value) -> Value {
        let ty = self
            .func
            .value_type(&ptr)
            .pointee()
            .expect("load from non-pointer")
            .clone();
        self.emit(Inst::new(Op::Load, ty, vec![ptr]))
    }

    /// Emits a store of `value` through `ptr`.
    pub fn store(&mut self, value: Value, ptr: Value) {
        self.emit(Inst::new(Op::Store, Type::Void, vec![value, ptr]));
    }

    /// Emits element-wise pointer arithmetic.
    pub fn gep(&mut self, ptr: Value, index: Value) -> Value {
        let ty = self.func.value_type(&ptr);
        self.emit(Inst::new(Op::Gep, ty, vec![ptr, index]))
    }

    /// Emits a cast of `value` to `to`.
    pub fn cast(&mut self, op: Op, value: Value, to: Type) -> Value {
        debug_assert!(op.is_cast(), "cast builder used with {op}");
        self.emit(Inst::new(op, to, vec![value]))
    }

    /// Emits a direct call.
    pub fn call(&mut self, callee: &str, ret: Type, args: Vec<Value>) -> Value {
        let mut inst = Inst::new(Op::Call, ret, args);
        inst.callee = Some(callee.to_string());
        self.emit(inst)
    }

    /// Emits a `select`.
    pub fn select(&mut self, cond: Value, if_true: Value, if_false: Value) -> Value {
        let ty = self.func.value_type(&if_true);
        self.emit(Inst::new(Op::Select, ty, vec![cond, if_true, if_false]))
    }

    /// Emits a phi node; `incoming` pairs values with predecessor blocks.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(Value, BlockId)>) -> Value {
        let (args, blocks) = incoming.into_iter().unzip();
        let inst = Inst {
            op: Op::Phi,
            ty,
            args,
            blocks,
            pred: None,
            callee: None,
        };
        self.emit(inst)
    }

    /// Emits an unconditional branch to `target`.
    pub fn br(&mut self, target: BlockId) {
        let mut inst = Inst::new(Op::Br, Type::Void, vec![]);
        inst.blocks = vec![target];
        self.emit(inst);
    }

    /// Emits a conditional branch.
    pub fn condbr(&mut self, cond: Value, then_b: BlockId, else_b: BlockId) {
        let mut inst = Inst::new(Op::CondBr, Type::Void, vec![cond]);
        inst.blocks = vec![then_b, else_b];
        self.emit(inst);
    }

    /// Emits a switch; `cases` pairs constants with targets.
    pub fn switch(&mut self, scrutinee: Value, default: BlockId, cases: Vec<(Value, BlockId)>) {
        let mut args = vec![scrutinee];
        let mut blocks = vec![default];
        for (v, b) in cases {
            args.push(v);
            blocks.push(b);
        }
        let inst = Inst {
            op: Op::Switch,
            ty: Type::Void,
            args,
            blocks,
            pred: None,
            callee: None,
        };
        self.emit(inst);
    }

    /// Emits a return.
    pub fn ret(&mut self, value: Option<Value>) {
        let args = value.into_iter().collect();
        self.emit(Inst::new(Op::Ret, Type::Void, args));
    }

    /// Emits `unreachable`.
    pub fn unreachable(&mut self) {
        self.emit(Inst::new(Op::Unreachable, Type::Void, vec![]));
    }

    /// True if the current block already ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        match self.cur {
            Some(b) => self.func.terminator(b).is_some(),
            None => false,
        }
    }

    /// Finishes construction and yields the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_diamond() {
        let mut b = FunctionBuilder::new("abs", vec![Type::I64], Type::I64);
        let entry = b.add_block();
        let neg = b.add_block();
        let join = b.add_block();
        b.switch_to(entry);
        let zero = Value::const_int(Type::I64, 0);
        let c = b.icmp(Cmp::Slt, Value::Param(0), zero.clone());
        b.condbr(c, neg, join);
        b.switch_to(neg);
        let n = b.binop(Op::Sub, zero, Value::Param(0));
        b.br(join);
        b.switch_to(join);
        let p = b.phi(Type::I64, vec![(Value::Param(0), entry), (n, neg)]);
        b.ret(Some(p));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.successors(entry), vec![neg, join]);
        let phis = f.phis(join);
        assert_eq!(phis.len(), 1);
    }

    #[test]
    fn load_infers_pointee_type() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I32);
        let e = b.add_block();
        b.switch_to(e);
        let p = b.alloca(Type::I32, Value::const_int(Type::I64, 1));
        let v = b.load(p.clone());
        assert_eq!(b.func().value_type(&v), Type::I32);
        b.store(v.clone(), p);
        b.ret(Some(v));
        assert!(b.is_terminated());
    }

    #[test]
    fn switch_pairs_cases_with_targets() {
        let mut b = FunctionBuilder::new("s", vec![Type::I32], Type::Void);
        let e = b.add_block();
        let d = b.add_block();
        let c1 = b.add_block();
        b.switch_to(e);
        b.switch(
            Value::Param(0),
            d,
            vec![(Value::const_int(Type::I32, 7), c1)],
        );
        let f = b.func();
        let t = f.terminator(e).unwrap();
        assert_eq!(f.inst(t).args.len(), 2);
        assert_eq!(f.inst(t).blocks, vec![d, c1]);
    }
}
