//! Dominator tree and dominance frontiers, via the Cooper–Harvey–Kennedy
//! iterative algorithm ("A Simple, Fast Dominance Algorithm").

use crate::cfg::reverse_post_order;
use crate::module::Function;
use crate::value::BlockId;
use std::collections::HashMap;

/// The dominator tree of a function, plus dominance frontiers.
///
/// Only reachable blocks appear; query methods return sensible defaults for
/// unreachable blocks (they dominate nothing and have empty frontiers).
///
/// # Examples
///
/// ```
/// use yali_ir::{FunctionBuilder, Type, Value, DomTree};
/// let mut b = FunctionBuilder::new("f", vec![Type::I1], Type::Void);
/// let e = b.add_block();
/// let t = b.add_block();
/// b.switch_to(e);
/// b.condbr(Value::Param(0), t, t);
/// b.switch_to(t);
/// b.ret(None);
/// let f = b.finish();
/// let dt = DomTree::build(&f);
/// assert!(dt.dominates(e, t));
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    rpo: Vec<BlockId>,
    rpo_index: HashMap<BlockId, usize>,
    idom: HashMap<BlockId, BlockId>,
    children: HashMap<BlockId, Vec<BlockId>>,
    frontier: HashMap<BlockId, Vec<BlockId>>,
}

impl DomTree {
    /// Computes dominators and frontiers for `f`.
    pub fn build(f: &Function) -> DomTree {
        let rpo = reverse_post_order(f);
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        if rpo.is_empty() {
            return DomTree {
                rpo,
                rpo_index,
                idom,
                children: HashMap::new(),
                frontier: HashMap::new(),
            };
        }
        let entry = rpo[0];
        idom.insert(entry, entry);
        let preds = f.predecessors();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                    if !idom.contains_key(&p) {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        // Dominator tree children.
        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, &d) in &idom {
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        for c in children.values_mut() {
            c.sort();
        }
        // Dominance frontiers.
        let mut frontier: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &rpo {
            let ps = preds.get(&b).map(Vec::as_slice).unwrap_or(&[]);
            if ps.len() < 2 {
                continue;
            }
            for &p in ps {
                if !idom.contains_key(&p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom[&b] {
                    let fr = frontier.entry(runner).or_default();
                    if !fr.contains(&b) {
                        fr.push(b);
                    }
                    runner = idom[&runner];
                }
            }
        }
        DomTree {
            rpo,
            rpo_index,
            idom,
            children,
            frontier,
        }
    }

    /// Blocks in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// The immediate dominator of `b` (the entry's idom is itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(&b).copied()
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        self.children.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The dominance frontier of `b`.
    pub fn frontier(&self, b: BlockId) -> &[BlockId] {
        self.frontier.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.rpo_index.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &HashMap<BlockId, BlockId>,
    rpo_index: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;

    /// entry -> {l, r} -> join -> exit, the classic diamond.
    fn diamond() -> (Function, [BlockId; 4]) {
        let mut b = FunctionBuilder::new("d", vec![Type::I1], Type::Void);
        let e = b.add_block();
        let l = b.add_block();
        let r = b.add_block();
        let j = b.add_block();
        b.switch_to(e);
        b.condbr(Value::Param(0), l, r);
        b.switch_to(l);
        b.br(j);
        b.switch_to(r);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        (b.finish(), [e, l, r, j])
    }

    #[test]
    fn diamond_dominators() {
        let (f, [e, l, r, j]) = diamond();
        let dt = DomTree::build(&f);
        assert_eq!(dt.idom(l), Some(e));
        assert_eq!(dt.idom(r), Some(e));
        assert_eq!(dt.idom(j), Some(e));
        assert!(dt.dominates(e, j));
        assert!(!dt.dominates(l, j));
        assert!(dt.dominates(j, j));
    }

    #[test]
    fn diamond_frontiers() {
        let (f, [e, l, r, j]) = diamond();
        let dt = DomTree::build(&f);
        assert_eq!(dt.frontier(l), &[j]);
        assert_eq!(dt.frontier(r), &[j]);
        assert!(dt.frontier(e).is_empty());
        assert!(dt.frontier(j).is_empty());
    }

    #[test]
    fn loop_frontier_includes_header() {
        // entry -> header <-> body, header -> exit.
        let mut b = FunctionBuilder::new("l", vec![Type::I1], Type::Void);
        let e = b.add_block();
        let h = b.add_block();
        let body = b.add_block();
        let x = b.add_block();
        b.switch_to(e);
        b.br(h);
        b.switch_to(h);
        b.condbr(Value::Param(0), body, x);
        b.switch_to(body);
        b.br(h);
        b.switch_to(x);
        b.ret(None);
        let f = b.finish();
        let dt = DomTree::build(&f);
        assert_eq!(dt.idom(body), Some(h));
        assert_eq!(dt.frontier(body), &[h]);
        assert_eq!(dt.frontier(h), &[h]);
    }

    #[test]
    fn children_partition_the_tree() {
        let (f, [e, l, r, j]) = diamond();
        let dt = DomTree::build(&f);
        let mut kids = dt.children(e).to_vec();
        kids.sort();
        assert_eq!(kids, vec![l, r, j]);
    }
}
