//! The IR object model: modules, functions, basic blocks, and instructions.
//!
//! Instructions live in a per-function arena and are referenced by
//! [`InstId`]; basic blocks hold an ordered list of instruction ids and are
//! themselves referenced by [`BlockId`]. Removing an instruction from a block
//! leaves it in the arena as garbage — the verifier only inspects
//! instructions reachable through blocks, and passes that churn many
//! instructions can call [`Function::compact`] to drop garbage.
//!
//! # Operand conventions
//!
//! | opcode | `args` | `blocks` |
//! |--------|--------|----------|
//! | `ret` | `[]` or `[value]` | — |
//! | `br` | — | `[target]` |
//! | `condbr` | `[cond]` | `[then, else]` |
//! | `switch` | `[scrutinee, case0, case1, …]` | `[default, target0, target1, …]` |
//! | `alloca` | `[count]` | — (`ty` is the resulting pointer type) |
//! | `load` | `[ptr]` | — |
//! | `store` | `[value, ptr]` | — |
//! | `gep` | `[ptr, index]` | — (element-wise pointer arithmetic) |
//! | `phi` | incoming values | incoming blocks (parallel arrays) |
//! | `call` | actuals | — (`callee` holds the function name) |
//! | `select` | `[cond, if_true, if_false]` | — |
//! | `icmp`/`fcmp` | `[lhs, rhs]` | — (`pred` holds the predicate) |
//! | casts / `fneg` | `[value]` | — |
//! | binary ops | `[lhs, rhs]` | — |

use crate::opcode::{Cmp, Op};
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};
use std::collections::HashMap;

/// A single IR instruction.
///
/// See the [module documentation](self) for the operand conventions of each
/// opcode.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The opcode.
    pub op: Op,
    /// The result type ([`Type::Void`] when the instruction produces nothing).
    pub ty: Type,
    /// Value operands.
    pub args: Vec<Value>,
    /// Block operands: successor targets for terminators, incoming blocks
    /// for phis.
    pub blocks: Vec<BlockId>,
    /// Comparison predicate, for `icmp` and `fcmp`.
    pub pred: Option<Cmp>,
    /// Callee name, for `call`.
    pub callee: Option<String>,
}

impl Inst {
    /// Builds an instruction with value operands only.
    pub fn new(op: Op, ty: Type, args: Vec<Value>) -> Inst {
        Inst {
            op,
            ty,
            args,
            blocks: Vec::new(),
            pred: None,
            callee: None,
        }
    }

    /// True if the instruction terminates a block.
    pub fn is_terminator(&self) -> bool {
        self.op.is_terminator()
    }
}

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The instructions of the block, in execution order. The terminator,
    /// when present, is the last element.
    pub insts: Vec<InstId>,
}

/// A function: parameters, a return type, and a CFG of basic blocks.
///
/// A function with no blocks is a *declaration* (an external function such
/// as the runtime's `print_int`).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// The function name (no `@` sigil).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// The return type.
    pub ret: Type,
    insts: Vec<Inst>,
    blocks: Vec<Block>,
    order: Vec<BlockId>,
}

impl Function {
    /// Creates an empty function definition (add an entry block before use)
    /// or, if left without blocks, a declaration.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Type) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            insts: Vec::new(),
            blocks: Vec::new(),
            order: Vec::new(),
        }
    }

    /// True if this function has no body.
    pub fn is_declaration(&self) -> bool {
        self.order.is_empty()
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function is a declaration.
    pub fn entry(&self) -> BlockId {
        self.order[0]
    }

    /// Appends a fresh, empty basic block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        self.order.push(id);
        id
    }

    /// Adds `inst` to the arena without placing it in any block.
    pub fn new_inst(&mut self, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        id
    }

    /// Adds `inst` to the arena and appends it to block `b`.
    pub fn push_inst(&mut self, b: BlockId, inst: Inst) -> InstId {
        let id = self.new_inst(inst);
        self.blocks[b.index()].insts.push(id);
        id
    }

    /// Inserts an arena instruction at position `pos` of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is past the end of the block.
    pub fn insert_inst(&mut self, b: BlockId, pos: usize, id: InstId) {
        self.blocks[b.index()].insts.insert(pos, id);
    }

    /// Removes instruction `id` from block `b` (it stays in the arena).
    pub fn remove_from_block(&mut self, b: BlockId, id: InstId) {
        self.blocks[b.index()].insts.retain(|&i| i != id);
    }

    /// Immutable access to an instruction.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Immutable access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// The blocks in layout order (entry first).
    pub fn block_order(&self) -> &[BlockId] {
        &self.order
    }

    /// Reorders the layout. `order` must be a permutation of a subset of the
    /// existing block ids that still starts with an entry block; unlisted
    /// blocks become unreachable garbage.
    pub fn set_block_order(&mut self, order: Vec<BlockId>) {
        self.order = order;
    }

    /// Number of blocks currently in the layout.
    pub fn num_blocks(&self) -> usize {
        self.order.len()
    }

    /// Total instructions currently placed in blocks.
    pub fn num_insts(&self) -> usize {
        self.order
            .iter()
            .map(|b| self.blocks[b.index()].insts.len())
            .sum()
    }

    /// Iterates over `(block, inst)` pairs in layout order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.order.iter().flat_map(move |&b| {
            self.blocks[b.index()]
                .insts
                .iter()
                .map(move |&i| (b, i))
        })
    }

    /// The terminator of block `b`, if the block ends in one.
    pub fn terminator(&self, b: BlockId) -> Option<InstId> {
        let last = *self.blocks[b.index()].insts.last()?;
        self.insts[last.index()].is_terminator().then_some(last)
    }

    /// The control-flow successors of block `b`.
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.terminator(b) {
            Some(t) => self.insts[t.index()].blocks.clone(),
            None => Vec::new(),
        }
    }

    /// A map from block to its predecessors, for all blocks in layout order.
    ///
    /// A block appears at most once per predecessor even when multiple CFG
    /// edges connect the pair (e.g. a `condbr` with identical targets, or a
    /// `switch` with several cases sharing a block) — phis are keyed by
    /// predecessor block, so one incoming entry covers all parallel edges.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> =
            self.order.iter().map(|&b| (b, Vec::new())).collect();
        for &b in &self.order {
            let mut succs = self.successors(b);
            succs.sort();
            succs.dedup();
            for s in succs {
                preds.entry(s).or_default().push(b);
            }
        }
        preds
    }

    /// The static type of a value in the context of this function.
    pub fn value_type(&self, v: &Value) -> Type {
        match v {
            Value::Inst(id) => self.insts[id.index()].ty.clone(),
            Value::Param(i) => self.params[*i as usize].clone(),
            Value::ConstInt(ty, _) => ty.clone(),
            Value::ConstFloat(_) => Type::F64,
            Value::Undef(ty) => ty.clone(),
        }
    }

    /// Replaces every use of instruction `from` (as a [`Value::Inst`]
    /// operand) with `to`, across the whole function.
    pub fn replace_all_uses(&mut self, from: InstId, to: &Value) {
        for inst in &mut self.insts {
            for arg in &mut inst.args {
                if arg.as_inst() == Some(from) {
                    *arg = to.clone();
                }
            }
        }
    }

    /// Rebuilds the arenas, dropping instructions not placed in any ordered
    /// block and blocks not in the layout. Ids are renumbered densely.
    pub fn compact(&mut self) {
        let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
        let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
        for (new_b, &old_b) in self.order.iter().enumerate() {
            block_map.insert(old_b, BlockId(new_b as u32));
        }
        let mut new_insts: Vec<Inst> = Vec::with_capacity(self.num_insts());
        let mut new_blocks: Vec<Block> = Vec::with_capacity(self.order.len());
        for &old_b in &self.order {
            let mut nb = Block::default();
            for &old_i in &self.blocks[old_b.index()].insts {
                let new_i = InstId(new_insts.len() as u32);
                inst_map.insert(old_i, new_i);
                new_insts.push(self.insts[old_i.index()].clone());
                nb.insts.push(new_i);
            }
            new_blocks.push(nb);
        }
        for inst in &mut new_insts {
            for arg in &mut inst.args {
                if let Value::Inst(id) = arg {
                    *id = *inst_map
                        .get(id)
                        .unwrap_or_else(|| panic!("compact: dangling use of {id:?}"));
                }
            }
            for b in &mut inst.blocks {
                *b = *block_map
                    .get(b)
                    .unwrap_or_else(|| panic!("compact: dangling block ref {b:?}"));
            }
        }
        self.insts = new_insts;
        self.blocks = new_blocks;
        self.order = (0..self.blocks.len() as u32).map(BlockId).collect();
    }

    /// Retargets every phi in block `b` that lists `from` as an incoming
    /// block so it lists `to` instead.
    pub fn retarget_phis(&mut self, b: BlockId, from: BlockId, to: BlockId) {
        let ids: Vec<InstId> = self.blocks[b.index()].insts.clone();
        for id in ids {
            let inst = &mut self.insts[id.index()];
            if inst.op != Op::Phi {
                break;
            }
            for blk in &mut inst.blocks {
                if *blk == from {
                    *blk = to;
                }
            }
        }
    }

    /// The phi instructions at the head of block `b`.
    pub fn phis(&self, b: BlockId) -> Vec<InstId> {
        self.blocks[b.index()]
            .insts
            .iter()
            .copied()
            .take_while(|&i| self.insts[i.index()].op == Op::Phi)
            .collect()
    }
}

/// A translation unit: a named collection of functions.
///
/// # Examples
///
/// ```
/// use yali_ir::{Module, Function, Type};
/// let mut m = Module::new("demo");
/// m.add_function(Function::new("main", vec![], Type::I32));
/// assert!(m.function("main").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// The module name.
    pub name: String,
    /// Functions, definitions and declarations alike.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Adds a function, returning its index.
    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// Looks a function up by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Iterates over function definitions (skipping declarations).
    pub fn definitions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| !f.is_declaration())
    }

    /// Total instruction count across all definitions.
    pub fn num_insts(&self) -> usize {
        self.definitions().map(Function::num_insts).sum()
    }

    /// Ensures a declaration for the named runtime function exists.
    pub fn declare(&mut self, name: &str, params: Vec<Type>, ret: Type) {
        if self.function(name).is_none() {
            self.functions.push(Function::new(name, params, ret));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_fn() -> Function {
        let mut f = Function::new("f", vec![Type::I32], Type::I32);
        let e = f.add_block();
        let x = f.add_block();
        let add = f.push_inst(
            e,
            Inst::new(
                Op::Add,
                Type::I32,
                vec![Value::Param(0), Value::const_int(Type::I32, 1)],
            ),
        );
        let mut br = Inst::new(Op::Br, Type::Void, vec![]);
        br.blocks = vec![x];
        f.push_inst(e, br);
        f.push_inst(x, Inst::new(Op::Ret, Type::Void, vec![Value::Inst(add)]));
        f
    }

    #[test]
    fn successors_follow_terminators() {
        let f = two_block_fn();
        let e = f.entry();
        assert_eq!(f.successors(e), vec![BlockId(1)]);
        assert_eq!(f.successors(BlockId(1)), vec![]);
    }

    #[test]
    fn predecessors_invert_successors() {
        let f = two_block_fn();
        let preds = f.predecessors();
        assert_eq!(preds[&BlockId(1)], vec![BlockId(0)]);
        assert!(preds[&BlockId(0)].is_empty());
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = two_block_fn();
        let add = InstId(0);
        f.replace_all_uses(add, &Value::const_int(Type::I32, 9));
        let ret = f.block(BlockId(1)).insts[0];
        assert_eq!(f.inst(ret).args[0], Value::const_int(Type::I32, 9));
    }

    #[test]
    fn compact_drops_garbage() {
        let mut f = two_block_fn();
        // An instruction never placed in a block is garbage.
        f.new_inst(Inst::new(Op::Mul, Type::I32, vec![Value::Param(0), Value::Param(0)]));
        let before = f.num_insts();
        f.compact();
        assert_eq!(f.num_insts(), before);
        assert_eq!(f.block_order(), &[BlockId(0), BlockId(1)]);
    }

    #[test]
    fn value_type_covers_all_variants() {
        let f = two_block_fn();
        assert_eq!(f.value_type(&Value::Param(0)), Type::I32);
        assert_eq!(f.value_type(&Value::Inst(InstId(0))), Type::I32);
        assert_eq!(f.value_type(&Value::ConstFloat(1.0)), Type::F64);
        assert_eq!(f.value_type(&Value::Undef(Type::I8)), Type::I8);
    }

    #[test]
    fn module_lookup_and_declare() {
        let mut m = Module::new("m");
        m.declare("print_int", vec![Type::I64], Type::Void);
        m.declare("print_int", vec![Type::I64], Type::Void);
        assert_eq!(m.functions.len(), 1);
        assert!(m.function("print_int").unwrap().is_declaration());
        assert_eq!(m.definitions().count(), 0);
    }

    #[test]
    fn declarations_have_no_entry() {
        let f = Function::new("ext", vec![], Type::Void);
        assert!(f.is_declaration());
    }
}
