//! # yali-ir
//!
//! A miniature, LLVM-flavoured intermediate representation: the substrate on
//! which the whole *yali* reproduction of "A Game-Based Framework to Compare
//! Program Classifiers and Evaders" (CGO 2023) operates.
//!
//! The crate provides:
//!
//! - the IR object model ([`Module`], [`Function`], [`Block`], [`Inst`],
//!   [`Value`]) with a 63-opcode instruction set mirroring LLVM's taxonomy
//!   ([`Op`]);
//! - a builder API ([`FunctionBuilder`]);
//! - textual printing ([`print_module`]) and parsing ([`parse_module`]);
//! - CFG analyses ([`mod@cfg`], [`DomTree`]);
//! - a verifier ([`verify_module`]) enforcing SSA well-formedness;
//! - a reference interpreter ([`interp`]) with a deterministic cost model.
//!
//! # Example
//!
//! ```
//! use yali_ir::{FunctionBuilder, Module, Type, Value, Op, verify_module};
//! use yali_ir::interp::{run, Val, ExecConfig};
//!
//! let mut b = FunctionBuilder::new("double", vec![Type::I64], Type::I64);
//! let entry = b.add_block();
//! b.switch_to(entry);
//! let two = Value::const_int(Type::I64, 2);
//! let product = b.binop(Op::Mul, Value::Param(0), two);
//! b.ret(Some(product));
//!
//! let mut module = Module::new("example");
//! module.add_function(b.finish());
//! verify_module(&module)?;
//!
//! let out = run(&module, "double", &[Val::Int(21)], &[], &ExecConfig::default())?;
//! assert_eq!(out.ret, Some(Val::Int(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod hash;
pub mod interp;
pub mod module;
pub mod opcode;
pub mod parse;
pub mod print;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use dom::DomTree;
pub use hash::Fnv64;
pub use module::{Block, Function, Inst, Module};
pub use opcode::{Cmp, Op};
pub use parse::{parse_module, ParseError};
pub use print::{print_function, print_module};
pub use types::Type;
pub use value::{BlockId, InstId, Value};
pub use verify::{verify_module, VerifyError};
