//! The IR verifier: structural and SSA well-formedness checks.
//!
//! Every pass in `yali-opt` and `yali-obf` is required to keep modules
//! verifier-clean; the test suites enforce this invariant on randomly
//! generated programs.

use crate::dom::DomTree;
use crate::module::{Function, Module};
use crate::opcode::Op;
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A verifier diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function containing the fault.
    pub function: String,
    /// Description of the violated invariant.
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of @{} failed: {}", self.function, self.msg)
    }
}

impl Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first violated invariant found. Checked invariants:
///
/// - every block is non-empty and ends in exactly one terminator;
/// - phis appear only at block heads and their incoming blocks are exactly
///   the block's predecessors;
/// - branch targets are blocks in the layout;
/// - operands are well-typed for their opcode;
/// - calls name functions that exist, with matching arity and types;
/// - every use of an instruction result is dominated by its definition.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let sigs: HashMap<&str, (&[Type], &Type)> = m
        .functions
        .iter()
        .map(|f| (f.name.as_str(), (f.params.as_slice(), &f.ret)))
        .collect();
    for f in m.definitions() {
        verify_function(f, &sigs)?;
    }
    Ok(())
}

fn err(f: &Function, msg: impl Into<String>) -> VerifyError {
    VerifyError {
        function: f.name.clone(),
        msg: msg.into(),
    }
}

/// Verifies one function definition against the module's signatures.
pub fn verify_function(
    f: &Function,
    sigs: &HashMap<&str, (&[Type], &Type)>,
) -> Result<(), VerifyError> {
    if f.is_declaration() {
        return Ok(());
    }
    let layout: HashSet<BlockId> = f.block_order().iter().copied().collect();
    // Map from placed instruction to its block, and intra-block position.
    let mut placement: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for &b in f.block_order() {
        for (pos, &i) in f.block(b).insts.iter().enumerate() {
            if placement.insert(i, (b, pos)).is_some() {
                return Err(err(f, format!("instruction {i} placed twice")));
            }
        }
    }
    let preds = f.predecessors();
    for &b in f.block_order() {
        let insts = &f.block(b).insts;
        if insts.is_empty() {
            return Err(err(f, format!("block {b} is empty")));
        }
        let last = *insts.last().unwrap();
        if !f.inst(last).is_terminator() {
            return Err(err(f, format!("block {b} does not end in a terminator")));
        }
        let mut seen_non_phi = false;
        for (pos, &i) in insts.iter().enumerate() {
            let inst = f.inst(i);
            if inst.is_terminator() && pos + 1 != insts.len() {
                return Err(err(f, format!("terminator {i} in the middle of {b}")));
            }
            if inst.op == Op::Phi {
                if seen_non_phi {
                    return Err(err(f, format!("phi {i} after non-phi in {b}")));
                }
            } else {
                seen_non_phi = true;
            }
            for t in &inst.blocks {
                if !layout.contains(t) {
                    return Err(err(f, format!("{i} references block {t} not in layout")));
                }
            }
            check_types(f, i, sigs)?;
            if inst.op == Op::Phi {
                let mut incoming: Vec<BlockId> = inst.blocks.clone();
                incoming.sort();
                incoming.dedup();
                if incoming.len() != inst.blocks.len() {
                    return Err(err(f, format!("phi {i} has duplicate incoming blocks")));
                }
                let mut expect: Vec<BlockId> =
                    preds.get(&b).cloned().unwrap_or_default();
                expect.sort();
                expect.dedup();
                if incoming != expect {
                    return Err(err(
                        f,
                        format!(
                            "phi {i} incoming blocks {incoming:?} do not match predecessors {expect:?} of {b}"
                        ),
                    ));
                }
                if inst.args.len() != inst.blocks.len() {
                    return Err(err(f, format!("phi {i} arity mismatch")));
                }
            }
        }
    }
    // SSA dominance.
    let dt = DomTree::build(f);
    for &b in f.block_order() {
        if !dt.rpo().contains(&b) {
            continue; // unreachable code is exempt from dominance checks
        }
        for (pos, &i) in f.block(b).insts.iter().enumerate() {
            let inst = f.inst(i);
            if inst.op == Op::Phi {
                for (v, &ib) in inst.args.iter().zip(inst.blocks.iter()) {
                    if let Value::Inst(d) = v {
                        let Some(&(db, dpos)) = placement.get(d) else {
                            return Err(err(f, format!("phi {i} uses unplaced {d}")));
                        };
                        let ok = if db == ib {
                            true // defined in the incoming block itself
                        } else {
                            dt.dominates(db, ib)
                        };
                        if !ok && dt.rpo().contains(&ib) {
                            return Err(err(
                                f,
                                format!("phi {i}: def {d} (b{}/{dpos}) does not dominate incoming edge from {ib}", db.0),
                            ));
                        }
                    }
                }
                continue;
            }
            for v in &inst.args {
                if let Value::Inst(d) = v {
                    let Some(&(db, dpos)) = placement.get(d) else {
                        return Err(err(f, format!("{i} uses unplaced {d}")));
                    };
                    let ok = if db == b { dpos < pos } else { dt.dominates(db, b) };
                    if !ok {
                        return Err(err(
                            f,
                            format!("{i} in {b} uses {d} defined in {db} which does not dominate it"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_types(
    f: &Function,
    i: InstId,
    sigs: &HashMap<&str, (&[Type], &Type)>,
) -> Result<(), VerifyError> {
    let inst = f.inst(i);
    let ty = |v: &Value| f.value_type(v);
    let want = |cond: bool, msg: String| -> Result<(), VerifyError> {
        if cond {
            Ok(())
        } else {
            Err(err(f, msg))
        }
    };
    match inst.op {
        Op::Ret => {
            if f.ret.is_void() {
                want(inst.args.is_empty(), format!("{i}: ret with value in void function"))?;
            } else {
                want(inst.args.len() == 1, format!("{i}: ret missing value"))?;
                want(
                    ty(&inst.args[0]) == f.ret,
                    format!("{i}: ret type {} != {}", ty(&inst.args[0]), f.ret),
                )?;
            }
        }
        Op::Br => want(inst.blocks.len() == 1, format!("{i}: br needs 1 target"))?,
        Op::CondBr => {
            want(inst.args.len() == 1 && inst.blocks.len() == 2, format!("{i}: bad condbr shape"))?;
            want(ty(&inst.args[0]) == Type::I1, format!("{i}: condbr condition not i1"))?;
        }
        Op::Switch => {
            want(
                !inst.args.is_empty() && inst.args.len() == inst.blocks.len(),
                format!("{i}: bad switch shape"),
            )?;
            let sty = ty(&inst.args[0]);
            want(sty.is_int(), format!("{i}: switch scrutinee not integer"))?;
            for c in &inst.args[1..] {
                want(c.is_const(), format!("{i}: switch case not constant"))?;
                want(ty(c) == sty, format!("{i}: switch case type mismatch"))?;
            }
        }
        Op::Alloca => {
            want(inst.ty.is_ptr(), format!("{i}: alloca must yield pointer"))?;
            want(inst.args.len() == 1 && ty(&inst.args[0]).is_int(), format!("{i}: bad alloca count"))?;
        }
        Op::Load => {
            want(inst.args.len() == 1, format!("{i}: bad load shape"))?;
            let pty = ty(&inst.args[0]);
            want(
                pty.pointee() == Some(&inst.ty),
                format!("{i}: load {} from {}", inst.ty, pty),
            )?;
        }
        Op::Store => {
            want(inst.args.len() == 2, format!("{i}: bad store shape"))?;
            let vty = ty(&inst.args[0]);
            let pty = ty(&inst.args[1]);
            want(
                pty.pointee() == Some(&vty),
                format!("{i}: store {vty} into {pty}"),
            )?;
        }
        Op::Gep => {
            want(inst.args.len() == 2, format!("{i}: bad gep shape"))?;
            want(ty(&inst.args[0]).is_ptr(), format!("{i}: gep base not pointer"))?;
            want(ty(&inst.args[1]).is_int(), format!("{i}: gep index not integer"))?;
            want(inst.ty == ty(&inst.args[0]), format!("{i}: gep changes pointer type"))?;
        }
        Op::Phi => {
            for v in &inst.args {
                want(
                    ty(v) == inst.ty,
                    format!("{i}: phi operand type {} != {}", ty(v), inst.ty),
                )?;
            }
        }
        Op::Call => {
            let callee = inst
                .callee
                .as_deref()
                .ok_or_else(|| err(f, format!("{i}: call without callee")))?;
            let (params, ret) = sigs
                .get(callee)
                .ok_or_else(|| err(f, format!("{i}: call to unknown @{callee}")))?;
            want(
                inst.args.len() == params.len(),
                format!("{i}: call @{callee} arity {} != {}", inst.args.len(), params.len()),
            )?;
            for (a, p) in inst.args.iter().zip(params.iter()) {
                want(ty(a) == *p, format!("{i}: call @{callee} arg {} != {p}", ty(a)))?;
            }
            want(inst.ty == **ret, format!("{i}: call @{callee} result type mismatch"))?;
        }
        Op::ICmp => {
            want(inst.pred.map(|p| p.is_int()).unwrap_or(false), format!("{i}: icmp needs int predicate"))?;
            want(inst.args.len() == 2, format!("{i}: bad icmp shape"))?;
            let (a, b) = (ty(&inst.args[0]), ty(&inst.args[1]));
            want(a == b && (a.is_int() || a.is_ptr()), format!("{i}: icmp {a} vs {b}"))?;
            want(inst.ty == Type::I1, format!("{i}: icmp result not i1"))?;
        }
        Op::FCmp => {
            want(inst.pred.map(|p| !p.is_int()).unwrap_or(false), format!("{i}: fcmp needs float predicate"))?;
            want(inst.args.len() == 2, format!("{i}: bad fcmp shape"))?;
            want(
                ty(&inst.args[0]) == Type::F64 && ty(&inst.args[1]) == Type::F64,
                format!("{i}: fcmp on non-floats"),
            )?;
        }
        Op::Select => {
            want(inst.args.len() == 3, format!("{i}: bad select shape"))?;
            want(ty(&inst.args[0]) == Type::I1, format!("{i}: select condition not i1"))?;
            want(
                ty(&inst.args[1]) == inst.ty && ty(&inst.args[2]) == inst.ty,
                format!("{i}: select arm types differ from result"),
            )?;
        }
        Op::FNeg => {
            want(
                inst.args.len() == 1 && ty(&inst.args[0]) == Type::F64 && inst.ty == Type::F64,
                format!("{i}: bad fneg"),
            )?;
        }
        op if op.is_int_binop() => {
            want(inst.args.len() == 2, format!("{i}: bad binop shape"))?;
            let (a, b) = (ty(&inst.args[0]), ty(&inst.args[1]));
            want(
                a == b && a == inst.ty && a.is_int(),
                format!("{i}: {op} on {a}, {b} -> {}", inst.ty),
            )?;
        }
        op if op.is_float_binop() => {
            want(inst.args.len() == 2, format!("{i}: bad binop shape"))?;
            want(
                ty(&inst.args[0]) == Type::F64 && ty(&inst.args[1]) == Type::F64 && inst.ty == Type::F64,
                format!("{i}: {op} on non-floats"),
            )?;
        }
        op if op.is_cast() => {
            want(inst.args.len() == 1, format!("{i}: bad cast shape"))?;
            let from = ty(&inst.args[0]);
            let to = &inst.ty;
            let ok = match op {
                Op::Trunc => {
                    from.is_int() && to.is_int() && from.int_bits() > to.int_bits()
                }
                Op::ZExt | Op::SExt => {
                    from.is_int() && to.is_int() && from.int_bits() < to.int_bits()
                }
                Op::FpToUi | Op::FpToSi => from.is_float() && to.is_int(),
                Op::UiToFp | Op::SiToFp => from.is_int() && to.is_float(),
                Op::PtrToInt => from.is_ptr() && to.is_int(),
                Op::IntToPtr => from.is_int() && to.is_ptr(),
                Op::BitCast => from.is_ptr() && to.is_ptr(),
                _ => true, // fptrunc/fpext/addrspacecast: unused by the front end
            };
            want(ok, format!("{i}: invalid {op} from {from} to {to}"))?;
        }
        Op::Unreachable => {}
        op => {
            // Exotic opcodes are structurally unconstrained.
            let _ = op;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::module::Inst;
    use crate::opcode::Cmp;

    fn verify_one(f: Function) -> Result<(), VerifyError> {
        let mut m = Module::new("t");
        m.add_function(f);
        verify_module(&m)
    }

    #[test]
    fn accepts_well_formed_function() {
        let mut b = FunctionBuilder::new("ok", vec![Type::I64], Type::I64);
        let e = b.add_block();
        b.switch_to(e);
        let s = b.binop(Op::Add, Value::Param(0), Value::const_int(Type::I64, 1));
        b.ret(Some(s));
        assert!(verify_one(b.finish()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("bad", vec![], Type::Void);
        let e = f.add_block();
        f.push_inst(
            e,
            Inst::new(Op::Add, Type::I32, vec![
                Value::const_int(Type::I32, 1),
                Value::const_int(Type::I32, 2),
            ]),
        );
        let e = verify_one(f).unwrap_err();
        assert!(e.msg.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_type_mismatch_in_binop() {
        let mut f = Function::new("bad", vec![Type::I32], Type::I32);
        let e = f.add_block();
        let add = f.push_inst(
            e,
            Inst::new(Op::Add, Type::I32, vec![
                Value::Param(0),
                Value::const_int(Type::I64, 2),
            ]),
        );
        f.push_inst(e, Inst::new(Op::Ret, Type::Void, vec![Value::Inst(add)]));
        assert!(verify_one(f).is_err());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("bad", vec![], Type::I32);
        let e = f.add_block();
        // ret uses %v1 which is defined after it... actually place use of an
        // instruction that appears later in the same block.
        let later = f.new_inst(Inst::new(Op::Add, Type::I32, vec![
            Value::const_int(Type::I32, 1),
            Value::const_int(Type::I32, 2),
        ]));
        f.push_inst(e, Inst::new(Op::Ret, Type::Void, vec![Value::Inst(later)]));
        f.block_mut(e).insts.insert(0, later); // now: [add, ret] — fine
        assert!(verify_one(f.clone()).is_ok());
        // Swap so the use precedes the def.
        f.block_mut(e).insts.swap(0, 1);
        let err = verify_one(f).unwrap_err();
        assert!(err.msg.contains("terminator") || err.msg.contains("dominate"), "{err}");
    }

    #[test]
    fn rejects_phi_with_wrong_predecessors() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I1], Type::I32);
        let e = b.add_block();
        let t = b.add_block();
        let j = b.add_block();
        b.switch_to(e);
        b.condbr(Value::Param(0), t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        // Phi listing only one of the two predecessors.
        let p = b.phi(Type::I32, vec![(Value::const_int(Type::I32, 1), e)]);
        b.ret(Some(p));
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.msg.contains("predecessors"), "{err}");
    }

    #[test]
    fn rejects_call_to_unknown_function() {
        let mut b = FunctionBuilder::new("bad", vec![], Type::Void);
        let e = b.add_block();
        b.switch_to(e);
        b.call("ghost", Type::Void, vec![]);
        b.ret(None);
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.msg.contains("unknown"), "{err}");
    }

    #[test]
    fn accepts_calls_with_matching_signature() {
        let mut m = Module::new("t");
        m.declare("print_int", vec![Type::I64], Type::Void);
        let mut b = FunctionBuilder::new("main", vec![], Type::Void);
        let e = b.add_block();
        b.switch_to(e);
        b.call("print_int", Type::Void, vec![Value::const_int(Type::I64, 42)]);
        b.ret(None);
        m.add_function(b.finish());
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn rejects_condbr_on_non_bool() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I32], Type::Void);
        let e = b.add_block();
        let t = b.add_block();
        b.switch_to(e);
        b.condbr(Value::Param(0), t, t);
        b.switch_to(t);
        b.ret(None);
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.msg.contains("i1"), "{err}");
    }

    #[test]
    fn rejects_invalid_cast_direction() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I64], Type::Void);
        let e = b.add_block();
        b.switch_to(e);
        b.cast(Op::ZExt, Value::Param(0), Type::I32); // narrowing zext
        b.ret(None);
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.msg.contains("zext"), "{err}");
    }

    #[test]
    fn dominance_across_diamond_is_checked() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I1], Type::I32);
        let e = b.add_block();
        let l = b.add_block();
        let r = b.add_block();
        let j = b.add_block();
        b.switch_to(e);
        b.condbr(Value::Param(0), l, r);
        b.switch_to(l);
        let v = b.binop(Op::Add, Value::const_int(Type::I32, 1), Value::const_int(Type::I32, 2));
        b.br(j);
        b.switch_to(r);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(v)); // v does not dominate j
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.msg.contains("dominate"), "{err}");
    }

    #[test]
    fn icmp_cross_width_rejected() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I32, Type::I64], Type::Void);
        let e = b.add_block();
        b.switch_to(e);
        b.icmp(Cmp::Eq, Value::Param(0), Value::Param(1));
        b.ret(None);
        assert!(verify_one(b.finish()).is_err());
    }
}
