//! Instruction opcodes.
//!
//! The opcode set mirrors LLVM's instruction taxonomy. Exactly
//! [`Op::COUNT`] (= 63) opcodes exist, which is the dimensionality of the
//! `histogram` program embedding used throughout the paper ("a vector of 63
//! positions counting instruction opcodes"). A number of opcodes (the exotic
//! exception-handling and vector instructions) are never produced by the
//! MiniC front end, but they occupy histogram dimensions all the same — just
//! as scalar C code never touches `shufflevector` in real LLVM.

use std::fmt;

/// An instruction opcode.
///
/// # Examples
///
/// ```
/// use yali_ir::Op;
/// assert!(Op::Ret.is_terminator());
/// assert!(!Op::Add.is_terminator());
/// assert_eq!(Op::COUNT, 63);
/// assert_eq!(Op::ALL[Op::Mul.index()], Op::Mul);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Op {
    // Terminators.
    /// Return from the enclosing function, possibly with a value.
    Ret,
    /// Unconditional branch to a single successor block.
    Br,
    /// Two-way conditional branch on an `i1` operand.
    CondBr,
    /// Multi-way branch on an integer scrutinee.
    Switch,
    /// Branch through a computed address (never produced by the front end).
    IndirectBr,
    /// Call with exceptional continuation (never produced).
    Invoke,
    /// Resume exception propagation (never produced).
    Resume,
    /// Marker for unreachable control flow.
    Unreachable,
    // Unary.
    /// Floating-point negation.
    FNeg,
    // Integer arithmetic.
    /// Integer addition (wrapping).
    Add,
    /// Floating-point addition.
    FAdd,
    /// Integer subtraction (wrapping).
    Sub,
    /// Floating-point subtraction.
    FSub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Floating-point multiplication.
    FMul,
    /// Unsigned integer division.
    UDiv,
    /// Signed integer division.
    SDiv,
    /// Floating-point division.
    FDiv,
    /// Unsigned integer remainder.
    URem,
    /// Signed integer remainder.
    SRem,
    /// Floating-point remainder.
    FRem,
    // Bitwise.
    /// Left shift.
    Shl,
    /// Logical (zero-filling) right shift.
    LShr,
    /// Arithmetic (sign-extending) right shift.
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    // Memory.
    /// Stack allocation of `n` elements of a type; yields a pointer.
    Alloca,
    /// Load a value through a pointer.
    Load,
    /// Store a value through a pointer.
    Store,
    /// Element-wise pointer arithmetic (`getelementptr`).
    Gep,
    /// Memory fence (never produced).
    Fence,
    /// Atomic compare-and-exchange (never produced).
    AtomicCmpXchg,
    /// Atomic read-modify-write (never produced).
    AtomicRmw,
    // Casts.
    /// Integer truncation to a narrower width.
    Trunc,
    /// Zero extension to a wider width.
    ZExt,
    /// Sign extension to a wider width.
    SExt,
    /// Float to unsigned integer.
    FpToUi,
    /// Float to signed integer.
    FpToSi,
    /// Unsigned integer to float.
    UiToFp,
    /// Signed integer to float.
    SiToFp,
    /// Float truncation (never produced: one float width).
    FpTrunc,
    /// Float extension (never produced: one float width).
    FpExt,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer.
    IntToPtr,
    /// Type reinterpretation between same-width types.
    BitCast,
    /// Address-space cast (never produced).
    AddrSpaceCast,
    // Other.
    /// Integer comparison; the predicate lives in [`crate::Inst::pred`].
    ICmp,
    /// Floating-point comparison.
    FCmp,
    /// SSA phi node merging values from predecessor blocks.
    Phi,
    /// Direct call to a named function.
    Call,
    /// Two-way value selection on an `i1` condition.
    Select,
    /// Variadic argument access (never produced).
    VaArg,
    /// Vector element extraction (never produced).
    ExtractElement,
    /// Vector element insertion (never produced).
    InsertElement,
    /// Vector shuffle (never produced).
    ShuffleVector,
    /// Aggregate field extraction (never produced).
    ExtractValue,
    /// Aggregate field insertion (never produced).
    InsertValue,
    /// Landing pad for exceptions (never produced).
    LandingPad,
    /// Cleanup pad (never produced).
    CleanupPad,
    /// Catch pad (never produced).
    CatchPad,
    /// Stop propagation of poison values (never produced).
    Freeze,
    /// Call with branch continuations (never produced).
    CallBr,
}

impl Op {
    /// The number of opcodes — the dimensionality of opcode histograms.
    pub const COUNT: usize = 63;

    /// All opcodes, indexable by [`Op::index`].
    pub const ALL: [Op; Op::COUNT] = [
        Op::Ret,
        Op::Br,
        Op::CondBr,
        Op::Switch,
        Op::IndirectBr,
        Op::Invoke,
        Op::Resume,
        Op::Unreachable,
        Op::FNeg,
        Op::Add,
        Op::FAdd,
        Op::Sub,
        Op::FSub,
        Op::Mul,
        Op::FMul,
        Op::UDiv,
        Op::SDiv,
        Op::FDiv,
        Op::URem,
        Op::SRem,
        Op::FRem,
        Op::Shl,
        Op::LShr,
        Op::AShr,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Alloca,
        Op::Load,
        Op::Store,
        Op::Gep,
        Op::Fence,
        Op::AtomicCmpXchg,
        Op::AtomicRmw,
        Op::Trunc,
        Op::ZExt,
        Op::SExt,
        Op::FpToUi,
        Op::FpToSi,
        Op::UiToFp,
        Op::SiToFp,
        Op::FpTrunc,
        Op::FpExt,
        Op::PtrToInt,
        Op::IntToPtr,
        Op::BitCast,
        Op::AddrSpaceCast,
        Op::ICmp,
        Op::FCmp,
        Op::Phi,
        Op::Call,
        Op::Select,
        Op::VaArg,
        Op::ExtractElement,
        Op::InsertElement,
        Op::ShuffleVector,
        Op::ExtractValue,
        Op::InsertValue,
        Op::LandingPad,
        Op::CleanupPad,
        Op::CatchPad,
        Op::Freeze,
        Op::CallBr,
    ];

    /// The position of this opcode in [`Op::ALL`] and in opcode histograms.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The textual mnemonic, as used by the printer and parser.
    pub fn name(self) -> &'static str {
        match self {
            Op::Ret => "ret",
            Op::Br => "br",
            Op::CondBr => "condbr",
            Op::Switch => "switch",
            Op::IndirectBr => "indirectbr",
            Op::Invoke => "invoke",
            Op::Resume => "resume",
            Op::Unreachable => "unreachable",
            Op::FNeg => "fneg",
            Op::Add => "add",
            Op::FAdd => "fadd",
            Op::Sub => "sub",
            Op::FSub => "fsub",
            Op::Mul => "mul",
            Op::FMul => "fmul",
            Op::UDiv => "udiv",
            Op::SDiv => "sdiv",
            Op::FDiv => "fdiv",
            Op::URem => "urem",
            Op::SRem => "srem",
            Op::FRem => "frem",
            Op::Shl => "shl",
            Op::LShr => "lshr",
            Op::AShr => "ashr",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Alloca => "alloca",
            Op::Load => "load",
            Op::Store => "store",
            Op::Gep => "gep",
            Op::Fence => "fence",
            Op::AtomicCmpXchg => "cmpxchg",
            Op::AtomicRmw => "atomicrmw",
            Op::Trunc => "trunc",
            Op::ZExt => "zext",
            Op::SExt => "sext",
            Op::FpToUi => "fptoui",
            Op::FpToSi => "fptosi",
            Op::UiToFp => "uitofp",
            Op::SiToFp => "sitofp",
            Op::FpTrunc => "fptrunc",
            Op::FpExt => "fpext",
            Op::PtrToInt => "ptrtoint",
            Op::IntToPtr => "inttoptr",
            Op::BitCast => "bitcast",
            Op::AddrSpaceCast => "addrspacecast",
            Op::ICmp => "icmp",
            Op::FCmp => "fcmp",
            Op::Phi => "phi",
            Op::Call => "call",
            Op::Select => "select",
            Op::VaArg => "va_arg",
            Op::ExtractElement => "extractelement",
            Op::InsertElement => "insertelement",
            Op::ShuffleVector => "shufflevector",
            Op::ExtractValue => "extractvalue",
            Op::InsertValue => "insertvalue",
            Op::LandingPad => "landingpad",
            Op::CleanupPad => "cleanuppad",
            Op::CatchPad => "catchpad",
            Op::Freeze => "freeze",
            Op::CallBr => "callbr",
        }
    }

    /// Looks an opcode up by mnemonic.
    pub fn from_name(name: &str) -> Option<Op> {
        Op::ALL.iter().copied().find(|op| op.name() == name)
    }

    /// True for opcodes that must terminate a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Op::Ret
                | Op::Br
                | Op::CondBr
                | Op::Switch
                | Op::IndirectBr
                | Op::Invoke
                | Op::Resume
                | Op::Unreachable
                | Op::CallBr
        )
    }

    /// True for the binary integer arithmetic/bitwise opcodes.
    pub fn is_int_binop(self) -> bool {
        matches!(
            self,
            Op::Add
                | Op::Sub
                | Op::Mul
                | Op::UDiv
                | Op::SDiv
                | Op::URem
                | Op::SRem
                | Op::Shl
                | Op::LShr
                | Op::AShr
                | Op::And
                | Op::Or
                | Op::Xor
        )
    }

    /// True for the binary floating-point arithmetic opcodes.
    pub fn is_float_binop(self) -> bool {
        matches!(self, Op::FAdd | Op::FSub | Op::FMul | Op::FDiv | Op::FRem)
    }

    /// True for cast opcodes (one operand, result of a different type).
    pub fn is_cast(self) -> bool {
        matches!(
            self,
            Op::Trunc
                | Op::ZExt
                | Op::SExt
                | Op::FpToUi
                | Op::FpToSi
                | Op::UiToFp
                | Op::SiToFp
                | Op::FpTrunc
                | Op::FpExt
                | Op::PtrToInt
                | Op::IntToPtr
                | Op::BitCast
                | Op::AddrSpaceCast
        )
    }

    /// True for commutative binary opcodes.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Op::Add | Op::Mul | Op::And | Op::Or | Op::Xor | Op::FAdd | Op::FMul
        )
    }

    /// True for memory-touching opcodes.
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            Op::Alloca | Op::Load | Op::Store | Op::AtomicCmpXchg | Op::AtomicRmw | Op::Fence
        )
    }

    /// True for opcodes with side effects that dead-code elimination must
    /// preserve even when the result is unused.
    pub fn has_side_effects(self) -> bool {
        self.is_terminator()
            || matches!(
                self,
                Op::Store | Op::Call | Op::AtomicCmpXchg | Op::AtomicRmw | Op::Fence | Op::Alloca
            )
    }

    /// The abstract execution cost of the opcode, used by the interpreter's
    /// performance model (RQ6). Costs approximate relative latencies:
    /// divisions are expensive, memory has moderate cost, moves are cheap.
    pub fn cost(self) -> u64 {
        match self {
            Op::UDiv | Op::SDiv | Op::URem | Op::SRem => 24,
            Op::FDiv | Op::FRem => 30,
            Op::Mul => 3,
            Op::FMul | Op::FAdd | Op::FSub | Op::FNeg => 4,
            Op::Load | Op::Store => 4,
            Op::Call | Op::Invoke | Op::CallBr => 10,
            Op::Switch => 3,
            Op::CondBr => 2,
            Op::Alloca => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A comparison predicate for [`Op::ICmp`] and [`Op::FCmp`].
///
/// Integer predicates are the `Eq..Uge` prefix; float predicates are the
/// ordered `O*` group. Mirrors LLVM's `icmp`/`fcmp` predicate split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
    /// Ordered float equal.
    Oeq,
    /// Ordered float not equal.
    One,
    /// Ordered float less than.
    Olt,
    /// Ordered float less or equal.
    Ole,
    /// Ordered float greater than.
    Ogt,
    /// Ordered float greater or equal.
    Oge,
}

impl Cmp {
    /// All predicates.
    pub const ALL: [Cmp; 16] = [
        Cmp::Eq,
        Cmp::Ne,
        Cmp::Slt,
        Cmp::Sle,
        Cmp::Sgt,
        Cmp::Sge,
        Cmp::Ult,
        Cmp::Ule,
        Cmp::Ugt,
        Cmp::Uge,
        Cmp::Oeq,
        Cmp::One,
        Cmp::Olt,
        Cmp::Ole,
        Cmp::Ogt,
        Cmp::Oge,
    ];

    /// The textual mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            Cmp::Eq => "eq",
            Cmp::Ne => "ne",
            Cmp::Slt => "slt",
            Cmp::Sle => "sle",
            Cmp::Sgt => "sgt",
            Cmp::Sge => "sge",
            Cmp::Ult => "ult",
            Cmp::Ule => "ule",
            Cmp::Ugt => "ugt",
            Cmp::Uge => "uge",
            Cmp::Oeq => "oeq",
            Cmp::One => "one",
            Cmp::Olt => "olt",
            Cmp::Ole => "ole",
            Cmp::Ogt => "ogt",
            Cmp::Oge => "oge",
        }
    }

    /// Looks a predicate up by mnemonic.
    pub fn from_name(name: &str) -> Option<Cmp> {
        Cmp::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// True for the integer predicates.
    pub fn is_int(self) -> bool {
        matches!(
            self,
            Cmp::Eq
                | Cmp::Ne
                | Cmp::Slt
                | Cmp::Sle
                | Cmp::Sgt
                | Cmp::Sge
                | Cmp::Ult
                | Cmp::Ule
                | Cmp::Ugt
                | Cmp::Uge
        )
    }

    /// The predicate computing the logical negation (`a < b` ⇢ `a >= b`).
    pub fn negate(self) -> Cmp {
        match self {
            Cmp::Eq => Cmp::Ne,
            Cmp::Ne => Cmp::Eq,
            Cmp::Slt => Cmp::Sge,
            Cmp::Sle => Cmp::Sgt,
            Cmp::Sgt => Cmp::Sle,
            Cmp::Sge => Cmp::Slt,
            Cmp::Ult => Cmp::Uge,
            Cmp::Ule => Cmp::Ugt,
            Cmp::Ugt => Cmp::Ule,
            Cmp::Uge => Cmp::Ult,
            Cmp::Oeq => Cmp::One,
            Cmp::One => Cmp::Oeq,
            Cmp::Olt => Cmp::Oge,
            Cmp::Ole => Cmp::Ogt,
            Cmp::Ogt => Cmp::Ole,
            Cmp::Oge => Cmp::Olt,
        }
    }

    /// The predicate with swapped operands (`a < b` ⇢ `b > a`).
    pub fn swap(self) -> Cmp {
        match self {
            Cmp::Eq | Cmp::Ne | Cmp::Oeq | Cmp::One => self,
            Cmp::Slt => Cmp::Sgt,
            Cmp::Sle => Cmp::Sge,
            Cmp::Sgt => Cmp::Slt,
            Cmp::Sge => Cmp::Sle,
            Cmp::Ult => Cmp::Ugt,
            Cmp::Ule => Cmp::Uge,
            Cmp::Ugt => Cmp::Ult,
            Cmp::Uge => Cmp::Ule,
            Cmp::Olt => Cmp::Ogt,
            Cmp::Ole => Cmp::Oge,
            Cmp::Ogt => Cmp::Olt,
            Cmp::Oge => Cmp::Ole,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_63_opcodes() {
        assert_eq!(Op::ALL.len(), 63);
        assert_eq!(Op::COUNT, 63);
    }

    #[test]
    fn all_indices_are_consistent() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "index mismatch for {op}");
        }
    }

    #[test]
    fn names_round_trip() {
        for op in Op::ALL {
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
        assert_eq!(Op::from_name("nonsense"), None);
    }

    #[test]
    fn cmp_names_round_trip() {
        for c in Cmp::ALL {
            assert_eq!(Cmp::from_name(c.name()), Some(c));
        }
    }

    #[test]
    fn negate_is_involutive() {
        for c in Cmp::ALL {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn swap_is_involutive() {
        for c in Cmp::ALL {
            assert_eq!(c.swap().swap(), c);
        }
    }

    #[test]
    fn terminator_classification() {
        assert!(Op::Ret.is_terminator());
        assert!(Op::Switch.is_terminator());
        assert!(!Op::Add.is_terminator());
        assert!(!Op::Call.is_terminator());
    }

    #[test]
    fn side_effects_include_stores_and_calls() {
        assert!(Op::Store.has_side_effects());
        assert!(Op::Call.has_side_effects());
        assert!(!Op::Add.has_side_effects());
        assert!(!Op::Load.has_side_effects());
    }

    #[test]
    fn division_costs_more_than_addition() {
        assert!(Op::SDiv.cost() > Op::Add.cost());
        assert!(Op::FDiv.cost() > Op::FMul.cost());
    }
}
