//! SSA values: instruction results, parameters, and constants.

use crate::types::Type;
use std::fmt;

/// Identifies an instruction inside a [`crate::Function`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Identifies a basic block inside a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl InstId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%v{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// An SSA value: an operand of an instruction.
///
/// # Examples
///
/// ```
/// use yali_ir::{Type, Value};
/// let c = Value::const_int(Type::I32, 42);
/// assert_eq!(c.as_const_int(), Some(42));
/// assert!(c.is_const());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The result of the instruction with the given id.
    Inst(InstId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// An integer constant of the given type.
    ConstInt(Type, i64),
    /// A floating-point constant.
    ConstFloat(f64),
    /// An undefined value of the given type.
    Undef(Type),
}

impl Value {
    /// Builds an integer constant, wrapping `v` to the width of `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an integer type.
    pub fn const_int(ty: Type, v: i64) -> Value {
        let w = ty.wrap(v);
        Value::ConstInt(ty, w)
    }

    /// The canonical `i1` truth values.
    pub fn const_bool(b: bool) -> Value {
        Value::ConstInt(Type::I1, i64::from(b))
    }

    /// Returns the integer payload if this is an integer constant.
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Value::ConstInt(_, v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is a float constant.
    pub fn as_const_float(&self) -> Option<f64> {
        match self {
            Value::ConstFloat(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the instruction id if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// True for constants (including `undef`).
    pub fn is_const(&self) -> bool {
        matches!(
            self,
            Value::ConstInt(..) | Value::ConstFloat(_) | Value::Undef(_)
        )
    }

    /// True if this is the integer constant `v` (of any width).
    pub fn is_int(&self, v: i64) -> bool {
        self.as_const_int() == Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_int_wraps_to_width() {
        assert_eq!(Value::const_int(Type::I8, 300).as_const_int(), Some(44));
        assert_eq!(Value::const_int(Type::I1, 5).as_const_int(), Some(1));
    }

    #[test]
    fn bool_constants() {
        assert_eq!(Value::const_bool(true), Value::ConstInt(Type::I1, 1));
        assert_eq!(Value::const_bool(false), Value::ConstInt(Type::I1, 0));
    }

    #[test]
    fn classification() {
        assert!(Value::const_int(Type::I32, 1).is_const());
        assert!(Value::Undef(Type::I32).is_const());
        assert!(!Value::Param(0).is_const());
        assert!(!Value::Inst(InstId(3)).is_const());
        assert_eq!(Value::Inst(InstId(3)).as_inst(), Some(InstId(3)));
        assert!(Value::const_int(Type::I64, 7).is_int(7));
        assert!(!Value::ConstFloat(7.0).is_int(7));
    }
}
