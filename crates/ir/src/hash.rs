//! Structural content hashing for modules.
//!
//! [`Module::content_hash`] produces a 64-bit FNV-1a digest of everything an
//! embedding can observe: function signatures, block layout, and every
//! placed instruction's opcode, type, operands, successor blocks, predicate,
//! and callee. Two modules that are structurally identical hash equal; the
//! hash is **normalized**, so it is also insensitive to details embeddings
//! cannot see:
//!
//! - the module *name* (corpus samples are embedded irrespective of name);
//! - arena numbering: instruction and block ids are rewritten to their
//!   position in layout order, so garbage left behind by passes and
//!   `Function::compact` renumbering do not change the hash.
//!
//! The digest is a pure function of the structure — no addresses, no
//! `DefaultHasher` (whose keys are process-random) — so it is stable across
//! runs and platforms, making it usable as a persistent cache key.

use crate::module::{Function, Module};
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};
use std::collections::HashMap;

/// A 64-bit FNV-1a accumulator.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Fnv64 {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorbs a length-prefixed byte string (prefixing makes the encoding
    /// injective, so `"ab" + "c"` and `"a" + "bc"` digest differently).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

fn hash_type(h: &mut Fnv64, ty: &Type) {
    match ty {
        Type::Void => h.write_u8(0),
        Type::I1 => h.write_u8(1),
        Type::I8 => h.write_u8(2),
        Type::I32 => h.write_u8(3),
        Type::I64 => h.write_u8(4),
        Type::F64 => h.write_u8(5),
        Type::Ptr(elem) => {
            h.write_u8(6);
            hash_type(h, elem);
        }
    }
}

fn hash_value(h: &mut Fnv64, v: &Value, inst_pos: &HashMap<InstId, u64>) {
    match v {
        Value::Inst(id) => {
            h.write_u8(0);
            // Unplaced references cannot occur in verified IR; fold the raw
            // id in rather than panicking mid-hash.
            h.write_u64(inst_pos.get(id).copied().unwrap_or(u64::MAX - id.0 as u64));
        }
        Value::Param(i) => {
            h.write_u8(1);
            h.write_u64(*i as u64);
        }
        Value::ConstInt(ty, c) => {
            h.write_u8(2);
            hash_type(h, ty);
            h.write_u64(*c as u64);
        }
        Value::ConstFloat(f) => {
            h.write_u8(3);
            h.write_u64(f.to_bits());
        }
        Value::Undef(ty) => {
            h.write_u8(4);
            hash_type(h, ty);
        }
    }
}

fn hash_function(h: &mut Fnv64, f: &Function) {
    h.write_str(&f.name);
    h.write_u64(f.params.len() as u64);
    for p in &f.params {
        hash_type(h, p);
    }
    hash_type(h, &f.ret);

    // Normalize ids to layout positions so arena garbage and renumbering
    // are invisible.
    let inst_pos: HashMap<InstId, u64> = f
        .iter_insts()
        .enumerate()
        .map(|(pos, (_, id))| (id, pos as u64))
        .collect();
    let block_pos: HashMap<BlockId, u64> = f
        .block_order()
        .iter()
        .enumerate()
        .map(|(pos, &b)| (b, pos as u64))
        .collect();

    h.write_u64(f.block_order().len() as u64);
    for &b in f.block_order() {
        let block = f.block(b);
        h.write_u64(block.insts.len() as u64);
        for &i in &block.insts {
            let inst = f.inst(i);
            h.write_u64(inst.op.index() as u64);
            hash_type(h, &inst.ty);
            h.write_u64(inst.args.len() as u64);
            for arg in &inst.args {
                hash_value(h, arg, &inst_pos);
            }
            h.write_u64(inst.blocks.len() as u64);
            for tb in &inst.blocks {
                h.write_u64(block_pos.get(tb).copied().unwrap_or(u64::MAX - tb.0 as u64));
            }
            match inst.pred {
                Some(p) => {
                    h.write_u8(1);
                    h.write_u64(p as u64);
                }
                None => h.write_u8(0),
            }
            match &inst.callee {
                Some(c) => {
                    h.write_u8(1);
                    h.write_str(c);
                }
                None => h.write_u8(0),
            }
        }
    }
}

impl Module {
    /// A stable 64-bit structural digest of this module.
    ///
    /// Equal modules hash equal; any structural perturbation (an opcode, an
    /// operand, a constant, the block layout, a function name) almost
    /// surely changes the digest. The module's own `name` and arena
    /// numbering are excluded — see the [module docs](self) — which makes
    /// the digest suitable as a content-addressed cache key for embeddings.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.functions.len() as u64);
        for f in &self.functions {
            hash_function(&mut h, f);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Inst;
    use crate::opcode::Op;

    fn sample() -> Module {
        let mut f = Function::new("f", vec![Type::I64], Type::I64);
        let e = f.add_block();
        let t = f.add_block();
        let add = f.push_inst(
            e,
            Inst::new(
                Op::Add,
                Type::I64,
                vec![Value::Param(0), Value::const_int(Type::I64, 7)],
            ),
        );
        let mut br = Inst::new(Op::Br, Type::Void, vec![]);
        br.blocks = vec![t];
        f.push_inst(e, br);
        f.push_inst(t, Inst::new(Op::Ret, Type::Void, vec![Value::Inst(add)]));
        let mut m = Module::new("sample");
        m.add_function(f);
        m
    }

    #[test]
    fn equal_modules_hash_equal() {
        assert_eq!(sample().content_hash(), sample().content_hash());
        assert_eq!(sample().content_hash(), sample().clone().content_hash());
    }

    #[test]
    fn module_name_does_not_matter() {
        let mut renamed = sample();
        renamed.name = "other".into();
        assert_eq!(sample().content_hash(), renamed.content_hash());
    }

    #[test]
    fn arena_garbage_and_renumbering_do_not_matter() {
        let mut garbage = sample();
        let f = &mut garbage.functions[0];
        f.new_inst(Inst::new(
            Op::Mul,
            Type::I64,
            vec![Value::Param(0), Value::Param(0)],
        ));
        assert_eq!(sample().content_hash(), garbage.content_hash());
        let mut compacted = garbage.clone();
        compacted.functions[0].compact();
        assert_eq!(sample().content_hash(), compacted.content_hash());
    }

    #[test]
    fn perturbations_change_the_hash() {
        let base = sample().content_hash();

        let mut opcode = sample();
        opcode.functions[0].inst_mut(InstId(0)).op = Op::Sub;
        assert_ne!(base, opcode.content_hash());

        let mut constant = sample();
        constant.functions[0].inst_mut(InstId(0)).args[1] = Value::const_int(Type::I64, 8);
        assert_ne!(base, constant.content_hash());

        let mut fn_name = sample();
        fn_name.functions[0].name = "g".into();
        assert_ne!(base, fn_name.content_hash());

        let mut ty = sample();
        ty.functions[0].inst_mut(InstId(0)).ty = Type::I32;
        assert_ne!(base, ty.content_hash());

        let mut pred = sample();
        pred.functions[0].inst_mut(InstId(0)).pred = Some(crate::opcode::Cmp::Slt);
        assert_ne!(base, pred.content_hash());

        let mut extra_fn = sample();
        extra_fn.declare("print_int", vec![Type::I64], Type::Void);
        assert_ne!(base, extra_fn.content_hash());
    }

    #[test]
    fn hash_is_stable_across_runs() {
        // A pinned digest: fails if the hash ever picks up process-random
        // state (DefaultHasher keys, addresses) or the encoding changes
        // silently. Update deliberately if the encoding changes.
        let empty = Module::new("anything").content_hash();
        let mut h = Fnv64::new();
        h.write_u64(0); // zero functions
        assert_eq!(empty, h.finish());
        assert_eq!(sample().content_hash(), sample().content_hash());
    }

    #[test]
    fn fnv_primitives_are_injective_on_length() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
