//! The type system of the IR.
//!
//! The IR is typed, with a deliberately small lattice mirroring the subset of
//! LLVM types that C-like front ends produce for scalar code: `void`, integer
//! types of four widths, a double-precision float, and pointers.

use std::fmt;

/// A first-class IR type.
///
/// Pointers are typed (`ptr<i32>`), like classic (pre-opaque-pointer) LLVM.
/// Aggregates are not first-class: arrays exist only as allocated storage and
/// are accessed through [`Type::Ptr`] values produced by `alloca`/`gep`.
///
/// # Examples
///
/// ```
/// use yali_ir::Type;
/// let p = Type::ptr(Type::I32);
/// assert_eq!(p.pointee(), Some(&Type::I32));
/// assert!(Type::I32.is_int());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[derive(Default)]
pub enum Type {
    /// The absence of a value; the result type of instructions that produce
    /// nothing (e.g. `store`, `br`) and of functions that return nothing.
    #[default]
    Void,
    /// A one-bit boolean, the result of comparisons.
    I1,
    /// An 8-bit integer (characters).
    I8,
    /// A 32-bit integer.
    I32,
    /// A 64-bit integer.
    I64,
    /// A 64-bit IEEE-754 float.
    F64,
    /// A pointer to values of the element type.
    Ptr(Box<Type>),
}

impl Type {
    /// Builds a pointer type to `elem`.
    pub fn ptr(elem: Type) -> Type {
        Type::Ptr(Box::new(elem))
    }

    /// Returns the pointee type if `self` is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// True for the integer types `i1`, `i8`, `i32` and `i64`.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I32 | Type::I64)
    }

    /// True for `f64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F64)
    }

    /// True for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// True for `void`.
    pub fn is_void(&self) -> bool {
        matches!(self, Type::Void)
    }

    /// Bit width of integer types; `None` otherwise.
    pub fn int_bits(&self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }

    /// Wraps `v` to the value range of this integer type (two's complement).
    ///
    /// # Panics
    ///
    /// Panics if the type is not an integer type.
    pub fn wrap(&self, v: i64) -> i64 {
        match self {
            Type::I1 => v & 1,
            Type::I8 => v as i8 as i64,
            Type::I32 => v as i32 as i64,
            Type::I64 => v,
            _ => panic!("wrap on non-integer type {self}"),
        }
    }
}


impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr(t) => write!(f, "ptr<{t}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_names() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::ptr(Type::F64).to_string(), "ptr<f64>");
        assert_eq!(Type::ptr(Type::ptr(Type::I8)).to_string(), "ptr<ptr<i8>>");
    }

    #[test]
    fn predicates() {
        assert!(Type::I1.is_int());
        assert!(!Type::F64.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::ptr(Type::I32).is_ptr());
        assert!(Type::Void.is_void());
        assert_eq!(Type::ptr(Type::I32).pointee(), Some(&Type::I32));
        assert_eq!(Type::I32.pointee(), None);
    }

    #[test]
    fn wrap_respects_width() {
        assert_eq!(Type::I8.wrap(300), 44);
        assert_eq!(Type::I8.wrap(-129), 127);
        assert_eq!(Type::I1.wrap(3), 1);
        assert_eq!(Type::I32.wrap(1 << 40), 0);
        assert_eq!(Type::I64.wrap(i64::MIN), i64::MIN);
    }

    #[test]
    fn int_bits() {
        assert_eq!(Type::I1.int_bits(), Some(1));
        assert_eq!(Type::I64.int_bits(), Some(64));
        assert_eq!(Type::F64.int_bits(), None);
    }
}
