//! Control-flow-graph analyses: reachability and block orderings.

use crate::module::Function;
use crate::value::BlockId;
use std::collections::HashSet;

/// The set of blocks reachable from the entry.
pub fn reachable(f: &Function) -> HashSet<BlockId> {
    let mut seen = HashSet::new();
    if f.is_declaration() {
        return seen;
    }
    let mut stack = vec![f.entry()];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            stack.extend(f.successors(b));
        }
    }
    seen
}

/// Blocks in reverse post-order of a depth-first search from the entry.
///
/// Reverse post-order visits every block before its successors, except along
/// back edges, making it the canonical iteration order for forward data-flow
/// analyses.
pub fn reverse_post_order(f: &Function) -> Vec<BlockId> {
    let mut post = Vec::new();
    let mut seen = HashSet::new();
    if f.is_declaration() {
        return post;
    }
    // Iterative DFS with an explicit "exit" marker to produce post-order.
    let mut stack: Vec<(BlockId, bool)> = vec![(f.entry(), false)];
    while let Some((b, exiting)) = stack.pop() {
        if exiting {
            post.push(b);
            continue;
        }
        if !seen.insert(b) {
            continue;
        }
        stack.push((b, true));
        // Push successors in reverse so the first successor is visited first.
        let succs = f.successors(b);
        for s in succs.into_iter().rev() {
            if !seen.contains(&s) {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

/// Removes unreachable blocks from the layout, drops phi incomings from
/// removed predecessors, and compacts the function. Returns `true` if
/// anything changed.
pub fn prune_unreachable(f: &mut Function) -> bool {
    if f.is_declaration() {
        return false;
    }
    let live = reachable(f);
    if live.len() == f.num_blocks() {
        return false;
    }
    let order: Vec<BlockId> = f
        .block_order()
        .iter()
        .copied()
        .filter(|b| live.contains(b))
        .collect();
    // Drop phi incomings that name dead predecessors.
    for &b in &order {
        let ids = f.phis(b);
        for id in ids {
            let inst = f.inst(id).clone();
            let keep: Vec<usize> = (0..inst.blocks.len())
                .filter(|&i| live.contains(&inst.blocks[i]))
                .collect();
            if keep.len() != inst.blocks.len() {
                let inst = f.inst_mut(id);
                inst.args = keep.iter().map(|&i| inst.args[i].clone()).collect();
                inst.blocks = keep.iter().map(|&i| inst.blocks[i]).collect();
            }
        }
    }
    f.set_block_order(order);
    f.compact();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Type::I1], Type::I32);
        let e = b.add_block();
        let l = b.add_block();
        let r = b.add_block();
        let j = b.add_block();
        b.switch_to(e);
        b.condbr(Value::Param(0), l, r);
        b.switch_to(l);
        b.br(j);
        b.switch_to(r);
        b.br(j);
        b.switch_to(j);
        b.ret(Some(Value::const_int(Type::I32, 0)));
        b.finish()
    }

    #[test]
    fn rpo_visits_entry_first_and_join_last() {
        let f = diamond();
        let rpo = reverse_post_order(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(rpo[3], BlockId(3));
    }

    #[test]
    fn unreachable_blocks_are_pruned() {
        let mut f = diamond();
        let dead = f.add_block();
        {
            let mut inst = crate::module::Inst::new(crate::Op::Br, Type::Void, vec![]);
            inst.blocks = vec![BlockId(3)];
            f.push_inst(dead, inst);
        }
        assert_eq!(f.num_blocks(), 5);
        assert!(prune_unreachable(&mut f));
        assert_eq!(f.num_blocks(), 4);
        assert!(!prune_unreachable(&mut f));
    }

    #[test]
    fn pruning_cleans_phis() {
        // entry -> join, plus a dead block also feeding the join's phi.
        let mut b = FunctionBuilder::new("p", vec![], Type::I32);
        let e = b.add_block();
        let dead = b.add_block();
        let j = b.add_block();
        b.switch_to(e);
        b.br(j);
        b.switch_to(dead);
        b.br(j);
        b.switch_to(j);
        let phi = b.phi(
            Type::I32,
            vec![
                (Value::const_int(Type::I32, 1), e),
                (Value::const_int(Type::I32, 2), dead),
            ],
        );
        b.ret(Some(phi));
        let mut f = b.finish();
        assert!(prune_unreachable(&mut f));
        let j_new = f.block_order()[1];
        let phis = f.phis(j_new);
        assert_eq!(f.inst(phis[0]).args.len(), 1);
    }

    #[test]
    fn reachable_of_declaration_is_empty() {
        let f = Function::new("ext", vec![], Type::Void);
        assert!(reachable(&f).is_empty());
        assert!(reverse_post_order(&f).is_empty());
    }
}
