//! A reference interpreter for the IR.
//!
//! The interpreter serves two roles in the reproduction:
//!
//! 1. **Semantic ground truth.** Property tests run programs before and
//!    after every optimization and obfuscation pass and require identical
//!    observable behaviour (return value and output stream).
//! 2. **The RQ6 performance model.** Each executed instruction contributes
//!    its [`crate::Op::cost`] to a deterministic cost counter, standing in for
//!    wall-clock time when comparing `-O3` and O-LLVM code (Figure 13).
//!
//! Programs perform I/O through the runtime functions `read_int`,
//! `read_float`, `print_int`, `print_char` and `print_float`, which the
//! interpreter implements natively.

use crate::module::{Function, Module};
use crate::opcode::{Cmp, Op};
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// A dynamic value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// An integer of any width (stored sign-extended).
    Int(i64),
    /// A float.
    Float(f64),
    /// A pointer: an index into the interpreter's flat memory.
    Ptr(usize),
    /// An undefined value.
    Undef,
}

impl Val {
    fn as_int(self) -> Result<i64, ExecError> {
        match self {
            Val::Int(v) => Ok(v),
            Val::Undef => Err(ExecError::UndefUsed),
            other => Err(ExecError::TypeError(format!("expected int, got {other:?}"))),
        }
    }

    fn as_float(self) -> Result<f64, ExecError> {
        match self {
            Val::Float(v) => Ok(v),
            Val::Undef => Err(ExecError::UndefUsed),
            other => Err(ExecError::TypeError(format!("expected float, got {other:?}"))),
        }
    }

    fn as_ptr(self) -> Result<usize, ExecError> {
        match self {
            Val::Ptr(v) => Ok(v),
            Val::Undef => Err(ExecError::UndefUsed),
            other => Err(ExecError::TypeError(format!("expected ptr, got {other:?}"))),
        }
    }
}

/// A runtime failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The step budget was exhausted (likely an infinite loop).
    OutOfFuel,
    /// Integer division or remainder by zero.
    DivByZero,
    /// A load or store outside allocated memory.
    BadMemory(usize),
    /// A call to a function that does not exist.
    MissingFunction(String),
    /// The input stream ran dry during `read_int`/`read_float`.
    InputExhausted,
    /// An arithmetic or control operation consumed `undef`.
    UndefUsed,
    /// Call depth exceeded the recursion limit.
    StackOverflow,
    /// A dynamic type confusion (indicates an IR bug; the verifier should
    /// have rejected the module).
    TypeError(String),
    /// An opcode the interpreter does not implement (the exotic tail of the
    /// opcode set, which the front end never emits).
    Unsupported(Op),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "out of fuel"),
            ExecError::DivByZero => write!(f, "division by zero"),
            ExecError::BadMemory(a) => write!(f, "invalid memory access at {a}"),
            ExecError::MissingFunction(n) => write!(f, "call to missing function @{n}"),
            ExecError::InputExhausted => write!(f, "input stream exhausted"),
            ExecError::UndefUsed => write!(f, "undef value consumed"),
            ExecError::StackOverflow => write!(f, "call stack overflow"),
            ExecError::TypeError(m) => write!(f, "dynamic type error: {m}"),
            ExecError::Unsupported(op) => write!(f, "unsupported opcode {op}"),
        }
    }
}

impl Error for ExecError {}

/// The observable result of a program run.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The value returned by the entry function, if any.
    pub ret: Option<Val>,
    /// Values printed through the runtime, in order.
    pub output: Vec<Val>,
    /// Accumulated abstract cost (the RQ6 "running time").
    pub cost: u64,
    /// Number of instructions executed.
    pub steps: u64,
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Maximum instructions to execute before [`ExecError::OutOfFuel`].
    pub fuel: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            fuel: 2_000_000,
            max_depth: 256,
        }
    }
}

struct Machine<'m> {
    module: &'m Module,
    mem: Vec<Val>,
    inputs: VecDeque<Val>,
    output: Vec<Val>,
    fuel: u64,
    cost: u64,
    steps: u64,
    max_depth: usize,
}

/// Runs `func` from `module` with the given arguments and input stream.
///
/// # Errors
///
/// Propagates any [`ExecError`] raised during execution (including running
/// out of the configured fuel).
///
/// # Examples
///
/// ```
/// use yali_ir::{parse_module, interp::{run, Val, ExecConfig}};
/// let m = parse_module("module \"m\"\n\ndefine i64 @twice(i64 %p0) {\nb0:\n  %v0 = add i64 %p0, %p0\n  ret %v0\n}\n")?;
/// let out = run(&m, "twice", &[Val::Int(21)], &[], &ExecConfig::default())?;
/// assert_eq!(out.ret, Some(Val::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run(
    module: &Module,
    func: &str,
    args: &[Val],
    inputs: &[Val],
    config: &ExecConfig,
) -> Result<Outcome, ExecError> {
    let f = module
        .function(func)
        .ok_or_else(|| ExecError::MissingFunction(func.to_string()))?;
    let mut machine = Machine {
        module,
        mem: Vec::new(),
        inputs: inputs.iter().copied().collect(),
        output: Vec::new(),
        fuel: config.fuel,
        cost: 0,
        steps: 0,
        max_depth: config.max_depth,
    };
    let ret = machine.call(f, args.to_vec(), 0);
    // Instruction-count hook: one counter bump per *run* (never per
    // instruction), so the interpreter loop itself stays untouched and
    // the disabled path costs a single relaxed load. Errored runs still
    // report the instructions they executed before failing.
    yali_obs::count!("ir.interp.runs", 1);
    yali_obs::count!("ir.interp.instructions", machine.steps);
    yali_obs::count!("ir.interp.cost", machine.cost);
    let ret = ret?;
    Ok(Outcome {
        ret,
        output: machine.output,
        cost: machine.cost,
        steps: machine.steps,
    })
}

impl<'m> Machine<'m> {
    fn call(
        &mut self,
        f: &'m Function,
        args: Vec<Val>,
        depth: usize,
    ) -> Result<Option<Val>, ExecError> {
        if depth > self.max_depth {
            return Err(ExecError::StackOverflow);
        }
        if f.is_declaration() {
            return self.runtime_call(&f.name, &args);
        }
        // Register file for this frame: one slot per arena instruction.
        let mut regs: Vec<Val> = vec![Val::Undef; f.iter_insts().count().max(1)];
        // Map InstId -> dense frame slot (arena may have garbage).
        let mut slot = std::collections::HashMap::new();
        for (n, (_, i)) in f.iter_insts().enumerate() {
            slot.insert(i, n);
        }
        let eval = |regs: &[Val], slot: &std::collections::HashMap<InstId, usize>, v: &Value| -> Val {
            match v {
                Value::Inst(id) => regs[slot[id]],
                Value::Param(i) => args[*i as usize],
                Value::ConstInt(_, v) => Val::Int(*v),
                Value::ConstFloat(v) => Val::Float(*v),
                Value::Undef(_) => Val::Undef,
            }
        };
        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;
        'blocks: loop {
            // Evaluate phis in parallel with respect to the previous block.
            let insts = f.block(block).insts.clone();
            let mut phi_vals: Vec<(InstId, Val)> = Vec::new();
            for &i in &insts {
                let inst = f.inst(i);
                if inst.op != Op::Phi {
                    break;
                }
                let from = prev.expect("phi in entry block");
                let idx = inst
                    .blocks
                    .iter()
                    .position(|&b| b == from)
                    .expect("phi missing incoming edge");
                phi_vals.push((i, eval(&regs, &slot, &inst.args[idx])));
            }
            for (i, v) in phi_vals {
                self.tick(Op::Phi)?;
                regs[slot[&i]] = v;
            }
            for &i in insts.iter().skip_while(|&&i| f.inst(i).op == Op::Phi) {
                let inst = f.inst(i);
                self.tick(inst.op)?;
                match inst.op {
                    Op::Phi => unreachable!("phi after skip"),
                    Op::Ret => {
                        return Ok(if inst.args.is_empty() {
                            None
                        } else {
                            Some(eval(&regs, &slot, &inst.args[0]))
                        });
                    }
                    Op::Br => {
                        prev = Some(block);
                        block = inst.blocks[0];
                        continue 'blocks;
                    }
                    Op::CondBr => {
                        let c = eval(&regs, &slot, &inst.args[0]).as_int()?;
                        prev = Some(block);
                        block = if c != 0 { inst.blocks[0] } else { inst.blocks[1] };
                        continue 'blocks;
                    }
                    Op::Switch => {
                        let s = eval(&regs, &slot, &inst.args[0]).as_int()?;
                        let mut target = inst.blocks[0];
                        for (c, &b) in inst.args[1..].iter().zip(&inst.blocks[1..]) {
                            if c.as_const_int() == Some(s) {
                                target = b;
                                break;
                            }
                        }
                        prev = Some(block);
                        block = target;
                        continue 'blocks;
                    }
                    Op::Unreachable => {
                        return Err(ExecError::TypeError("reached unreachable".into()))
                    }
                    Op::Alloca => {
                        let n = eval(&regs, &slot, &inst.args[0]).as_int()?;
                        if !(0..=1 << 24).contains(&n) {
                            return Err(ExecError::BadMemory(n as usize));
                        }
                        let base = self.mem.len();
                        self.mem.resize(base + n as usize, Val::Undef);
                        regs[slot[&i]] = Val::Ptr(base);
                    }
                    Op::Load => {
                        let p = eval(&regs, &slot, &inst.args[0]).as_ptr()?;
                        let v = *self.mem.get(p).ok_or(ExecError::BadMemory(p))?;
                        regs[slot[&i]] = v;
                    }
                    Op::Store => {
                        let v = eval(&regs, &slot, &inst.args[0]);
                        let p = eval(&regs, &slot, &inst.args[1]).as_ptr()?;
                        *self.mem.get_mut(p).ok_or(ExecError::BadMemory(p))? = v;
                    }
                    Op::Gep => {
                        let p = eval(&regs, &slot, &inst.args[0]).as_ptr()?;
                        let idx = eval(&regs, &slot, &inst.args[1]).as_int()?;
                        let addr = p as i64 + idx;
                        if addr < 0 {
                            return Err(ExecError::BadMemory(0));
                        }
                        regs[slot[&i]] = Val::Ptr(addr as usize);
                    }
                    Op::Call => {
                        let callee_name = inst.callee.as_deref().unwrap_or("");
                        let callee = self
                            .module
                            .function(callee_name)
                            .ok_or_else(|| ExecError::MissingFunction(callee_name.into()))?;
                        let actuals: Vec<Val> =
                            inst.args.iter().map(|a| eval(&regs, &slot, a)).collect();
                        let r = self.call(callee, actuals, depth + 1)?;
                        if let Some(v) = r {
                            regs[slot[&i]] = v;
                        }
                    }
                    Op::ICmp => {
                        let a = eval(&regs, &slot, &inst.args[0]);
                        let b = eval(&regs, &slot, &inst.args[1]);
                        let ty = f.value_type(&inst.args[0]);
                        regs[slot[&i]] = Val::Int(i64::from(icmp(
                            inst.pred.unwrap(),
                            a,
                            b,
                            &ty,
                        )?));
                    }
                    Op::FCmp => {
                        let a = eval(&regs, &slot, &inst.args[0]).as_float()?;
                        let b = eval(&regs, &slot, &inst.args[1]).as_float()?;
                        regs[slot[&i]] = Val::Int(i64::from(fcmp(inst.pred.unwrap(), a, b)));
                    }
                    Op::Select => {
                        let c = eval(&regs, &slot, &inst.args[0]).as_int()?;
                        regs[slot[&i]] = if c != 0 {
                            eval(&regs, &slot, &inst.args[1])
                        } else {
                            eval(&regs, &slot, &inst.args[2])
                        };
                    }
                    Op::FNeg => {
                        let v = eval(&regs, &slot, &inst.args[0]).as_float()?;
                        regs[slot[&i]] = Val::Float(-v);
                    }
                    op if op.is_int_binop() => {
                        let a = eval(&regs, &slot, &inst.args[0]).as_int()?;
                        let b = eval(&regs, &slot, &inst.args[1]).as_int()?;
                        regs[slot[&i]] = Val::Int(int_binop(op, a, b, &inst.ty)?);
                    }
                    op if op.is_float_binop() => {
                        let a = eval(&regs, &slot, &inst.args[0]).as_float()?;
                        let b = eval(&regs, &slot, &inst.args[1]).as_float()?;
                        regs[slot[&i]] = Val::Float(float_binop(op, a, b));
                    }
                    op if op.is_cast() => {
                        let v = eval(&regs, &slot, &inst.args[0]);
                        regs[slot[&i]] = cast(op, v, &f.value_type(&inst.args[0]), &inst.ty)?;
                    }
                    op => return Err(ExecError::Unsupported(op)),
                }
            }
            // Fall off the end of a block without terminator: verifier
            // rejects this, but guard anyway.
            return Err(ExecError::TypeError(format!(
                "block {block} fell through without terminator"
            )));
        }
    }

    fn tick(&mut self, op: Op) -> Result<(), ExecError> {
        if self.fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        self.fuel -= 1;
        self.steps += 1;
        self.cost += op.cost();
        Ok(())
    }

    fn runtime_call(&mut self, name: &str, args: &[Val]) -> Result<Option<Val>, ExecError> {
        match name {
            "print_int" | "print_char" => {
                self.output.push(args[0]);
                Ok(None)
            }
            "print_float" => {
                self.output.push(args[0]);
                Ok(None)
            }
            "read_int" => match self.inputs.pop_front() {
                Some(Val::Int(v)) => Ok(Some(Val::Int(v))),
                Some(Val::Float(v)) => Ok(Some(Val::Int(v as i64))),
                Some(_) => Err(ExecError::TypeError("read_int on non-int input".into())),
                None => Err(ExecError::InputExhausted),
            },
            "read_float" => match self.inputs.pop_front() {
                Some(Val::Float(v)) => Ok(Some(Val::Float(v))),
                Some(Val::Int(v)) => Ok(Some(Val::Float(v as f64))),
                Some(_) => Err(ExecError::TypeError("read_float on non-float input".into())),
                None => Err(ExecError::InputExhausted),
            },
            other => Err(ExecError::MissingFunction(other.to_string())),
        }
    }
}

fn unsigned(v: i64, ty: &Type) -> u64 {
    match ty.int_bits() {
        Some(64) | None => v as u64,
        Some(b) => (v as u64) & ((1u64 << b) - 1),
    }
}

fn icmp(pred: Cmp, a: Val, b: Val, ty: &Type) -> Result<bool, ExecError> {
    // Pointer comparisons compare addresses.
    let (ai, bi) = match (a, b) {
        (Val::Ptr(x), Val::Ptr(y)) => (x as i64, y as i64),
        _ => (a.as_int()?, b.as_int()?),
    };
    let (au, bu) = (unsigned(ai, ty), unsigned(bi, ty));
    Ok(match pred {
        Cmp::Eq => ai == bi,
        Cmp::Ne => ai != bi,
        Cmp::Slt => ai < bi,
        Cmp::Sle => ai <= bi,
        Cmp::Sgt => ai > bi,
        Cmp::Sge => ai >= bi,
        Cmp::Ult => au < bu,
        Cmp::Ule => au <= bu,
        Cmp::Ugt => au > bu,
        Cmp::Uge => au >= bu,
        other => {
            return Err(ExecError::TypeError(format!(
                "float predicate {other} in icmp"
            )))
        }
    })
}

fn fcmp(pred: Cmp, a: f64, b: f64) -> bool {
    match pred {
        Cmp::Oeq => a == b,
        Cmp::One => a != b && !a.is_nan() && !b.is_nan(),
        Cmp::Olt => a < b,
        Cmp::Ole => a <= b,
        Cmp::Ogt => a > b,
        Cmp::Oge => a >= b,
        // Integer predicates on floats never verify; treat as ordered.
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        _ => false,
    }
}

fn int_binop(op: Op, a: i64, b: i64, ty: &Type) -> Result<i64, ExecError> {
    let bits = ty.int_bits().unwrap_or(64);
    let shift_mask = (bits - 1) as i64;
    let raw = match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::SDiv => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            a.wrapping_div(b)
        }
        Op::UDiv => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            (unsigned(a, ty) / unsigned(b, ty)) as i64
        }
        Op::SRem => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            a.wrapping_rem(b)
        }
        Op::URem => {
            if b == 0 {
                return Err(ExecError::DivByZero);
            }
            (unsigned(a, ty) % unsigned(b, ty)) as i64
        }
        Op::Shl => a.wrapping_shl((b & shift_mask) as u32),
        Op::LShr => (unsigned(a, ty) >> (b & shift_mask) as u32) as i64,
        Op::AShr => a >> (b & shift_mask) as u32,
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        other => return Err(ExecError::Unsupported(other)),
    };
    Ok(ty.wrap(raw))
}

fn float_binop(op: Op, a: f64, b: f64) -> f64 {
    match op {
        Op::FAdd => a + b,
        Op::FSub => a - b,
        Op::FMul => a * b,
        Op::FDiv => a / b,
        Op::FRem => a % b,
        _ => unreachable!("non-float binop"),
    }
}

fn cast(op: Op, v: Val, from: &Type, to: &Type) -> Result<Val, ExecError> {
    Ok(match op {
        Op::Trunc => Val::Int(to.wrap(v.as_int()?)),
        Op::ZExt => Val::Int(unsigned(v.as_int()?, from) as i64),
        Op::SExt => Val::Int(v.as_int()?),
        Op::FpToSi | Op::FpToUi => {
            let f = v.as_float()?;
            let i = if f.is_nan() { 0 } else { f as i64 };
            Val::Int(to.wrap(i))
        }
        Op::SiToFp => Val::Float(v.as_int()? as f64),
        Op::UiToFp => Val::Float(unsigned(v.as_int()?, from) as f64),
        Op::PtrToInt => Val::Int(v.as_ptr()? as i64),
        Op::IntToPtr => {
            let i = v.as_int()?;
            if i < 0 {
                return Err(ExecError::BadMemory(0));
            }
            Val::Ptr(i as usize)
        }
        Op::BitCast => v,
        Op::FpTrunc | Op::FpExt => Val::Float(v.as_float()?),
        other => return Err(ExecError::Unsupported(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn run_src(src: &str, func: &str, args: &[Val], inputs: &[Val]) -> Result<Outcome, ExecError> {
        let m = parse_module(src).expect("parse");
        crate::verify::verify_module(&m).expect("verify");
        run(&m, func, args, inputs, &ExecConfig::default())
    }

    #[test]
    fn straight_line_arithmetic() {
        let out = run_src(
            "module \"m\"\n\ndefine i64 @f(i64 %p0) {\nb0:\n  %v0 = mul i64 %p0, i64 3\n  %v1 = add i64 %v0, i64 4\n  ret %v1\n}\n",
            "f",
            &[Val::Int(5)],
            &[],
        )
        .unwrap();
        assert_eq!(out.ret, Some(Val::Int(19)));
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn loop_sums_one_to_n() {
        let src = r#"module "m"

define i64 @sum(i64 %p0) {
b0:
  br b1
b1:
  %v1 = phi i64 [i64 0, b0], [%v4, b2]
  %v2 = phi i64 [i64 1, b0], [%v5, b2]
  %v3 = icmp sle %v2, %p0
  condbr %v3, b2, b3
b2:
  %v4 = add i64 %v1, %v2
  %v5 = add i64 %v2, i64 1
  br b1
b3:
  ret %v1
}
"#;
        let out = run_src(src, "sum", &[Val::Int(10)], &[]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(55)));
    }

    #[test]
    fn memory_round_trips() {
        let src = r#"module "m"

define i32 @mem() {
b0:
  %v0 = alloca i32, i64 4
  %v1 = gep %v0, i64 3
  store i32 7, %v1
  %v3 = load i32, %v1
  ret %v3
}
"#;
        let out = run_src(src, "mem", &[], &[]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(7)));
    }

    #[test]
    fn recursion_and_calls() {
        let src = r#"module "m"

define i64 @fact(i64 %p0) {
b0:
  %v0 = icmp sle %p0, i64 1
  condbr %v0, b1, b2
b1:
  ret i64 1
b2:
  %v1 = sub i64 %p0, i64 1
  %v2 = call i64 @fact(%v1)
  %v3 = mul i64 %p0, %v2
  ret %v3
}
"#;
        let out = run_src(src, "fact", &[Val::Int(10)], &[]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(3628800)));
    }

    #[test]
    fn io_runtime() {
        let src = r#"module "m"

declare i64 @read_int()
declare void @print_int(i64)

define void @main() {
b0:
  %v0 = call i64 @read_int()
  %v1 = add i64 %v0, i64 1
  call void @print_int(%v1)
  ret
}
"#;
        let out = run_src(src, "main", &[], &[Val::Int(41)]).unwrap();
        assert_eq!(out.output, vec![Val::Int(42)]);
    }

    #[test]
    fn division_by_zero_is_trapped() {
        let src = "module \"m\"\n\ndefine i64 @f(i64 %p0) {\nb0:\n  %v0 = sdiv i64 i64 10, %p0\n  ret %v0\n}\n";
        assert_eq!(
            run_src(src, "f", &[Val::Int(0)], &[]),
            Err(ExecError::DivByZero)
        );
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let src = "module \"m\"\n\ndefine void @f() {\nb0:\n  br b0\n}\n";
        let m = parse_module(src).unwrap();
        let cfg = ExecConfig {
            fuel: 1000,
            ..Default::default()
        };
        assert_eq!(run(&m, "f", &[], &[], &cfg), Err(ExecError::OutOfFuel));
    }

    #[test]
    fn switch_dispatch() {
        let src = r#"module "m"

define i64 @classify(i64 %p0) {
b0:
  switch %p0, default b1, [i64 1 -> b2], [i64 2 -> b3]
b1:
  ret i64 0
b2:
  ret i64 10
b3:
  ret i64 20
}
"#;
        assert_eq!(run_src(src, "classify", &[Val::Int(1)], &[]).unwrap().ret, Some(Val::Int(10)));
        assert_eq!(run_src(src, "classify", &[Val::Int(2)], &[]).unwrap().ret, Some(Val::Int(20)));
        assert_eq!(run_src(src, "classify", &[Val::Int(9)], &[]).unwrap().ret, Some(Val::Int(0)));
    }

    #[test]
    fn float_arithmetic_and_casts() {
        let src = r#"module "m"

define i64 @f(f64 %p0) {
b0:
  %v0 = fmul f64 %p0, f64 2.5
  %v1 = fptosi %v0 to i64
  ret %v1
}
"#;
        let out = run_src(src, "f", &[Val::Float(4.0)], &[]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(10)));
    }

    #[test]
    fn narrow_arithmetic_wraps() {
        let src = "module \"m\"\n\ndefine i8 @f(i8 %p0) {\nb0:\n  %v0 = add i8 %p0, i8 100\n  ret %v0\n}\n";
        let out = run_src(src, "f", &[Val::Int(100)], &[]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(-56))); // 200 wraps in i8
    }

    #[test]
    fn unsigned_comparison_differs_from_signed() {
        let src = "module \"m\"\n\ndefine i1 @f(i64 %p0) {\nb0:\n  %v0 = icmp ult %p0, i64 10\n  ret %v0\n}\n";
        // -1 as unsigned is huge, so ult 10 is false.
        let out = run_src(src, "f", &[Val::Int(-1)], &[]).unwrap();
        assert_eq!(out.ret, Some(Val::Int(0)));
    }

    #[test]
    fn cost_model_charges_divisions_more() {
        let add_src = "module \"m\"\n\ndefine i64 @f(i64 %p0) {\nb0:\n  %v0 = add i64 %p0, i64 3\n  ret %v0\n}\n";
        let div_src = "module \"m\"\n\ndefine i64 @f(i64 %p0) {\nb0:\n  %v0 = sdiv i64 %p0, i64 3\n  ret %v0\n}\n";
        let a = run_src(add_src, "f", &[Val::Int(30)], &[]).unwrap();
        let d = run_src(div_src, "f", &[Val::Int(30)], &[]).unwrap();
        assert_eq!(a.steps, d.steps);
        assert!(d.cost > a.cost);
    }

    #[test]
    fn stack_overflow_detected() {
        let src = "module \"m\"\n\ndefine void @f() {\nb0:\n  call void @f()\n  ret\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(
            run(&m, "f", &[], &[], &ExecConfig::default()),
            Err(ExecError::StackOverflow)
        );
    }
}
