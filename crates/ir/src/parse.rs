//! Parser for the textual IR syntax produced by [`crate::print`].
//!
//! Parsing the printer's output reconstructs a structurally identical module
//! (instruction and block ids are reassigned densely, which is exactly how
//! the printer names them, so `print(parse(print(m))) == print(m)`).

use crate::module::{Function, Inst, Module};
use crate::opcode::{Cmp, Op};
use crate::types::Type;
use crate::value::{BlockId, InstId, Value};
use std::error::Error;
use std::fmt;

/// An error produced while parsing IR text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Punct(char),
    Arrow,
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                while i < bytes.len() && bytes[i] != '"' {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i == bytes.len() {
                    return Err(ParseError {
                        line,
                        msg: "unterminated string".into(),
                    });
                }
                i += 1;
                toks.push((Tok::Str(s), line));
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                toks.push((Tok::Arrow, line));
                i += 2;
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                // "-inf" after a '-' sign.
                if i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    let mut w = String::new();
                    while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                        w.push(bytes[i]);
                        i += 1;
                    }
                    if w == "inf" {
                        toks.push((Tok::Float(f64::NEG_INFINITY), line));
                        continue;
                    }
                    return Err(ParseError {
                        line,
                        msg: format!("bad numeric token -{w}"),
                    });
                }
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        '0'..='9' => i += 1,
                        '.' => {
                            is_float = true;
                            i += 1;
                        }
                        'e' | 'E' => {
                            is_float = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == '-' || bytes[i] == '+') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v: f64 = text.parse().map_err(|_| ParseError {
                        line,
                        msg: format!("bad float {text}"),
                    })?;
                    toks.push((Tok::Float(v), line));
                } else {
                    let v: i64 = text.parse().map_err(|_| ParseError {
                        line,
                        msg: format!("bad integer {text}"),
                    })?;
                    toks.push((Tok::Int(v), line));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '%' || c == '@' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    i += 1;
                }
                toks.push((Tok::Ident(bytes[start..i].iter().collect()), line));
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | '=' | ':' | '<' | '>' => {
                toks.push((Tok::Punct(c), line));
                i += 1;
            }
            other => {
                return Err(ParseError {
                    line,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        // Report the line of the most recently consumed token when one
        // exists; errors are usually raised just after consuming the
        // offending token.
        let idx = self
            .pos
            .saturating_sub(1)
            .min(self.toks.len().saturating_sub(1));
        self.toks.get(idx).map(|(_, l)| *l).unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

fn parse_type(lx: &mut Lexer) -> Result<Type, ParseError> {
    let name = lx.expect_ident()?;
    match name.as_str() {
        "void" => Ok(Type::Void),
        "i1" => Ok(Type::I1),
        "i8" => Ok(Type::I8),
        "i32" => Ok(Type::I32),
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "ptr" => {
            lx.expect_punct('<')?;
            let inner = parse_type(lx)?;
            lx.expect_punct('>')?;
            Ok(Type::ptr(inner))
        }
        other => Err(lx.err(format!("unknown type {other}"))),
    }
}

fn is_type_head(s: &str) -> bool {
    matches!(s, "void" | "i1" | "i8" | "i32" | "i64" | "f64" | "ptr")
}

fn parse_value(lx: &mut Lexer) -> Result<Value, ParseError> {
    match lx.peek().cloned() {
        Some(Tok::Ident(s)) if s.starts_with("%v") => {
            lx.next();
            let n: u32 = s[2..]
                .parse()
                .map_err(|_| lx.err(format!("bad value name {s}")))?;
            Ok(Value::Inst(InstId(n)))
        }
        Some(Tok::Ident(s)) if s.starts_with("%p") => {
            lx.next();
            let n: u32 = s[2..]
                .parse()
                .map_err(|_| lx.err(format!("bad parameter name {s}")))?;
            Ok(Value::Param(n))
        }
        Some(Tok::Ident(s)) if s == "undef" => {
            lx.next();
            let ty = parse_type(lx)?;
            Ok(Value::Undef(ty))
        }
        Some(Tok::Ident(s)) if is_type_head(&s) => {
            let ty = parse_type(lx)?;
            if ty == Type::F64 {
                match lx.next() {
                    Some(Tok::Float(v)) => Ok(Value::ConstFloat(v)),
                    Some(Tok::Int(v)) => Ok(Value::ConstFloat(v as f64)),
                    Some(Tok::Ident(s)) if s == "nan" => Ok(Value::ConstFloat(f64::NAN)),
                    Some(Tok::Ident(s)) if s == "inf" => Ok(Value::ConstFloat(f64::INFINITY)),
                    other => Err(lx.err(format!("expected float literal, found {other:?}"))),
                }
            } else {
                match lx.next() {
                    Some(Tok::Int(v)) => { let w = ty.wrap(v); Ok(Value::ConstInt(ty, w)) }
                    other => Err(lx.err(format!("expected integer literal, found {other:?}"))),
                }
            }
        }
        other => Err(lx.err(format!("expected value, found {other:?}"))),
    }
}

fn parse_block_ref(lx: &mut Lexer) -> Result<BlockId, ParseError> {
    let name = lx.expect_ident()?;
    if let Some(rest) = name.strip_prefix('b') {
        if let Ok(n) = rest.parse::<u32>() {
            return Ok(BlockId(n));
        }
    }
    Err(lx.err(format!("expected block label, found {name}")))
}

fn parse_inst(lx: &mut Lexer) -> Result<(Option<u32>, Inst), ParseError> {
    // Optional "%vN =" prefix, recorded so references can be resolved even
    // when the text's numbering differs from arena positions.
    let mut written_name = None;
    if matches!(lx.peek(), Some(Tok::Ident(s)) if s.starts_with("%v")) {
        if let Some(Tok::Ident(s)) = lx.next() {
            let n: u32 = s[2..]
                .parse()
                .map_err(|_| lx.err(format!("bad result name {s}")))?;
            written_name = Some(n);
        }
        lx.expect_punct('=')?;
    }
    let mnemonic = lx.expect_ident()?;
    let op = Op::from_name(&mnemonic).ok_or_else(|| lx.err(format!("unknown opcode {mnemonic}")))?;
    let mut inst = Inst::new(op, Type::Void, vec![]);
    match op {
        Op::Ret => {
            // "ret" with an optional value (value heads: %, undef, type).
            if matches!(lx.peek(), Some(Tok::Ident(s)) if s.starts_with('%') || s == "undef" || is_type_head(s))
            {
                inst.args.push(parse_value(lx)?);
            }
        }
        Op::Br => inst.blocks.push(parse_block_ref(lx)?),
        Op::CondBr => {
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.blocks.push(parse_block_ref(lx)?);
            lx.expect_punct(',')?;
            inst.blocks.push(parse_block_ref(lx)?);
        }
        Op::Switch => {
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            if !lx.eat_keyword("default") {
                return Err(lx.err("expected 'default'"));
            }
            inst.blocks.push(parse_block_ref(lx)?);
            while lx.eat_punct(',') {
                lx.expect_punct('[')?;
                inst.args.push(parse_value(lx)?);
                match lx.next() {
                    Some(Tok::Arrow) => {}
                    other => return Err(lx.err(format!("expected '->', found {other:?}"))),
                }
                inst.blocks.push(parse_block_ref(lx)?);
                lx.expect_punct(']')?;
            }
        }
        Op::Unreachable => {}
        Op::Alloca => {
            let elem = parse_type(lx)?;
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
            inst.ty = Type::ptr(elem);
        }
        Op::Load => {
            inst.ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
        }
        Op::Store => {
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
        }
        Op::Gep => {
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
            inst.ty = Type::Void; // fixed up below: same as pointer operand
        }
        Op::Phi => {
            inst.ty = parse_type(lx)?;
            loop {
                lx.expect_punct('[')?;
                inst.args.push(parse_value(lx)?);
                lx.expect_punct(',')?;
                inst.blocks.push(parse_block_ref(lx)?);
                lx.expect_punct(']')?;
                if !lx.eat_punct(',') {
                    break;
                }
            }
        }
        Op::Call => {
            inst.ty = parse_type(lx)?;
            let callee = lx.expect_ident()?;
            let callee = callee
                .strip_prefix('@')
                .ok_or_else(|| lx.err("expected @callee"))?;
            inst.callee = Some(callee.to_string());
            lx.expect_punct('(')?;
            if !lx.eat_punct(')') {
                loop {
                    inst.args.push(parse_value(lx)?);
                    if lx.eat_punct(')') {
                        break;
                    }
                    lx.expect_punct(',')?;
                }
            }
        }
        Op::ICmp | Op::FCmp => {
            let p = lx.expect_ident()?;
            inst.pred =
                Some(Cmp::from_name(&p).ok_or_else(|| lx.err(format!("unknown predicate {p}")))?);
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
            inst.ty = Type::I1;
        }
        Op::Select => {
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
        }
        op if op.is_cast() => {
            inst.args.push(parse_value(lx)?);
            if !lx.eat_keyword("to") {
                return Err(lx.err("expected 'to' in cast"));
            }
            inst.ty = parse_type(lx)?;
        }
        Op::FNeg => {
            inst.args.push(parse_value(lx)?);
            inst.ty = Type::F64;
        }
        op if op.is_int_binop() || op.is_float_binop() => {
            inst.ty = parse_type(lx)?;
            inst.args.push(parse_value(lx)?);
            lx.expect_punct(',')?;
            inst.args.push(parse_value(lx)?);
        }
        _ => {
            // Exotic opcodes: a comma-separated operand list.
            while matches!(lx.peek(), Some(Tok::Ident(s)) if s.starts_with('%') || s == "undef" || is_type_head(s))
            {
                inst.args.push(parse_value(lx)?);
                if !lx.eat_punct(',') {
                    break;
                }
            }
        }
    }
    Ok((written_name, inst))
}

fn parse_function(lx: &mut Lexer) -> Result<Function, ParseError> {
    let is_decl = if lx.eat_keyword("declare") {
        true
    } else if lx.eat_keyword("define") {
        false
    } else {
        return Err(lx.err("expected 'define' or 'declare'"));
    };
    let ret = parse_type(lx)?;
    let name = lx.expect_ident()?;
    let name = name
        .strip_prefix('@')
        .ok_or_else(|| lx.err("expected @name"))?
        .to_string();
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    if !lx.eat_punct(')') {
        loop {
            params.push(parse_type(lx)?);
            // Optional parameter name.
            if matches!(lx.peek(), Some(Tok::Ident(s)) if s.starts_with("%p")) {
                lx.next();
            }
            if lx.eat_punct(')') {
                break;
            }
            lx.expect_punct(',')?;
        }
    }
    let mut func = Function::new(name, params, ret);
    if is_decl {
        return Ok(func);
    }
    lx.expect_punct('{')?;
    // Written result name -> positional arena id.
    let mut name_map: std::collections::HashMap<u32, InstId> = std::collections::HashMap::new();
    while !lx.eat_punct('}') {
        // A block label; labels must appear densely in order (b0, b1, …).
        let label = lx.expect_ident()?;
        if !label.starts_with('b') {
            return Err(lx.err(format!("expected block label, found {label}")));
        }
        let ln: u32 = label[1..]
            .parse()
            .map_err(|_| lx.err(format!("bad block label {label}")))?;
        if ln as usize != func.num_blocks() {
            return Err(lx.err(format!(
                "block labels must be dense and in order: found {label}, expected b{}",
                func.num_blocks()
            )));
        }
        lx.expect_punct(':')?;
        let b = func.add_block();
        // Instructions until the next label or '}'.
        loop {
            match lx.peek() {
                Some(Tok::Punct('}')) => break,
                Some(Tok::Ident(s))
                    if s.starts_with('b')
                        && s[1..].chars().all(|c| c.is_ascii_digit())
                        && !s[1..].is_empty()
                        && lx.toks.get(lx.pos + 1).map(|(t, _)| t) == Some(&Tok::Punct(':')) =>
                {
                    break
                }
                None => return Err(lx.err("unexpected end of input in function body")),
                _ => {
                    let (written, inst) = parse_inst(lx)?;
                    let id = func.push_inst(b, inst);
                    if let Some(n) = written {
                        name_map.insert(n, id);
                    }
                }
            }
        }
    }
    // Resolve written result names to positional ids.
    let ids: Vec<InstId> = func.iter_insts().map(|(_, i)| i).collect();
    for id in &ids {
        let nargs = func.inst(*id).args.len();
        for ai in 0..nargs {
            if let Value::Inst(written) = func.inst(*id).args[ai] {
                let resolved = *name_map.get(&written.0).ok_or_else(|| ParseError {
                    line: 0,
                    msg: format!("use of undefined value %v{} in @{}", written.0, func.name),
                })?;
                func.inst_mut(*id).args[ai] = Value::Inst(resolved);
            }
        }
    }
    // Fix up result types that the syntax leaves implicit: gep inherits
    // its pointer operand's type, select its arms' type.
    for id in ids {
        match func.inst(id).op {
            Op::Gep => {
                let ty = func.value_type(&func.inst(id).args[0]);
                func.inst_mut(id).ty = ty;
            }
            Op::Select => {
                let ty = func.value_type(&func.inst(id).args[1]);
                func.inst_mut(id).ty = ty;
            }
            _ => {}
        }
    }
    Ok(func)
}

/// Parses a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first offending line when the
/// text is not syntactically valid IR.
///
/// # Examples
///
/// ```
/// let text = "module \"m\"\n\ndefine i64 @id(i64 %p0) {\nb0:\n  ret %p0\n}\n";
/// let m = yali_ir::parse_module(text)?;
/// assert_eq!(m.functions.len(), 1);
/// # Ok::<(), yali_ir::ParseError>(())
/// ```
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = lex(src)?;
    let mut lx = Lexer { toks, pos: 0 };
    if !lx.eat_keyword("module") {
        return Err(lx.err("expected 'module'"));
    }
    let name = match lx.next() {
        Some(Tok::Str(s)) => s,
        other => return Err(lx.err(format!("expected module name string, found {other:?}"))),
    };
    let mut m = Module::new(name);
    while lx.peek().is_some() {
        m.functions.push(parse_function(&mut lx)?);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    const SAMPLE: &str = r#"module "demo"

declare void @print_int(i64)

define i64 @abs(i64 %p0) {
b0:
  %v0 = icmp slt %p0, i64 0
  condbr %v0, b1, b2
b1:
  %v1 = sub i64 i64 0, %p0
  br b2
b2:
  %v2 = phi i64 [%p0, b0], [%v1, b1]
  call void @print_int(%v2)
  ret %v2
}
"#;

    #[test]
    fn parses_the_sample() {
        let m = parse_module(SAMPLE).unwrap();
        assert_eq!(m.functions.len(), 2);
        let abs = m.function("abs").unwrap();
        assert_eq!(abs.num_blocks(), 3);
        // icmp, condbr, sub, br, phi, call, ret
        assert_eq!(abs.num_insts(), 7);
    }

    #[test]
    fn print_parse_print_is_identity() {
        let m = parse_module(SAMPLE).unwrap();
        let once = print_module(&m);
        let twice = print_module(&parse_module(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn reports_unknown_opcode() {
        let bad = "module \"m\"\ndefine void @f() {\nb0:\n  frobnicate\n}\n";
        let err = parse_module(bad).unwrap_err();
        assert!(err.msg.contains("unknown opcode"), "{err}");
        assert_eq!(err.line, 4);
    }

    #[test]
    fn parses_switch_syntax() {
        let text = "module \"m\"\n\ndefine void @s(i32 %p0) {\nb0:\n  switch %p0, default b1, [i32 1 -> b2], [i32 9 -> b1]\nb1:\n  ret\nb2:\n  ret\n}\n";
        let m = parse_module(text).unwrap();
        let f = m.function("s").unwrap();
        let t = f.terminator(f.entry()).unwrap();
        assert_eq!(f.inst(t).op, Op::Switch);
        assert_eq!(f.inst(t).blocks.len(), 3);
        let out = print_module(&m);
        assert_eq!(out, print_module(&parse_module(&out).unwrap()));
    }

    #[test]
    fn parses_float_constants() {
        let text =
            "module \"m\"\n\ndefine f64 @c() {\nb0:\n  %v0 = fadd f64 f64 1.5, f64 -inf\n  ret %v0\n}\n";
        let m = parse_module(text).unwrap();
        let f = m.function("c").unwrap();
        let (_, id) = f.iter_insts().next().unwrap();
        assert_eq!(f.inst(id).args[0], Value::ConstFloat(1.5));
        assert_eq!(f.inst(id).args[1], Value::ConstFloat(f64::NEG_INFINITY));
    }

    #[test]
    fn parses_memory_ops() {
        let text = "module \"m\"\n\ndefine i32 @mem() {\nb0:\n  %v0 = alloca i32, i64 4\n  %v1 = gep %v0, i64 2\n  store i32 7, %v1\n  %v3 = load i32, %v1\n  ret %v3\n}\n";
        let m = parse_module(text).unwrap();
        let f = m.function("mem").unwrap();
        assert_eq!(f.num_insts(), 5);
        let gep = InstId(1);
        assert_eq!(f.inst(gep).ty, Type::ptr(Type::I32));
        let out = print_module(&m);
        assert_eq!(out, print_module(&parse_module(&out).unwrap()));
    }
}
