//! Dynamic int8 quantization for the opt-in low-precision inference path.
//!
//! A [`QuantMatrix`] stores each row of an f64 matrix as `i8` codes plus
//! one f64 scale — per-row absmax quantization: `scale = absmax / 127`,
//! `code = round(x / scale)` clamped to `[-127, 127]` (the `-128` code is
//! unused so negation stays symmetric). [`matmul_t_dequant`] multiplies
//! two quantized operands with exact `i32` accumulation and dequantizes
//! on the way out: `out[i][j] = Σ_k qa[i][k]·qw[j][k] · sa[i]·sw[j] +
//! bias[j]`.
//!
//! `i32` accumulation cannot overflow for any realistic width: each
//! product is at most `127² = 16129`, so the inner dimension would need
//! to exceed `2³¹ / 127² ≈ 133 000` before saturating — far beyond any
//! feature width in this codebase (a `debug_assert!` documents the
//! bound).
//!
//! Because integer arithmetic is exact, the AVX2 kernel is bit-identical
//! to the scalar one — the unit tests compare them with `assert_eq!`,
//! not a tolerance. Accuracy versus the f64 verdicts is gated end-to-end
//! in `lowp` (agreement ≥ 99.5% on generated corpora), not here.

use super::Matrix;

/// A row-major i8 matrix with one dequantization scale per row.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f64>,
}

impl QuantMatrix {
    /// Quantizes `m` row-wise: per-row absmax scale, symmetric clamp to
    /// `[-127, 127]`. An all-zero row gets scale `0.0` and all-zero
    /// codes (dequantizing back to exact zeros).
    pub fn from_f64(m: &Matrix) -> Self {
        let (rows, cols) = (m.rows, m.cols);
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let absmax = row.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
            if absmax == 0.0 {
                scales.push(0.0);
                data.extend(std::iter::repeat_n(0i8, cols));
            } else {
                let scale = absmax / 127.0;
                scales.push(scale);
                data.extend(row.iter().map(|&v| {
                    let q = (v / scale).round();
                    q.clamp(-127.0, 127.0) as i8
                }));
            }
        }
        QuantMatrix { rows, cols, data, scales }
    }

    /// Quantizes one feature row (a single query) with the same rule as
    /// [`QuantMatrix::from_f64`].
    pub fn from_row(row: &[f64]) -> Self {
        Self::from_f64(&Matrix { rows: 1, cols: row.len(), data: row.to_vec() })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The i8 codes of row `r`.
    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The dequantization scale of row `r`.
    pub fn scale(&self, r: usize) -> f64 {
        self.scales[r]
    }

    /// Heap bytes held by codes and scales.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() + self.scales.len() * std::mem::size_of::<f64>()
    }

    /// Raw parts for serialization: `(rows, cols, codes, scales)`.
    pub(crate) fn parts(&self) -> (usize, usize, &[i8], &[f64]) {
        (self.rows, self.cols, &self.data, &self.scales)
    }

    /// Rebuilds a matrix from serialized parts.
    pub(crate) fn from_parts(rows: usize, cols: usize, data: Vec<i8>, scales: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "quant codes length mismatch");
        assert_eq!(scales.len(), rows, "quant scales length mismatch");
        QuantMatrix { rows, cols, data, scales }
    }
}

/// Exact i32 dot product of two i8 code rows.
fn dot_i8_scalar(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a as i32 * b as i32).sum()
}

/// AVX2 i8 dot product: sign-extend 16 codes a side to i16, multiply and
/// pairwise-add into i32 lanes with `madd`, reduce at the end. Exact, so
/// bit-identical to [`dot_i8_scalar`].
///
/// # Safety
///
/// Requires AVX2; `x` and `y` must have equal length.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(x: &[i8], y: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = x.len();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 16 <= n {
        let xv = _mm_loadu_si128(x.as_ptr().add(i) as *const __m128i);
        let yv = _mm_loadu_si128(y.as_ptr().add(i) as *const __m128i);
        let xw = _mm256_cvtepi8_epi16(xv);
        let yw = _mm256_cvtepi8_epi16(yv);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xw, yw));
        i += 16;
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut sum: i32 = lanes.iter().sum();
    while i < n {
        sum += *x.get_unchecked(i) as i32 * *y.get_unchecked(i) as i32;
        i += 1;
    }
    sum
}

/// `a · wᵀ` over quantized operands, dequantized with `bias` added:
/// `out[i][j] = dot(a.row(i), w.row(j)) · a.scale(i)·w.scale(j) +
/// bias[j]`. Inner products accumulate exactly in `i32`; dispatch
/// between the scalar and AVX2 dot kernels follows
/// [`super::active_kernel`] (any x86 SIMD kernel implies AVX2).
pub fn matmul_t_dequant(a: &QuantMatrix, w: &QuantMatrix, bias: &[f64]) -> Matrix {
    assert_eq!(
        a.cols, w.cols,
        "matmul_t_dequant: inner dimensions differ ({} vs {})",
        a.cols, w.cols
    );
    assert_eq!(
        w.rows,
        bias.len(),
        "matmul_t_dequant: bias length {} does not match {} output columns",
        bias.len(),
        w.rows
    );
    debug_assert!(
        a.cols < (i32::MAX as usize) / (127 * 127),
        "matmul_t_dequant: inner dimension {} could overflow i32 accumulation",
        a.cols
    );
    yali_obs::count!("ml.gemm.int8.calls", 1);
    yali_obs::count!("ml.gemm.int8.macs", (a.rows * w.rows * a.cols) as u64);

    #[cfg(target_arch = "x86_64")]
    let use_avx2 = super::active_kernel() != super::GemmKernel::Scalar;

    let mut out = Matrix::zeros(a.rows, w.rows);
    for i in 0..a.rows {
        let arow = a.row(i);
        let sa = a.scales[i];
        let orow = out.row_mut(i);
        for j in 0..w.rows {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: every x86 kernel above Scalar requires AVX2 or a
            // superset, so detection already proved AVX2 is present.
            let acc = if use_avx2 {
                unsafe { dot_i8_avx2(arow, w.row(j)) }
            } else {
                dot_i8_scalar(arow, w.row(j))
            };
            #[cfg(not(target_arch = "x86_64"))]
            let acc = dot_i8_scalar(arow, w.row(j));
            orow[j] = acc as f64 * sa * w.scales[j] + bias[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * cols + c) as u64)
                .wrapping_mul(1442695040888963407);
            ((h >> 33) as f64 / (1u64 << 31) as f64) * 6.0 - 3.0
        })
    }

    #[test]
    fn quantization_round_trips_within_half_step() {
        let m = fill(5, 17, 7);
        let q = QuantMatrix::from_f64(&m);
        for r in 0..5 {
            let scale = q.scale(r);
            for (c, &code) in q.row(r).iter().enumerate() {
                let err = (code as f64 * scale - m.get(r, c)).abs();
                assert!(err <= scale * 0.5 + 1e-12, "row {r} col {c}: err {err}");
            }
        }
    }

    #[test]
    fn zero_rows_quantize_to_zero() {
        let m = Matrix::zeros(3, 9);
        let q = QuantMatrix::from_f64(&m);
        for r in 0..3 {
            assert_eq!(q.scale(r), 0.0);
            assert!(q.row(r).iter().all(|&c| c == 0));
        }
        let out = matmul_t_dequant(&q, &QuantMatrix::from_f64(&fill(4, 9, 3)), &[0.5; 4]);
        for r in 0..3 {
            assert!(out.row(r).iter().all(|&v| v == 0.5));
        }
    }

    #[test]
    fn dequantized_product_tracks_f64_product() {
        let a = fill(6, 33, 11);
        let w = fill(4, 33, 12);
        let bias = vec![0.25, -0.5, 1.0, 0.0];
        let exact = {
            let mut out = Matrix::zeros(6, 4);
            for i in 0..6 {
                for (j, &bj) in bias.iter().enumerate() {
                    out.set(i, j, super::super::dot(a.row(i), w.row(j)) + bj);
                }
            }
            out
        };
        let got = matmul_t_dequant(&QuantMatrix::from_f64(&a), &QuantMatrix::from_f64(&w), &bias);
        // Worst-case absolute error of a length-k int8 dot is bounded by
        // k · (|a|max·sw/2 + |w|max·sa/2 + sa·sw/4); the corpus here is
        // tiny, so a loose 0.5 band is plenty while still catching any
        // scale/transpose mix-up (values span roughly ±10).
        for i in 0..6 {
            for j in 0..4 {
                let err = (got.get(i, j) - exact.get(i, j)).abs();
                assert!(err < 0.5, "({i},{j}): int8 {} vs f64 {}", got.get(i, j), exact.get(i, j));
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_dot_is_bit_identical_to_scalar() {
        if !is_x86_feature_detected!("avx2") {
            eprintln!("skipping: no AVX2 on this host");
            return;
        }
        // Lane-width edges around the 16-code AVX2 step, plus empty.
        for n in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 100] {
            let x: Vec<i8> =
                (0..n).map(|i| ((i as i64 * 37 + 11) % 255 - 127) as i8).collect();
            let y: Vec<i8> =
                (0..n).map(|i| ((i as i64 * 53 + 29) % 255 - 127) as i8).collect();
            // SAFETY: AVX2 presence checked above.
            let simd = unsafe { dot_i8_avx2(&x, &y) };
            assert_eq!(simd, dot_i8_scalar(&x, &y), "n = {n}");
        }
    }
}
