//! Explicit-SIMD GEMM kernels behind one-time CPU feature detection.
//!
//! # Dispatch
//!
//! [`active_kernel`] picks the widest kernel the CPU supports — AVX-512F,
//! then AVX2+FMA on x86_64; NEON on aarch64; the blocked scalar kernel
//! everywhere else — exactly once per process (cached in a `OnceLock`).
//! The `YALI_SIMD` environment variable overrides the choice: `0` forces
//! the scalar fallback, `1` (or unset) keeps auto-detection, and anything
//! else warns once and falls back to auto-detection — the same
//! parse-once/warn-once contract as `YALI_THREADS` in `yali-par`.
//!
//! # Numerics
//!
//! The SIMD kernels use hardware FMA (one rounding per multiply-add)
//! where the scalar kernel rounds twice, so the two families differ in
//! the last ulp — per process the choice is fixed, so every determinism
//! contract (byte-identical training across thread counts, bit-identical
//! batch vs per-sample inference) is preserved; only *cross-machine*
//! bit-identity is relaxed, as documented in DESIGN.md.
//!
//! Because IEEE-754 `fma` is exactly specified, each SIMD lane's
//! ascending-`k` FMA chain is bit-identical to a scalar
//! [`f64::mul_add`] chain over the same elements. The kernels exploit
//! this twice: ragged row/column tails are finished with scalar fused
//! loops (same bits a masked vector path would produce), and the
//! property tests check the whole SIMD output bitwise against a scalar
//! fused reference — a real oracle, not a tolerance band.
//!
//! Every kernel takes the output pre-seeded (zero or a broadcast bias
//! row) and accumulates `out[i][j] += Σ_k A[i][k]·B[k][j]` with one final
//! add, so the seed joins the sum exactly once, last.

use std::sync::OnceLock;

use super::GemmKernel;

use yali_obs::{EnvVar, WarnOnce};

/// Parses a `YALI_SIMD` value: `0` forces the scalar kernel, `1` states
/// auto-detection explicitly. Surrounding whitespace is tolerated;
/// anything else is [`EnvVar::Invalid`].
pub(crate) fn parse_simd(v: Option<&str>) -> EnvVar<bool> {
    match v {
        None => EnvVar::Unset,
        Some(raw) => match raw.trim() {
            "0" => EnvVar::Value(false),
            "1" => EnvVar::Value(true),
            _ => EnvVar::Invalid,
        },
    }
}

/// The widest kernel this CPU supports, ignoring any override.
fn detect_kernel() -> GemmKernel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return GemmKernel::Avx512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return GemmKernel::Avx2;
        }
        GemmKernel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (with f64 FMA) is baseline on aarch64.
        GemmKernel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        GemmKernel::Scalar
    }
}

/// The GEMM kernel every product in this process dispatches to: CPU
/// feature detection filtered through the `YALI_SIMD` override, computed
/// once and cached. A set-but-invalid `YALI_SIMD` warns once (stderr plus
/// the `yali-obs` trace sink) instead of silently falling back.
pub fn active_kernel() -> GemmKernel {
    static KERNEL: OnceLock<GemmKernel> = OnceLock::new();
    static ONCE: WarnOnce = WarnOnce::new();
    *KERNEL.get_or_init(|| {
        match yali_obs::env_once(
            "YALI_SIMD",
            &ONCE,
            "is not 0 or 1; falling back to CPU feature detection",
            parse_simd,
        ) {
            Some(false) => GemmKernel::Scalar,
            // `1` states auto-detection explicitly; unset (or invalid,
            // after its one warning) detects too.
            Some(true) | None => detect_kernel(),
        }
    })
}

/// Finishes a ragged column tail `[j0, n)` of rows `[i0, i0+rows)` with a
/// scalar fused chain — bit-identical to the lanes of the vector tiles,
/// since IEEE `fma` rounds once exactly like `f64::mul_add`.
#[allow(clippy::too_many_arguments)]
fn fused_tail_f64(
    i0: usize,
    rows: usize,
    j0: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    for i in i0..i0 + rows {
        for j in j0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
            }
            out[i * n + j] += acc;
        }
    }
}

/// The `f32` twin of [`fused_tail_f64`].
#[allow(clippy::too_many_arguments)]
fn fused_tail_f32(
    i0: usize,
    rows: usize,
    j0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    for i in i0..i0 + rows {
        for j in j0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
            }
            out[i * n + j] += acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{fused_tail_f32, fused_tail_f64};
    use std::arch::x86_64::*;

    // ---------------------------------------------------------------- AVX-512

    /// One `R×16` f64 register tile at rows `i..i+R`, columns
    /// `jb..jb+16`: 16 zmm accumulators built from 2 B-loads, `R`
    /// broadcasts and `2R` FMAs per `k` step.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; caller guarantees `i + R <= m` and
    /// `jb + 16 <= n` for the `m×k · k×n` shapes backing the slices.
    #[target_feature(enable = "avx512f")]
    unsafe fn tile_f64_avx512<const R: usize>(
        i: usize,
        jb: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut acc = [[_mm512_setzero_pd(); 2]; R];
        for kk in 0..k {
            let bp = b.as_ptr().add(kk * n + jb);
            let b0 = _mm512_loadu_pd(bp);
            let b1 = _mm512_loadu_pd(bp.add(8));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_pd(*a.get_unchecked((i + r) * k + kk));
                accr[0] = _mm512_fmadd_pd(av, b0, accr[0]);
                accr[1] = _mm512_fmadd_pd(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let p = out.as_mut_ptr().add((i + r) * n + jb);
            _mm512_storeu_pd(p, _mm512_add_pd(_mm512_loadu_pd(p), accr[0]));
            _mm512_storeu_pd(p.add(8), _mm512_add_pd(_mm512_loadu_pd(p.add(8)), accr[1]));
        }
    }

    /// All column blocks of `R` rows starting at row `i`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; caller guarantees `i + R <= m`.
    #[target_feature(enable = "avx512f")]
    unsafe fn rows_f64_avx512<const R: usize>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut jb = 0;
        while jb + 16 <= n {
            tile_f64_avx512::<R>(i, jb, k, n, a, b, out);
            jb += 16;
        }
        if jb < n {
            fused_tail_f64(i, R, jb, k, n, a, b, out);
        }
    }

    /// AVX-512F f64 GEMM: `out += A·B` in 8×16 register tiles (the shape
    /// that keeps the single 512-bit FMA pipe saturated), narrower row
    /// blocks and scalar fused column tails on ragged edges.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; slices must back `m×k`, `k×n` and `m×n`
    /// row-major matrices.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn gemm_f64_avx512(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut i = 0;
        while i + 8 <= m {
            rows_f64_avx512::<8>(i, k, n, a, b, out);
            i += 8;
        }
        if i + 4 <= m {
            rows_f64_avx512::<4>(i, k, n, a, b, out);
            i += 4;
        }
        if i + 2 <= m {
            rows_f64_avx512::<2>(i, k, n, a, b, out);
            i += 2;
        }
        if i < m {
            rows_f64_avx512::<1>(i, k, n, a, b, out);
        }
    }

    /// One `R×32` f32 register tile (two zmm per row).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; caller guarantees `i + R <= m`, `jb + 32 <= n`.
    #[target_feature(enable = "avx512f")]
    unsafe fn tile_f32_avx512<const R: usize>(
        i: usize,
        jb: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut acc = [[_mm512_setzero_ps(); 2]; R];
        for kk in 0..k {
            let bp = b.as_ptr().add(kk * n + jb);
            let b0 = _mm512_loadu_ps(bp);
            let b1 = _mm512_loadu_ps(bp.add(16));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a.get_unchecked((i + r) * k + kk));
                accr[0] = _mm512_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm512_fmadd_ps(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let p = out.as_mut_ptr().add((i + r) * n + jb);
            _mm512_storeu_ps(p, _mm512_add_ps(_mm512_loadu_ps(p), accr[0]));
            _mm512_storeu_ps(p.add(16), _mm512_add_ps(_mm512_loadu_ps(p.add(16)), accr[1]));
        }
    }

    /// # Safety
    ///
    /// Requires AVX-512F; caller guarantees `i + R <= m`.
    #[target_feature(enable = "avx512f")]
    unsafe fn rows_f32_avx512<const R: usize>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut jb = 0;
        while jb + 32 <= n {
            tile_f32_avx512::<R>(i, jb, k, n, a, b, out);
            jb += 32;
        }
        if jb < n {
            fused_tail_f32(i, R, jb, k, n, a, b, out);
        }
    }

    /// AVX-512F f32 GEMM: 8×32 register tiles.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F; slices must back `m×k`, `k×n` and `m×n`
    /// row-major matrices.
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn gemm_f32_avx512(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i + 8 <= m {
            rows_f32_avx512::<8>(i, k, n, a, b, out);
            i += 8;
        }
        if i + 4 <= m {
            rows_f32_avx512::<4>(i, k, n, a, b, out);
            i += 4;
        }
        if i + 2 <= m {
            rows_f32_avx512::<2>(i, k, n, a, b, out);
            i += 2;
        }
        if i < m {
            rows_f32_avx512::<1>(i, k, n, a, b, out);
        }
    }

    // ------------------------------------------------------------- AVX2 + FMA

    /// One `R×8` f64 register tile (two ymm per row).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; caller guarantees `i + R <= m`, `jb + 8 <= n`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_f64_avx2<const R: usize>(
        i: usize,
        jb: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut acc = [[_mm256_setzero_pd(); 2]; R];
        for kk in 0..k {
            let bp = b.as_ptr().add(kk * n + jb);
            let b0 = _mm256_loadu_pd(bp);
            let b1 = _mm256_loadu_pd(bp.add(4));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_pd(*a.get_unchecked((i + r) * k + kk));
                accr[0] = _mm256_fmadd_pd(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_pd(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let p = out.as_mut_ptr().add((i + r) * n + jb);
            _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), accr[0]));
            _mm256_storeu_pd(p.add(4), _mm256_add_pd(_mm256_loadu_pd(p.add(4)), accr[1]));
        }
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA; caller guarantees `i + R <= m`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn rows_f64_avx2<const R: usize>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut jb = 0;
        while jb + 8 <= n {
            tile_f64_avx2::<R>(i, jb, k, n, a, b, out);
            jb += 8;
        }
        if jb < n {
            fused_tail_f64(i, R, jb, k, n, a, b, out);
        }
    }

    /// AVX2+FMA f64 GEMM: 4×8 register tiles.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; slices must back `m×k`, `k×n` and `m×n`
    /// row-major matrices.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn gemm_f64_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut i = 0;
        while i + 4 <= m {
            rows_f64_avx2::<4>(i, k, n, a, b, out);
            i += 4;
        }
        if i + 2 <= m {
            rows_f64_avx2::<2>(i, k, n, a, b, out);
            i += 2;
        }
        if i < m {
            rows_f64_avx2::<1>(i, k, n, a, b, out);
        }
    }

    /// One `R×16` f32 register tile (two ymm per row).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; caller guarantees `i + R <= m`, `jb + 16 <= n`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tile_f32_avx2<const R: usize>(
        i: usize,
        jb: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; R];
        for kk in 0..k {
            let bp = b.as_ptr().add(kk * n + jb);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.get_unchecked((i + r) * k + kk));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let p = out.as_mut_ptr().add((i + r) * n + jb);
            _mm256_storeu_ps(p, _mm256_add_ps(_mm256_loadu_ps(p), accr[0]));
            _mm256_storeu_ps(p.add(8), _mm256_add_ps(_mm256_loadu_ps(p.add(8)), accr[1]));
        }
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA; caller guarantees `i + R <= m`.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn rows_f32_avx2<const R: usize>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut jb = 0;
        while jb + 16 <= n {
            tile_f32_avx2::<R>(i, jb, k, n, a, b, out);
            jb += 16;
        }
        if jb < n {
            fused_tail_f32(i, R, jb, k, n, a, b, out);
        }
    }

    /// AVX2+FMA f32 GEMM: 4×16 register tiles.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; slices must back `m×k`, `k×n` and `m×n`
    /// row-major matrices.
    #[target_feature(enable = "avx2,fma")]
    pub(crate) unsafe fn gemm_f32_avx2(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i + 4 <= m {
            rows_f32_avx2::<4>(i, k, n, a, b, out);
            i += 4;
        }
        if i + 2 <= m {
            rows_f32_avx2::<2>(i, k, n, a, b, out);
            i += 2;
        }
        if i < m {
            rows_f32_avx2::<1>(i, k, n, a, b, out);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{gemm_f32_avx2, gemm_f32_avx512, gemm_f64_avx2, gemm_f64_avx512};

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{fused_tail_f32, fused_tail_f64};
    use std::arch::aarch64::*;

    /// NEON f64 GEMM: 4×4 register tiles (two 2-lane vectors per row)
    /// with `vfmaq_f64` — fused, so the same scalar `mul_add` oracle
    /// applies. NEON is baseline on aarch64, so this needs no runtime
    /// detection.
    ///
    /// # Safety
    ///
    /// Slices must back `m×k`, `k×n` and `m×n` row-major matrices.
    pub(crate) unsafe fn gemm_f64_neon(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let mut i = 0;
        while i + 4 <= m {
            let mut jb = 0;
            while jb + 4 <= n {
                let mut acc = [[vdupq_n_f64(0.0); 2]; 4];
                for kk in 0..k {
                    let bp = b.as_ptr().add(kk * n + jb);
                    let b0 = vld1q_f64(bp);
                    let b1 = vld1q_f64(bp.add(2));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = vdupq_n_f64(*a.get_unchecked((i + r) * k + kk));
                        accr[0] = vfmaq_f64(accr[0], av, b0);
                        accr[1] = vfmaq_f64(accr[1], av, b1);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let p = out.as_mut_ptr().add((i + r) * n + jb);
                    vst1q_f64(p, vaddq_f64(vld1q_f64(p), accr[0]));
                    vst1q_f64(p.add(2), vaddq_f64(vld1q_f64(p.add(2)), accr[1]));
                }
                jb += 4;
            }
            if jb < n {
                fused_tail_f64(i, 4, jb, k, n, a, b, out);
            }
            i += 4;
        }
        if i < m {
            fused_tail_f64(i, m - i, 0, k, n, a, b, out);
        }
    }

    /// NEON f32 GEMM: 4×8 register tiles (two 4-lane vectors per row).
    ///
    /// # Safety
    ///
    /// Slices must back `m×k`, `k×n` and `m×n` row-major matrices.
    pub(crate) unsafe fn gemm_f32_neon(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i + 4 <= m {
            let mut jb = 0;
            while jb + 8 <= n {
                let mut acc = [[vdupq_n_f32(0.0); 2]; 4];
                for kk in 0..k {
                    let bp = b.as_ptr().add(kk * n + jb);
                    let b0 = vld1q_f32(bp);
                    let b1 = vld1q_f32(bp.add(4));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = vdupq_n_f32(*a.get_unchecked((i + r) * k + kk));
                        accr[0] = vfmaq_f32(accr[0], av, b0);
                        accr[1] = vfmaq_f32(accr[1], av, b1);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let p = out.as_mut_ptr().add((i + r) * n + jb);
                    vst1q_f32(p, vaddq_f32(vld1q_f32(p), accr[0]));
                    vst1q_f32(p.add(4), vaddq_f32(vld1q_f32(p.add(4)), accr[1]));
                }
                jb += 8;
            }
            if jb < n {
                fused_tail_f32(i, 4, jb, k, n, a, b, out);
            }
            i += 4;
        }
        if i < m {
            fused_tail_f32(i, m - i, 0, k, n, a, b, out);
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub(crate) use neon::{gemm_f32_neon, gemm_f64_neon};

/// Dispatches `out += A·B` (f64) to `kernel`, which the caller has
/// checked is available on this CPU.
pub(crate) fn gemm_f64_with(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
) {
    match kernel {
        GemmKernel::Scalar => super::kernel_scalar::gemm_f64(m, k, n, a, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability was checked by `GemmKernel::available`.
        GemmKernel::Avx2 => unsafe { gemm_f64_avx2(m, k, n, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability was checked by `GemmKernel::available`.
        GemmKernel::Avx512 => unsafe { gemm_f64_avx512(m, k, n, a, b, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        GemmKernel::Neon => unsafe { gemm_f64_neon(m, k, n, a, b, out) },
        #[allow(unreachable_patterns)]
        _ => super::kernel_scalar::gemm_f64(m, k, n, a, b, out),
    }
}

/// Dispatches `out += A·B` (f32) to `kernel`, which the caller has
/// checked is available on this CPU.
pub(crate) fn gemm_f32_with(
    kernel: GemmKernel,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
) {
    match kernel {
        GemmKernel::Scalar => super::kernel_scalar::gemm_f32(m, k, n, a, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability was checked by `GemmKernel::available`.
        GemmKernel::Avx2 => unsafe { gemm_f32_avx2(m, k, n, a, b, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: availability was checked by `GemmKernel::available`.
        GemmKernel::Avx512 => unsafe { gemm_f32_avx512(m, k, n, a, b, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        GemmKernel::Neon => unsafe { gemm_f32_neon(m, k, n, a, b, out) },
        #[allow(unreachable_patterns)]
        _ => super::kernel_scalar::gemm_f32(m, k, n, a, b, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_var_parses_like_threads_var() {
        assert_eq!(parse_simd(None), EnvVar::<bool>::Unset);
        assert_eq!(parse_simd(Some("0")), EnvVar::Value(false));
        assert_eq!(parse_simd(Some("1")), EnvVar::Value(true));
        assert_eq!(parse_simd(Some(" 0 ")), EnvVar::Value(false));
        assert_eq!(parse_simd(Some("\t1\n")), EnvVar::Value(true));
        for garbage in ["", "  ", "2", "-1", "yes", "avx2", "0x1"] {
            assert_eq!(parse_simd(Some(garbage)), EnvVar::Invalid, "{garbage:?}");
        }
    }

    #[test]
    fn active_kernel_is_stable_and_available() {
        let k = active_kernel();
        assert_eq!(k, active_kernel(), "dispatch must be cached");
        assert!(k.available(), "dispatched kernel must be runnable");
    }
}
