//! The register-blocked scalar GEMM kernels: the always-available
//! fallback of the dispatched kernel family, and the reference the SIMD
//! kernels are tolerance-tested against.
//!
//! The `f64` kernel here is the codebase's original blocked `i–k–j`
//! (axpy-formulation) kernel, unchanged: every output element sums in a
//! fixed ascending-`k` order with separate multiply and add (no fused
//! rounding), so forcing `YALI_SIMD=0` reproduces the pre-SIMD results
//! bit for bit. The `f32` kernel mirrors the same structure for the
//! [`super::Matrix32`] inference path.
//!
//! Both kernels take the output pre-seeded (with zero or a bias row) and
//! accumulate into it; the caller owns shape checks and observability
//! counters.

use super::axpy;

/// Blocked scalar `out += A · B` over row-major slices (`A` is `m×k`,
/// `B` is `k×n`, `out` is `m×n`, pre-seeded). Rows of `A` are processed
/// four at a time so each streamed `B` row is reused across four
/// accumulator rows from registers; each output element still sums in
/// ascending-`k` order, so the blocking changes nothing bitwise. Zero
/// `A` entries (whole rows in the remainder loop) skip their multiply.
pub(crate) fn gemm_f64(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    let mut i = 0;
    while i + 4 <= m {
        let (o0, rest) = out[i * n..(i + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        for kk in 0..k {
            let brow = &b[kk * n..(kk + 1) * n];
            let a0 = a[i * k + kk];
            let a1 = a[(i + 1) * k + kk];
            let a2 = a[(i + 2) * k + kk];
            let a3 = a[(i + 3) * k + kk];
            for (j, &bj) in brow.iter().enumerate() {
                o0[j] += a0 * bj;
                o1[j] += a1 * bj;
                o2[j] += a2 * bj;
                o3[j] += a3 * bj;
            }
        }
        i += 4;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                axpy(av, &b[kk * n..(kk + 1) * n], orow);
            }
        }
        i += 1;
    }
}

/// The `f32` twin of [`gemm_f64`]: same blocking, same fixed ascending-`k`
/// summation order, unfused multiply-add. Serves the [`super::Matrix32`]
/// inference path when SIMD is unavailable or forced off.
pub(crate) fn gemm_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    let mut i = 0;
    while i + 4 <= m {
        let (o0, rest) = out[i * n..(i + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        for kk in 0..k {
            let brow = &b[kk * n..(kk + 1) * n];
            let a0 = a[i * k + kk];
            let a1 = a[(i + 1) * k + kk];
            let a2 = a[(i + 2) * k + kk];
            let a3 = a[(i + 3) * k + kk];
            for (j, &bj) in brow.iter().enumerate() {
                o0[j] += a0 * bj;
                o1[j] += a1 * bj;
                o2[j] += a2 * bj;
                o3[j] += a3 * bj;
            }
        }
        i += 4;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        i += 1;
    }
}
