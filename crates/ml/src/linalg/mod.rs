//! Dense linear-algebra kernels: row-major matrices plus the GEMM and
//! optimizer primitives the neural models train on.
//!
//! # Kernel family and dispatch
//!
//! The three products ([`Matrix::matmul`], [`Matrix::t_matmul`],
//! [`Matrix::matmul_t`]) share one GEMM core that is now a *family* of
//! kernels behind one-time CPU feature detection (see
//! [`active_kernel`]):
//!
//! * [`kernel_scalar`](self) — the original register-blocked `i–k–j`
//!   (axpy-formulation) kernel: always available, bit-identical to the
//!   pre-SIMD codebase, and the tolerance oracle for everything else.
//!   `YALI_SIMD=0` forces it.
//! * [`kernel_simd`](self) — explicit `std::arch` kernels: AVX-512F and
//!   AVX2+FMA register tiles on x86_64, NEON on aarch64. These use
//!   hardware FMA, so they differ from the scalar kernel in the last
//!   ulp; the property tests hold them bitwise against a scalar
//!   `mul_add` reference (IEEE FMA is exact, so that reference really
//!   is a bit-oracle).
//! * [`quant`] — the opt-in int8 path: per-row absmax quantization with
//!   exact i32 accumulation, used by the `lowp` inference classifiers.
//!
//! Precision policy: training is always `f64` (ModelCache keys and the
//! determinism proptests depend on it); inference may opt into `f32`
//! ([`Matrix32`]) or int8 via `lowp`. The kernel choice is fixed per
//! process, so run-to-run bit-stability on one machine is preserved.
//!
//! In the axpy formulation the inner loop accumulates
//! `C[i][·] += A[i][k] · B[k][·]` over two **contiguous** row slices —
//! unlike a dot-product formulation, whose single serial accumulator
//! chains every add's latency. Summation over `k` runs in a fixed
//! ascending order in every kernel, so results are bit-stable run to
//! run. `matmul` is the kernel's native layout and packs nothing;
//! `matmul_t` packs `Bᵀ` once per call with the tiled
//! [`Matrix::transpose`] — an `O(k·n)` copy against `O(m·k·n)` multiply
//! work — so its inner loop is contiguous too; `t_matmul` re-associates
//! to stream `A` rows directly, also pack-free (it stays on the scalar
//! axpy path: it runs on gradient passes where its zero-skip and
//! pack-free streaming already win).
//!
//! [`Matrix::matmul_t_bias`] is the fused inference/training path: it
//! seeds every output row with the bias vector instead of zero, saving a
//! full pass over the output (the `Dense` and `Conv1d` layers call it on
//! their batched forward).
//!
//! A naive triple-loop implementation of each product is kept under
//! `#[cfg(test)]` as the reference oracle; a property test checks the
//! dispatched kernels against it on random (including degenerate 0×N
//! and 1×1) shapes.

mod kernel_scalar;
mod kernel_simd;
pub mod quant;

pub use kernel_simd::active_kernel;

/// One member of the GEMM kernel family. [`active_kernel`] picks the
/// widest available member once per process; [`Matrix::matmul_with_kernel`]
/// lets benchmarks and tests pin a specific one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// The register-blocked scalar kernel — always available, bitwise
    /// identical to the pre-SIMD codebase.
    Scalar,
    /// AVX2 + FMA 4×8 (f64) / 4×16 (f32) register tiles (x86_64).
    Avx2,
    /// AVX-512F 8×16 (f64) / 8×32 (f32) register tiles (x86_64).
    Avx512,
    /// NEON 4×4 (f64) / 4×8 (f32) register tiles (aarch64 baseline).
    Neon,
}

impl GemmKernel {
    /// Whether this kernel can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            GemmKernel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            GemmKernel::Avx2 => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            GemmKernel::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            GemmKernel::Avx2 | GemmKernel::Avx512 => false,
            GemmKernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Stable lowercase name, used in bench reports and counter keys.
    pub fn name(self) -> &'static str {
        match self {
            GemmKernel::Scalar => "scalar",
            GemmKernel::Avx2 => "avx2",
            GemmKernel::Avx512 => "avx512",
            GemmKernel::Neon => "neon",
        }
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data (`rows * cols` entries).
    pub data: Vec<f64>,
}

/// A dense row-major matrix of `f32` — the reduced-precision *inference*
/// storage/compute mode. Training never touches it: models are trained
/// in `f64` and narrowed once by the `lowp` classifiers, whose products
/// run through the same dispatched kernel family in `f32`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix32 {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data (`rows * cols` entries).
    pub data: Vec<f32>,
}

/// Shape-mismatch panic naming both operand shapes (kept out of line so
/// the kernels stay small).
#[cold]
#[inline(never)]
fn shape_panic(op: &str, rule: &str, a: (usize, usize), b: (usize, usize)) -> ! {
    panic!(
        "{op}: incompatible shapes {}x{} vs {}x{} ({rule})",
        a.0, a.1, b.0, b.1
    );
}

/// `y += alpha * x`: the GEMM inner loop, and the fused accumulate used
/// to merge gradient buffers and scatter conv gradients. Written as a
/// bounds-check-free slice zip so the compiler vectorizes it — every
/// `y[k]` is an independent accumulator, so vectorization needs no
/// reassociation and results stay bit-stable.
///
/// The slices must have equal lengths: a mismatch is a shape bug
/// upstream, and silently truncating would turn it into wrong math, so
/// debug builds assert (naming both lengths) instead.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(
        x.len(),
        y.len(),
        "axpy: x.len() {} != y.len() {}",
        x.len(),
        y.len()
    );
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `C = A · B (+ bias)` through one pinned kernel: seeds every output
/// row (with zero or the bias), bumps the aggregate and per-variant GEMM
/// counters, and hands the accumulation to the kernel. Shape checks
/// belong to the public callers.
fn mul_rm_with(a: &Matrix, b: &Matrix, bias: Option<&[f64]>, kernel: GemmKernel) -> Matrix {
    let n = b.cols;
    let k = a.cols;
    // GEMM-kernel accounting: one counter bump per kernel call (never per
    // element), so the disabled path costs one relaxed load. The
    // aggregate pair predates dispatch and keeps emitting; the
    // per-variant counters let yali-prof attribute calls to a kernel.
    yali_obs::count!("ml.gemm.calls", 1);
    yali_obs::count!("ml.gemm.fmas", (a.rows * n * k) as u64);
    match kernel {
        GemmKernel::Scalar => yali_obs::count!("ml.gemm.kernel.scalar", 1),
        GemmKernel::Avx2 => yali_obs::count!("ml.gemm.kernel.avx2", 1),
        GemmKernel::Avx512 => yali_obs::count!("ml.gemm.kernel.avx512", 1),
        GemmKernel::Neon => yali_obs::count!("ml.gemm.kernel.neon", 1),
    }
    let mut out = Matrix::zeros(a.rows, n);
    if let Some(bv) = bias {
        for i in 0..a.rows {
            out.data[i * n..(i + 1) * n].copy_from_slice(bv);
        }
    }
    kernel_simd::gemm_f64_with(kernel, a.rows, k, n, &a.data, &b.data, &mut out.data);
    out
}

/// [`mul_rm_with`] on the process-wide [`active_kernel`].
fn mul_rm(a: &Matrix, b: &Matrix, bias: Option<&[f64]>) -> Matrix {
    mul_rm_with(a, b, bias, active_kernel())
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix by copying `rows.len()` equally sized row slices.
    ///
    /// # Panics
    ///
    /// Panics when the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "from_rows: ragged row {r}");
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose, packed with cache-friendly tiles.
    pub fn transpose(&self) -> Matrix {
        const T: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(T) {
            let rend = (rb + T).min(self.rows);
            for cb in (0..self.cols).step_by(T) {
                let cend = (cb + T).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        if self.cols != other.rows {
            shape_panic(
                "matmul",
                "A.cols must equal B.rows",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        mul_rm(self, other, None)
    }

    /// `self * other` through one pinned kernel instead of the
    /// process-wide dispatch — how the benchmarks time kernels
    /// side by side and the tests pin the scalar oracle.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, and when `kernel` is not
    /// available on this CPU.
    pub fn matmul_with_kernel(&self, other: &Matrix, kernel: GemmKernel) -> Matrix {
        assert!(
            kernel.available(),
            "matmul_with_kernel: kernel {} is not available on this CPU",
            kernel.name()
        );
        if self.cols != other.rows {
            shape_panic(
                "matmul",
                "A.cols must equal B.rows",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        mul_rm_with(self, other, None, kernel)
    }

    /// `self^T * other`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch, naming both shapes.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        if self.rows != other.rows {
            shape_panic(
                "t_matmul",
                "A.rows must equal B.rows",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        // `(AᵀB)[i][·] = Σ_r A[r][i] · B[r][·]`: streaming the rows of both
        // operands hits the axpy kernel without packing either transpose.
        yali_obs::count!("ml.gemm.calls", 1);
        yali_obs::count!("ml.gemm.fmas", (self.rows * self.cols * other.cols) as u64);
        yali_obs::count!("ml.gemm.kernel.scalar", 1);
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    axpy(av, brow, &mut out.data[i * other.cols..(i + 1) * other.cols]);
                }
            }
        }
        out
    }

    /// `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch, naming both shapes.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        if self.cols != other.cols {
            shape_panic(
                "matmul_t",
                "A.cols must equal B.cols",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        mul_rm(self, &other.transpose(), None)
    }

    /// Fused `self * other^T + bias`: every output row starts from `bias`
    /// instead of zero. This is one batched dense/conv forward pass.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch or when `bias.len() != other.rows`,
    /// naming the shapes.
    pub fn matmul_t_bias(&self, other: &Matrix, bias: &[f64]) -> Matrix {
        if self.cols != other.cols {
            shape_panic(
                "matmul_t_bias",
                "A.cols must equal B.cols",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        if bias.len() != other.rows {
            shape_panic(
                "matmul_t_bias",
                "bias length must equal B.rows",
                (bias.len(), 1),
                (other.rows, other.cols),
            );
        }
        mul_rm(self, &other.transpose(), Some(bias))
    }

    /// Accumulates each column's sum into `out` (`out[c] += Σ_r self[r][c]`),
    /// walking rows in order so the reduction is bit-stable.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.cols`, naming the shapes.
    pub fn add_col_sums(&self, out: &mut [f64]) {
        if out.len() != self.cols {
            shape_panic(
                "add_col_sums",
                "out length must equal cols",
                (self.rows, self.cols),
                (out.len(), 1),
            );
        }
        for r in 0..self.rows {
            axpy(1.0, self.row(r), out);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl Matrix32 {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix32 {
        Matrix32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Narrows an `f64` matrix to `f32` storage (one rounding per
    /// element).
    pub fn from_f64(m: &Matrix) -> Matrix32 {
        Matrix32 {
            rows: m.rows,
            cols: m.cols,
            data: m.data.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix32 {
        let mut m = Matrix32::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose, packed with cache-friendly tiles.
    pub fn transpose(&self) -> Matrix32 {
        const T: usize = 32;
        let mut out = Matrix32::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(T) {
            let rend = (rb + T).min(self.rows);
            for cb in (0..self.cols).step_by(T) {
                let cend = (cb + T).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Fused `self * other^T + bias` in `f32`, through the dispatched
    /// kernel family — the `lowp` batched forward pass.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch or when `bias.len() != other.rows`,
    /// naming the shapes.
    pub fn matmul_t_bias(&self, other: &Matrix32, bias: &[f32]) -> Matrix32 {
        if self.cols != other.cols {
            shape_panic(
                "matmul_t_bias(f32)",
                "A.cols must equal B.cols",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        if bias.len() != other.rows {
            shape_panic(
                "matmul_t_bias(f32)",
                "bias length must equal B.rows",
                (bias.len(), 1),
                (other.rows, other.cols),
            );
        }
        yali_obs::count!("ml.gemm.f32.calls", 1);
        yali_obs::count!("ml.gemm.f32.fmas", (self.rows * other.rows * self.cols) as u64);
        let bt = other.transpose();
        let n = bt.cols;
        let mut out = Matrix32::zeros(self.rows, n);
        for i in 0..self.rows {
            out.data[i * n..(i + 1) * n].copy_from_slice(bias);
        }
        kernel_simd::gemm_f32_with(
            active_kernel(),
            self.rows,
            self.cols,
            n,
            &self.data,
            &bt.data,
            &mut out.data,
        );
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Heap bytes held by the element storage.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Softmax in place (numerically stabilized).
pub fn softmax_inplace(v: &mut [f64]) {
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// Index of the maximum vote count (first on ties) — the integer twin of
/// [`argmax`], used by the voting models (rf, knn).
pub fn argmax_counts(v: &[usize]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// The Adam optimizer state for one parameter tensor. The first/second
/// moment buffers are allocated once at construction and updated in place
/// — `step` never allocates.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Learning rate.
    pub lr: f64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters.
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    /// Applies one update step of gradients `g` to parameters `p`.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree with construction.
    pub fn step(&mut self, p: &mut [f64], g: &[f64]) {
        self.step_scaled(p, g, 1.0);
    }

    /// Applies one update step of `scale * g` to `p` without materializing
    /// the scaled gradient — the fused path the layers use to fold the
    /// `1/batch` normalization into the moment update.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree with construction.
    pub fn step_scaled(&mut self, p: &mut [f64], g: &[f64], scale: f64) {
        assert_eq!(p.len(), self.m.len());
        assert_eq!(g.len(), self.m.len());
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..p.len() {
            let gi = scale * g[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * gi;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * gi * gi;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            p[i] -= self.lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-blocking triple-loop products: the reference oracle the
    /// blocked kernels are property-tested against.
    mod naive {
        use super::Matrix;

        pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.rows, b.cols);
            for r in 0..a.rows {
                for k in 0..a.cols {
                    let av = a.get(r, k);
                    for c in 0..b.cols {
                        out.data[r * b.cols + c] += av * b.get(k, c);
                    }
                }
            }
            out
        }

        pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.cols, b.cols);
            for r in 0..a.rows {
                for i in 0..a.cols {
                    let av = a.get(r, i);
                    for j in 0..b.cols {
                        out.data[i * b.cols + j] += av * b.get(r, j);
                    }
                }
            }
            out
        }

        pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.rows, b.rows);
            for r in 0..a.rows {
                for j in 0..b.rows {
                    let mut acc = 0.0;
                    for k in 0..a.cols {
                        acc += a.get(r, k) * b.get(j, k);
                    }
                    out.data[r * b.rows + j] = acc;
                }
            }
            out
        }
    }

    /// The scalar-fused bit-oracle for the SIMD kernels: IEEE `fma`
    /// rounds once, exactly like `f64::mul_add`, so each SIMD lane's
    /// ascending-`k` FMA chain must reproduce this loop bit for bit.
    fn fused_ref_f64(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                out[i * n + j] += acc;
            }
        }
        out
    }

    /// The `f32` twin of [`fused_ref_f64`].
    fn fused_ref_f32(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                out[i * n + j] += acc;
            }
        }
        out
    }

    /// Every non-scalar kernel runnable on this CPU.
    fn simd_kernels() -> Vec<GemmKernel> {
        [GemmKernel::Avx2, GemmKernel::Avx512, GemmKernel::Neon]
            .into_iter()
            .filter(|k| k.available())
            .collect()
    }

    fn assert_close(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols), "{what} shape");
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!((x - y).abs() < 1e-9, "{what} entry {i}: {x} vs {y}");
        }
    }

    fn fill(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            if vals.is_empty() {
                0.0
            } else {
                vals[(r * cols + c) % vals.len()]
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The dispatch contract: whichever kernel the process picked,
        // the three products agree with the naive triple loops on
        // arbitrary shapes, including degenerate 0xN and 1x1 operands.
        #[test]
        fn blocked_gemm_matches_the_naive_oracle(
            m in 0usize..9,
            k in 0usize..67,
            n in 0usize..41,
            vals in prop::collection::vec(-8.0f64..8.0, 1..48),
        ) {
            let a = fill(m, k, &vals);
            let b = fill(k, n, &vals[vals.len() / 2..]);
            assert_close(&a.matmul(&b), &naive::matmul(&a, &b), "matmul");

            let a2 = fill(k, m, &vals);
            assert_close(&a2.t_matmul(&b), &naive::t_matmul(&a2, &b), "t_matmul");

            let b2 = fill(n, k, &vals);
            assert_close(&a.matmul_t(&b2), &naive::matmul_t(&a, &b2), "matmul_t");

            let bias: Vec<f64> = (0..n).map(|j| j as f64 * 0.25 - 1.0).collect();
            let mut want = naive::matmul_t(&a, &b2);
            for r in 0..want.rows {
                axpy(1.0, &bias, want.row_mut(r));
            }
            assert_close(&a.matmul_t_bias(&b2, &bias), &want, "matmul_t_bias");
        }

        // The SIMD bit-oracle, randomized: each available SIMD kernel
        // reproduces the scalar fused-chain reference bit for bit on
        // random shapes (shape ranges straddle every tile width).
        #[test]
        fn simd_kernels_match_the_fused_oracle_bitwise(
            m in 0usize..19,
            k in 0usize..35,
            n in 0usize..37,
            vals in prop::collection::vec(-8.0f64..8.0, 1..48),
        ) {
            let a = fill(m, k, &vals);
            let b = fill(k, n, &vals[vals.len() / 2..]);
            let want = fused_ref_f64(m, k, n, &a.data, &b.data);
            for kernel in simd_kernels() {
                let mut got = vec![0.0f64; m * n];
                kernel_simd::gemm_f64_with(kernel, m, k, n, &a.data, &b.data, &mut got);
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    prop_assert_eq!(
                        g.to_bits(), w.to_bits(),
                        "kernel {} entry {}: {} vs {}", kernel.name(), i, g, w
                    );
                }
            }
        }

        #[test]
        fn transpose_round_trips(
            m in 0usize..12,
            n in 0usize..12,
            vals in prop::collection::vec(-4.0f64..4.0, 1..16),
        ) {
            let a = fill(m, n, &vals);
            let t = a.transpose();
            prop_assert_eq!((t.rows, t.cols), (n, m));
            prop_assert_eq!(t.transpose(), a);
        }
    }

    // The SIMD bit-oracle on handpicked adversarial shapes: empty
    // operands, single elements, column counts one either side of every
    // lane/tile width (4, 8, 16, 32), and row counts that are not
    // multiples of the 4- and 8-row blocks.
    #[test]
    fn simd_kernels_survive_adversarial_shapes_bitwise() {
        let kernels = simd_kernels();
        if kernels.is_empty() {
            eprintln!("skipping: no SIMD kernel on this host");
            return;
        }
        let vals: Vec<f64> = (0..97)
            .map(|i| ((i * 37 + 11) % 19) as f64 * 0.37 - 3.3)
            .collect();
        for &m in &[0usize, 1, 2, 3, 4, 5, 7, 8, 9, 11, 16, 17] {
            for &n in &[0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
                for &k in &[0usize, 1, 2, 13] {
                    let a = fill(m, k, &vals);
                    let b = fill(k, n, &vals[31..]);
                    let want = fused_ref_f64(m, k, n, &a.data, &b.data);
                    for &kernel in &kernels {
                        let mut got = vec![0.0f64; m * n];
                        kernel_simd::gemm_f64_with(kernel, m, k, n, &a.data, &b.data, &mut got);
                        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                w.to_bits(),
                                "kernel {} shape {m}x{k}x{n} entry {i}: {g} vs {w}",
                                kernel.name()
                            );
                        }
                    }
                }
            }
        }
    }

    // Same adversarial sweep for the f32 kernels (tile widths 8, 16, 32
    // columns), which back the Matrix32 inference path.
    #[test]
    fn simd_f32_kernels_survive_adversarial_shapes_bitwise() {
        let kernels = simd_kernels();
        if kernels.is_empty() {
            eprintln!("skipping: no SIMD kernel on this host");
            return;
        }
        for &m in &[0usize, 1, 3, 4, 5, 8, 9, 17] {
            for &n in &[0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
                for &k in &[0usize, 1, 13] {
                    let a: Vec<f32> =
                        (0..m * k).map(|i| ((i * 29 + 7) % 17) as f32 * 0.31 - 2.4).collect();
                    let b: Vec<f32> =
                        (0..k * n).map(|i| ((i * 41 + 3) % 23) as f32 * 0.17 - 1.9).collect();
                    let want = fused_ref_f32(m, k, n, &a, &b);
                    for &kernel in &kernels {
                        let mut got = vec![0.0f32; m * n];
                        kernel_simd::gemm_f32_with(kernel, m, k, n, &a, &b, &mut got);
                        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                            assert_eq!(
                                g.to_bits(),
                                w.to_bits(),
                                "kernel {} shape {m}x{k}x{n} entry {i}: {g} vs {w}",
                                kernel.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pinned_scalar_kernel_matches_dispatched_matmul_within_tolerance() {
        let vals: Vec<f64> = (0..53).map(|i| ((i * 13 + 5) % 29) as f64 * 0.21 - 2.9).collect();
        let a = fill(9, 23, &vals);
        let b = fill(23, 17, &vals[20..]);
        assert_close(
            &a.matmul_with_kernel(&b, GemmKernel::Scalar),
            &a.matmul(&b),
            "scalar vs dispatched",
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[should_panic(expected = "matmul_with_kernel: kernel neon is not available")]
    fn pinning_an_unavailable_kernel_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.matmul_with_kernel(&a, GemmKernel::Neon);
    }

    #[test]
    fn matrix32_matmul_t_bias_matches_f64_within_f32_tolerance() {
        let a = fill(7, 33, &[0.5, -1.25, 2.0, 0.75, -0.375]);
        let w = fill(5, 33, &[1.5, -0.25, 0.125, 2.5]);
        let bias: Vec<f64> = (0..5).map(|j| j as f64 * 0.5 - 1.0).collect();
        let want = a.matmul_t_bias(&w, &bias);
        let bias32: Vec<f32> = bias.iter().map(|&v| v as f32).collect();
        let got = Matrix32::from_f64(&a).matmul_t_bias(&Matrix32::from_f64(&w), &bias32);
        assert_eq!((got.rows, got.cols), (want.rows, want.cols));
        for (i, (g, w)) in got.data.iter().zip(&want.data).enumerate() {
            assert!((*g as f64 - w).abs() < 1e-3, "entry {i}: {g} vs {w}");
        }
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![10.0, 13.0, 28.0, 40.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 + 1.0);
        let a_t = a.transpose();
        assert_close(&a.t_matmul(&b), &a_t.matmul(&b), "t_matmul");

        let c = Matrix::from_fn(5, 2, |r, col| (r * 2 + col) as f64);
        let c_t = c.transpose();
        assert_close(&a.matmul_t(&c), &a.matmul(&c_t), "matmul_t");
    }

    #[test]
    #[should_panic(expected = "matmul: incompatible shapes 2x3 vs 4x2")]
    fn matmul_names_both_shapes_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "t_matmul: incompatible shapes 3x2 vs 4x5")]
    fn t_matmul_names_both_shapes_on_mismatch() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 5);
        let _ = a.t_matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_t: incompatible shapes 3x2 vs 4x5")]
    fn matmul_t_names_both_shapes_on_mismatch() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 5);
        let _ = a.matmul_t(&b);
    }

    #[test]
    fn from_rows_builds_and_col_sums_accumulate() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!((m.rows, m.cols), (3, 2));
        let mut sums = vec![0.5, 0.5];
        m.add_col_sums(&mut sums);
        assert_eq!(sums, vec![9.5, 12.5]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0; 7];
        axpy(2.0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "axpy: x.len() 3 != y.len() 2")]
    fn axpy_rejects_mismatched_lengths_in_debug_builds() {
        let mut y = vec![0.0; 2];
        axpy(1.0, &[1.0, 2.0, 3.0], &mut y);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize (p - 3)^2
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn step_scaled_equals_step_on_scaled_gradients() {
        let mut p1 = vec![1.0, -2.0, 0.5];
        let mut p2 = p1.clone();
        let mut o1 = Adam::new(3, 0.05);
        let mut o2 = Adam::new(3, 0.05);
        let g = vec![4.0, -6.0, 8.0];
        for _ in 0..20 {
            o1.step_scaled(&mut p1, &g, 0.25);
            let scaled: Vec<f64> = g.iter().map(|v| v * 0.25).collect();
            o2.step(&mut p2, &scaled);
        }
        assert_eq!(p1, p2);
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
