//! k-nearest-neighbours (`knn`): the only model in the study with no
//! stochastic training at all.

use crate::linalg::dist2;
use crate::serialize::{ByteReader, ByteWriter};

/// A fitted (memorized) kNN classifier.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl Knn {
    /// Memorizes the training set.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the training set is empty.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, k: usize) -> Knn {
        assert!(k > 0, "k must be positive");
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        Knn {
            k,
            x: x.to_vec(),
            y: y.to_vec(),
            n_classes,
        }
    }

    /// Majority vote among the k nearest training points (L2 distance).
    pub fn predict(&self, q: &[f64]) -> usize {
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (dist2(xi, q), yi))
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0usize; self.n_classes];
        for (_, yi) in dists.iter().take(self.k) {
            votes[*yi] += 1;
        }
        crate::linalg::argmax(&votes.iter().map(|&v| v as f64).collect::<Vec<_>>())
    }

    /// Approximate resident bytes (the stored training matrix).
    pub fn memory_bytes(&self) -> usize {
        self.x.iter().map(|r| r.len() * 8).sum::<usize>() + self.y.len() * 8
    }

    /// Serializes the memorized training set for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_usize(self.k);
        out.put_usize(self.n_classes);
        out.put_usizes(&self.y);
        out.put_usize(self.x.len());
        for row in &self.x {
            out.put_f64s(row);
        }
    }

    /// Reads a classifier back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> Knn {
        let k = r.get_usize();
        let n_classes = r.get_usize();
        let y = r.get_usizes();
        let n = r.get_usize();
        let x = (0..n).map(|_| r.get_f64s()).collect();
        Knn { k, x, y, n_classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0], vec![10.0], vec![20.0]];
        let y = vec![0, 1, 2];
        let knn = Knn::fit(&x, &y, 3, 1);
        assert_eq!(knn.predict(&[1.0]), 0);
        assert_eq!(knn.predict(&[11.0]), 1);
        assert_eq!(knn.predict(&[19.0]), 2);
    }

    #[test]
    fn k3_votes() {
        let x = vec![vec![0.0], vec![0.2], vec![0.4], vec![5.0]];
        let y = vec![0, 0, 1, 1];
        let knn = Knn::fit(&x, &y, 2, 3);
        // Neighbours of 0.1: {0.0:0, 0.2:0, 0.4:1} → class 0.
        assert_eq!(knn.predict(&[0.1]), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        Knn::fit(&[vec![1.0]], &[0], 1, 0);
    }

    #[test]
    fn memory_scales_with_data() {
        let small = Knn::fit(&[vec![1.0; 4]], &[0], 1, 1);
        let big = Knn::fit(&vec![vec![1.0; 4]; 100], &vec![0; 100], 1, 1);
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
