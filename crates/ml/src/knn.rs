//! k-nearest-neighbours (`knn`): the only model in the study with no
//! stochastic training at all.
//!
//! The memorized training set is stored as one flattened row-major
//! [`Matrix`] — a single allocation that the batched prediction path can
//! hand straight to the GEMM kernels. Queries are answered through the
//! distance-matrix identity
//!
//! ```text
//! d²(q, t) = ‖q‖² + ‖t‖² − 2·q·t        →        D = qn·1ᵀ + 1·tnᵀ − 2·Q·Tᵀ
//! ```
//!
//! so a whole chunk of queries costs one blocked [`Matrix::matmul_t`]
//! instead of a `dist2` loop per training row. The raw identity loses
//! precision when coordinates carry a large common offset (catastrophic
//! cancellation: the absolute error grows like `ε·(‖q‖² + ‖t‖²)` while
//! the true distances only measure the spread). As a compensated
//! correction both the stored matrix and every incoming query are
//! centered on the per-feature training mean — distances are translation
//! invariant, and centering shrinks the norms from the data's offset to
//! the data's spread, which keeps the residual error at
//! `O(ε·(‖q̂‖² + ‖t̂‖²))` in centered coordinates: negligible against any
//! inter-point distance the vote could hinge on (pinned by the
//! brute-force agreement test below).
//!
//! Neighbour selection uses `select_nth_unstable_by` — `O(N)` instead of
//! a full `O(N log N)` sort — with an explicit `(distance,
//! training-index)` tie-break. The composite key is unique per training
//! row, so the selected k-set (and therefore the vote) is deterministic
//! regardless of the partition order.

use crate::linalg::{argmax_counts, dot, Matrix};
use crate::serialize::{ByteReader, ByteWriter};

/// A fitted (memorized) kNN classifier.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    /// Mean-centered training matrix, one row per memorized sample.
    x: Matrix,
    y: Vec<usize>,
    n_classes: usize,
    /// Per-feature training mean, subtracted from rows and queries alike.
    mean: Vec<f64>,
    /// Squared norm of each centered training row.
    norms: Vec<f64>,
}

impl Knn {
    /// Memorizes the training set (centered on its per-feature mean).
    ///
    /// # Panics
    ///
    /// Panics when `k == 0` or the training set is empty.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, k: usize) -> Knn {
        assert!(k > 0, "k must be positive");
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        let d = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut xm = Matrix::zeros(x.len(), d);
        for (r, row) in x.iter().enumerate() {
            let dst = xm.row_mut(r);
            for (c, (v, m)) in row.iter().zip(&mean).enumerate() {
                dst[c] = v - m;
            }
        }
        let norms = (0..xm.rows).map(|r| dot(xm.row(r), xm.row(r))).collect();
        Knn {
            k,
            x: xm,
            y: y.to_vec(),
            n_classes,
            mean,
            norms,
        }
    }

    /// Majority vote among the k nearest training points (L2 distance),
    /// routed through the same distance-matrix kernel as
    /// [`Knn::predict_chunk`] so batch and per-sample answers are
    /// bit-identical by construction.
    pub fn predict(&self, q: &[f64]) -> usize {
        self.predict_chunk(&[q])[0]
    }

    /// Class vote counts for one chunk of queries: centers the chunk,
    /// forms the query×train distance matrix with one GEMM, and selects
    /// each row's k nearest with a partial `select_nth_unstable_by` under
    /// the deterministic `(distance, training-index)` order.
    fn votes_chunk(&self, qs: &[&[f64]]) -> Vec<Vec<usize>> {
        if qs.is_empty() {
            return Vec::new();
        }
        let d = self.x.cols;
        let mut qm = Matrix::zeros(qs.len(), d);
        for (r, q) in qs.iter().enumerate() {
            let dst = qm.row_mut(r);
            for (c, (v, m)) in q.iter().zip(&self.mean).enumerate() {
                dst[c] = v - m;
            }
        }
        let qnorms: Vec<f64> = (0..qm.rows).map(|r| dot(qm.row(r), qm.row(r))).collect();
        let prod = qm.matmul_t(&self.x);
        let n = self.x.rows;
        let kk = self.k.min(n);
        let mut out = Vec::with_capacity(qs.len());
        let mut cand: Vec<(f64, usize)> = Vec::with_capacity(n);
        for (r, &qn) in qnorms.iter().enumerate() {
            cand.clear();
            let prow = prod.row(r);
            cand.extend(
                (0..n).map(|j| ((qn + self.norms[j] - 2.0 * prow[j]).max(0.0), j)),
            );
            if kk < n {
                cand.select_nth_unstable_by(kk - 1, |a, b| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
                });
            }
            let mut votes = vec![0usize; self.n_classes];
            for &(_, j) in &cand[..kk] {
                votes[self.y[j]] += 1;
            }
            out.push(votes);
        }
        out
    }

    /// Labels for one chunk of queries (argmax vote, first class on ties).
    pub(crate) fn predict_chunk(&self, qs: &[&[f64]]) -> Vec<usize> {
        self.votes_chunk(qs).iter().map(|v| argmax_counts(v)).collect()
    }

    /// Vote shares (votes / k) for one chunk of queries.
    pub(crate) fn proba_chunk(&self, qs: &[&[f64]]) -> Vec<Vec<f64>> {
        let kk = self.k.min(self.x.rows) as f64;
        self.votes_chunk(qs)
            .into_iter()
            .map(|votes| votes.into_iter().map(|v| v as f64 / kk).collect())
            .collect()
    }

    /// Approximate resident bytes (the flattened training matrix plus
    /// labels, mean, and cached norms).
    pub fn memory_bytes(&self) -> usize {
        self.x.data.len() * 8
            + self.y.len() * 8
            + self.mean.len() * 8
            + self.norms.len() * 8
    }

    /// Serializes the memorized training set for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_usize(self.k);
        out.put_usize(self.n_classes);
        out.put_usizes(&self.y);
        out.put_f64s(&self.mean);
        out.put_matrix(&self.x);
    }

    /// Reads a classifier back from a model-store blob (norms are
    /// recomputed — they are derived data).
    pub fn read(r: &mut ByteReader) -> Knn {
        let k = r.get_usize();
        let n_classes = r.get_usize();
        let y = r.get_usizes();
        let mean = r.get_f64s();
        let x = r.get_matrix();
        let norms = (0..x.rows).map(|r| dot(x.row(r), x.row(r))).collect();
        Knn {
            k,
            x,
            y,
            n_classes,
            mean,
            norms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dist2;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0], vec![10.0], vec![20.0]];
        let y = vec![0, 1, 2];
        let knn = Knn::fit(&x, &y, 3, 1);
        assert_eq!(knn.predict(&[1.0]), 0);
        assert_eq!(knn.predict(&[11.0]), 1);
        assert_eq!(knn.predict(&[19.0]), 2);
    }

    #[test]
    fn k3_votes() {
        let x = vec![vec![0.0], vec![0.2], vec![0.4], vec![5.0]];
        let y = vec![0, 0, 1, 1];
        let knn = Knn::fit(&x, &y, 2, 3);
        // Neighbours of 0.1: {0.0:0, 0.2:0, 0.4:1} → class 0.
        assert_eq!(knn.predict(&[0.1]), 0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        Knn::fit(&[vec![1.0]], &[0], 1, 0);
    }

    #[test]
    fn memory_scales_with_data() {
        let small = Knn::fit(&[vec![1.0; 4]], &[0], 1, 1);
        let big = Knn::fit(&vec![vec![1.0; 4]; 100], &vec![0; 100], 1, 1);
        assert!(big.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn k_larger_than_training_set_votes_over_everything() {
        let knn = Knn::fit(&[vec![0.0], vec![1.0], vec![2.0]], &[1, 1, 0], 2, 10);
        assert_eq!(knn.predict(&[2.0]), 1);
    }

    #[test]
    fn distance_ties_break_by_training_index() {
        // Both memorized points are exactly 1.0 away from the query; the
        // deterministic tie-break keeps the lower training index.
        let knn = Knn::fit(&[vec![1.0], vec![-1.0]], &[1, 0], 2, 1);
        assert_eq!(knn.predict(&[0.0]), 1);
    }

    /// The `dist2`-based reference: full sort under the same
    /// `(distance, training-index)` order, then the same vote.
    fn brute_force(x: &[Vec<f64>], y: &[usize], n_classes: usize, k: usize, q: &[f64]) -> usize {
        let mut d: Vec<(f64, usize)> = x
            .iter()
            .enumerate()
            .map(|(j, xj)| (dist2(xj, q), j))
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes = vec![0usize; n_classes];
        for &(_, j) in d.iter().take(k.min(x.len())) {
            votes[y[j]] += 1;
        }
        argmax_counts(&votes)
    }

    #[test]
    fn gemm_distance_path_agrees_with_dist2_brute_force() {
        // Adversarial memorized set: exact duplicates, all-zero rows, and
        // clusters offset by ±1e8. At that offset the *raw* GEMM identity
        // carries ~2e16-sized intermediate terms, so its absolute error is
        // around 1e16·ε ≈ 2 — larger than the unit-scale spread inside
        // each cluster. The mean-centering correction reduces the
        // intermediates to the spread itself (≤ ~1e8 after centering a
        // two-sided split, error ≈ 1e-8·scale), far below every distance
        // the vote depends on, so labels must match `dist2` brute force
        // exactly.
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![1e8, 1e8],
            vec![1e8 + 1.0, 1e8],
            vec![1e8 + 2.0, 1e8 + 1.0],
            vec![-1e8, -1e8 + 1.0],
            vec![-1e8 + 1.0, -1e8],
        ];
        let y = vec![0, 0, 1, 1, 1, 2, 2];
        let knn = Knn::fit(&x, &y, 3, 3);
        let queries: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![0.5, -0.5],
            vec![1e8 + 0.5, 1e8 + 0.5],
            vec![1e8 + 1.5, 1e8],
            vec![-1e8, -1e8],
            vec![-1e8 + 2.0, -1e8 + 2.0],
        ];
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let batched = knn.predict_chunk(&refs);
        for (q, &label) in queries.iter().zip(&batched) {
            assert_eq!(label, brute_force(&x, &y, 3, 3, q), "query {q:?}");
            assert_eq!(label, knn.predict(q), "per-sample path, query {q:?}");
        }
        // Sanity on the duplicates: querying a memorized point returns its
        // own class at k=1 (distance exactly zero beats everything).
        let knn1 = Knn::fit(&x, &y, 3, 1);
        assert_eq!(knn1.predict(&[0.0, 0.0]), 0);
        assert_eq!(knn1.predict(&[1e8, 1e8]), 1);
    }

    #[test]
    fn serialization_round_trips() {
        let x = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let y = vec![0, 1, 0];
        let knn = Knn::fit(&x, &y, 2, 2);
        let mut w = ByteWriter::new();
        knn.write(&mut w);
        let bytes = w.into_bytes();
        let back = Knn::read(&mut ByteReader::new(&bytes));
        for q in &x {
            assert_eq!(knn.predict(q), back.predict(q));
        }
        assert_eq!(knn.memory_bytes(), back.memory_bytes());
    }
}
