//! Evaluation metrics: accuracy, per-class precision/recall, and F1.

/// The fraction of predictions equal to the label.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "empty evaluation set");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// A confusion matrix with `n_classes × n_classes` counts
/// (`[truth][prediction]`).
pub fn confusion(pred: &[usize], truth: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &t) in pred.iter().zip(truth) {
        m[t][p] += 1;
    }
    m
}

/// Macro-averaged F1 score: the unweighted mean of per-class F1 values.
/// On a perfectly balanced dataset it carries the same information as
/// accuracy, which is why the paper reports accuracy almost everywhere
/// (Section 4, "Evaluation Metric").
#[allow(clippy::needless_range_loop)] // index form mirrors the formula
pub fn macro_f1(pred: &[usize], truth: &[usize], n_classes: usize) -> f64 {
    let m = confusion(pred, truth, n_classes);
    let mut f1_sum = 0.0;
    for c in 0..n_classes {
        let tp = m[c][c] as f64;
        let fp: f64 = (0..n_classes).filter(|&t| t != c).map(|t| m[t][c] as f64).sum();
        let fn_: f64 = (0..n_classes).filter(|&p| p != c).map(|p| m[c][p] as f64).sum();
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        f1_sum += f1;
    }
    f1_sum / n_classes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[0, 1, 2, 0], &[0, 1, 1, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn confusion_places_counts() {
        let m = confusion(&[0, 1, 1], &[0, 0, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn f1_equals_accuracy_on_balanced_perfect_and_symmetric_errors() {
        // Perfect prediction on a balanced set.
        let truth = vec![0, 0, 1, 1, 2, 2];
        assert!((macro_f1(&truth, &truth, 3) - 1.0).abs() < 1e-12);
        // Balanced symmetric confusion: accuracy == macro F1.
        let pred = vec![0, 1, 1, 2, 2, 0];
        let acc = accuracy(&pred, &truth);
        let f1 = macro_f1(&pred, &truth, 3);
        assert!((acc - f1).abs() < 1e-12, "acc {acc} vs f1 {f1}");
    }

    #[test]
    fn f1_is_zero_when_nothing_is_right() {
        let truth = vec![0, 1];
        let pred = vec![1, 0];
        assert_eq!(macro_f1(&pred, &truth, 2), 0.0);
    }
}
