//! Neural-network building blocks with manual backpropagation: dense,
//! ReLU, dropout, 1-D convolution, and 1-D max pooling, plus a small
//! sequential trainer with a softmax cross-entropy head.
//!
//! The `mlp`, `cnn`, and `dgcnn` models are all assembled from these
//! layers.

use crate::linalg::{argmax, softmax_inplace, Adam};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A differentiable layer processing flat `f64` vectors.
///
/// Training uses [`Layer::forward`], which caches activations for the
/// following [`Layer::backward`]. Inference uses [`Layer::infer`], which is
/// pure (`&self`, eval-mode semantics, no caches) — that is what lets a
/// trained network classify from many threads at once.
pub trait Layer: Send + Sync {
    /// Forward pass; `train` enables stochastic behaviour (dropout).
    fn forward(&mut self, x: &[f64], train: bool) -> Vec<f64>;
    /// Pure eval-mode forward pass: no activation caches, no RNG.
    fn infer(&self, x: &[f64]) -> Vec<f64>;
    /// Backward pass: receives ∂L/∂output, accumulates parameter gradients,
    /// returns ∂L/∂input.
    fn backward(&mut self, grad: &[f64]) -> Vec<f64>;
    /// Applies and clears accumulated gradients (scaled by `1/batch`).
    fn step(&mut self, batch: usize);
    /// Number of trainable parameters.
    fn num_params(&self) -> usize;
}

/// Fully connected layer.
pub struct Dense {
    w: Vec<f64>, // out × in, row-major
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    opt_w: Adam,
    opt_b: Adam,
    n_in: usize,
    n_out: usize,
    last_x: Vec<f64>,
}

impl Dense {
    /// Creates a dense layer with Xavier-ish initialization.
    pub fn new(n_in: usize, n_out: usize, lr: f64, rng: &mut impl Rng) -> Dense {
        let scale = (2.0 / (n_in + n_out) as f64).sqrt();
        Dense {
            w: (0..n_in * n_out)
                .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                .collect(),
            b: vec![0.0; n_out],
            gw: vec![0.0; n_in * n_out],
            gb: vec![0.0; n_out],
            opt_w: Adam::new(n_in * n_out, lr),
            opt_b: Adam::new(n_out, lr),
            n_in,
            n_out,
            last_x: Vec::new(),
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &[f64], _train: bool) -> Vec<f64> {
        self.last_x = x.to_vec();
        self.infer(x)
    }

    #[allow(clippy::needless_range_loop)] // row indexing mirrors Wx+b
    fn infer(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.n_in);
        let mut out = self.b.clone();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            out[o] += row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        }
        out
    }

    #[allow(clippy::needless_range_loop)] // row indexing mirrors the math
    fn backward(&mut self, grad: &[f64]) -> Vec<f64> {
        let mut gx = vec![0.0; self.n_in];
        for o in 0..self.n_out {
            let g = grad[o];
            self.gb[o] += g;
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let grow = &mut self.gw[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                grow[i] += g * self.last_x[i];
                gx[i] += g * row[i];
            }
        }
        gx
    }

    fn step(&mut self, batch: usize) {
        let s = 1.0 / batch.max(1) as f64;
        for g in &mut self.gw {
            *g *= s;
        }
        for g in &mut self.gb {
            *g *= s;
        }
        self.opt_w.step(&mut self.w, &self.gw);
        self.opt_b.step(&mut self.b, &self.gb);
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Layer for Relu {
    fn forward(&mut self, x: &[f64], _train: bool) -> Vec<f64> {
        self.mask = x.iter().map(|&v| v > 0.0).collect();
        self.infer(x)
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| v.max(0.0)).collect()
    }

    fn backward(&mut self, grad: &[f64]) -> Vec<f64> {
        grad.iter()
            .zip(&self.mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect()
    }

    fn step(&mut self, _batch: usize) {}

    fn num_params(&self) -> usize {
        0
    }
}

/// Inverted dropout.
pub struct Dropout {
    p: f64,
    rng: ChaCha8Rng,
    mask: Vec<f64>,
}

impl Dropout {
    /// Drops activations with probability `p` during training.
    pub fn new(p: f64, seed: u64) -> Dropout {
        Dropout {
            p,
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: Vec::new(),
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &[f64], train: bool) -> Vec<f64> {
        if !train || self.p <= 0.0 {
            self.mask = vec![1.0; x.len()];
            return x.to_vec();
        }
        let keep = 1.0 - self.p;
        self.mask = x
            .iter()
            .map(|_| {
                if self.rng.gen::<f64>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        x.iter().zip(&self.mask).map(|(v, m)| v * m).collect()
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        // Eval-mode dropout is the identity (inverted dropout rescales at
        // train time), so inference needs neither the RNG nor a mask.
        x.to_vec()
    }

    fn backward(&mut self, grad: &[f64]) -> Vec<f64> {
        grad.iter().zip(&self.mask).map(|(g, m)| g * m).collect()
    }

    fn step(&mut self, _batch: usize) {}

    fn num_params(&self) -> usize {
        0
    }
}

/// 1-D convolution over `(channels, length)` data stored channel-major.
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    in_len: usize,
    out_len: usize,
    w: Vec<f64>, // out_ch × in_ch × kernel
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    opt_w: Adam,
    opt_b: Adam,
    last_x: Vec<f64>,
}

impl Conv1d {
    /// Creates a convolution for inputs of `in_ch` channels and length
    /// `in_len`.
    ///
    /// # Panics
    ///
    /// Panics when the kernel does not fit the input.
    pub fn new(
        in_ch: usize,
        in_len: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        lr: f64,
        rng: &mut impl Rng,
    ) -> Conv1d {
        assert!(kernel <= in_len, "kernel {kernel} exceeds input {in_len}");
        let out_len = (in_len - kernel) / stride + 1;
        let n = out_ch * in_ch * kernel;
        let scale = (2.0 / (in_ch * kernel + out_ch) as f64).sqrt();
        Conv1d {
            in_ch,
            out_ch,
            kernel,
            stride,
            in_len,
            out_len,
            w: (0..n).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale).collect(),
            b: vec![0.0; out_ch],
            gw: vec![0.0; n],
            gb: vec![0.0; out_ch],
            opt_w: Adam::new(n, lr),
            opt_b: Adam::new(out_ch, lr),
            last_x: Vec::new(),
        }
    }

    /// Output size (`out_ch * out_len`).
    pub fn output_size(&self) -> usize {
        self.out_ch * self.out_len
    }

    #[inline]
    fn widx(&self, o: usize, c: usize, k: usize) -> usize {
        (o * self.in_ch + c) * self.kernel + k
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &[f64], _train: bool) -> Vec<f64> {
        self.last_x = x.to_vec();
        self.infer(x)
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_ch * self.in_len);
        let mut out = vec![0.0; self.out_ch * self.out_len];
        for o in 0..self.out_ch {
            for p in 0..self.out_len {
                let mut acc = self.b[o];
                let base = p * self.stride;
                for c in 0..self.in_ch {
                    let xrow = &x[c * self.in_len..(c + 1) * self.in_len];
                    for k in 0..self.kernel {
                        acc += self.w[self.widx(o, c, k)] * xrow[base + k];
                    }
                }
                out[o * self.out_len + p] = acc;
            }
        }
        out
    }

    fn backward(&mut self, grad: &[f64]) -> Vec<f64> {
        let mut gx = vec![0.0; self.in_ch * self.in_len];
        for o in 0..self.out_ch {
            for p in 0..self.out_len {
                let g = grad[o * self.out_len + p];
                if g == 0.0 {
                    continue;
                }
                self.gb[o] += g;
                let base = p * self.stride;
                for c in 0..self.in_ch {
                    for k in 0..self.kernel {
                        let xi = c * self.in_len + base + k;
                        let wi = self.widx(o, c, k);
                        self.gw[wi] += g * self.last_x[xi];
                        gx[xi] += g * self.w[wi];
                    }
                }
            }
        }
        gx
    }

    fn step(&mut self, batch: usize) {
        let s = 1.0 / batch.max(1) as f64;
        for g in &mut self.gw {
            *g *= s;
        }
        for g in &mut self.gb {
            *g *= s;
        }
        self.opt_w.step(&mut self.w, &self.gw);
        self.opt_b.step(&mut self.b, &self.gb);
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn num_params(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// 1-D max pooling over `(channels, length)` channel-major data.
pub struct MaxPool1d {
    ch: usize,
    in_len: usize,
    size: usize,
    out_len: usize,
    arg: Vec<usize>,
}

impl MaxPool1d {
    /// Pools windows of `size` (stride = size). The final window is
    /// truncated when `size` does not divide `in_len`, so the output is
    /// never empty.
    pub fn new(ch: usize, in_len: usize, size: usize) -> MaxPool1d {
        MaxPool1d {
            ch,
            in_len,
            size,
            out_len: in_len.div_ceil(size).max(1),
            arg: Vec::new(),
        }
    }

    /// Output size (`ch * out_len`).
    pub fn output_size(&self) -> usize {
        self.ch * self.out_len
    }
}

impl MaxPool1d {
    /// Shared pooling kernel: returns `(outputs, argmax indices)`.
    fn pool(&self, x: &[f64]) -> (Vec<f64>, Vec<usize>) {
        let mut out = vec![0.0; self.ch * self.out_len];
        let mut arg = vec![0; self.ch * self.out_len];
        for c in 0..self.ch {
            for p in 0..self.out_len {
                let start = p * self.size;
                let end = ((p + 1) * self.size).min(self.in_len);
                let base = c * self.in_len + start;
                let mut best = base;
                for k in 1..end.saturating_sub(start) {
                    if x[base + k] > x[best] {
                        best = base + k;
                    }
                }
                out[c * self.out_len + p] = x[best];
                arg[c * self.out_len + p] = best;
            }
        }
        (out, arg)
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, x: &[f64], _train: bool) -> Vec<f64> {
        let (out, arg) = self.pool(x);
        self.arg = arg;
        out
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        self.pool(x).0
    }

    fn backward(&mut self, grad: &[f64]) -> Vec<f64> {
        let mut gx = vec![0.0; self.ch * self.in_len];
        for (i, &a) in self.arg.iter().enumerate() {
            gx[a] += grad[i];
        }
        gx
    }

    fn step(&mut self, _batch: usize) {}

    fn num_params(&self) -> usize {
        0
    }
}

/// A sequential network trained with softmax cross-entropy.
pub struct Net {
    /// The layer stack; the final layer must output `n_classes` logits.
    pub layers: Vec<Box<dyn Layer>>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Net {
    /// Forward pass through all layers.
    pub fn forward(&mut self, x: &[f64], train: bool) -> Vec<f64> {
        let mut cur = x.to_vec();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    /// Pure eval-mode forward pass; safe to call from many threads at once.
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for l in &self.layers {
            cur = l.infer(&cur);
        }
        cur
    }

    /// Backward pass from a loss gradient on the logits; returns the
    /// gradient at the input.
    pub fn backward(&mut self, grad: &[f64]) -> Vec<f64> {
        let mut cur = grad.to_vec();
        for l in self.layers.iter_mut().rev() {
            cur = l.backward(&cur);
        }
        cur
    }

    /// Applies accumulated gradients.
    pub fn step(&mut self, batch: usize) {
        for l in &mut self.layers {
            l.step(batch);
        }
    }

    /// Computes the cross-entropy gradient at the logits; returns
    /// `(loss, grad)`.
    pub fn ce_grad(logits: &[f64], y: usize) -> (f64, Vec<f64>) {
        let mut probs = logits.to_vec();
        softmax_inplace(&mut probs);
        let loss = -(probs[y].max(1e-12)).ln();
        let mut grad = probs;
        grad[y] -= 1.0;
        (loss, grad)
    }

    /// Trains on `(x, y)` and returns the final epoch's mean loss.
    pub fn fit(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        epochs: usize,
        batch: usize,
        seed: u64,
    ) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut last = f64::INFINITY;
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for chunk in order.chunks(batch) {
                for &i in chunk {
                    let logits = self.forward(&x[i], true);
                    let (loss, grad) = Net::ce_grad(&logits, y[i]);
                    total += loss;
                    self.backward(&grad);
                }
                self.step(chunk.len());
            }
            last = total / x.len() as f64;
        }
        last
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.infer(x))
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Class 0 inside radius 1, class 1 outside — not linearly separable.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..80 {
            let a = k as f64 * 0.6;
            let r = if k % 2 == 0 { 0.5 } else { 2.0 };
            x.push(vec![r * a.cos(), r * a.sin()]);
            y.push(k % 2);
        }
        (x, y)
    }

    #[test]
    fn mlp_learns_a_ring() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Net {
            layers: vec![
                Box::new(Dense::new(2, 32, 0.01, &mut rng)),
                Box::new(Relu::default()),
                Box::new(Dense::new(32, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        };
        let (x, y) = ring_data();
        net.fit(&x, &y, 120, 16, 1);
        let pred: Vec<usize> = x.iter().map(|v| net.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.95);
    }

    #[test]
    fn loss_decreases() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Net {
            layers: vec![
                Box::new(Dense::new(2, 16, 0.01, &mut rng)),
                Box::new(Relu::default()),
                Box::new(Dense::new(16, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        };
        let (x, y) = ring_data();
        let early = net.fit(&x, &y, 3, 16, 1);
        let late = net.fit(&x, &y, 100, 16, 1);
        assert!(late < early, "{late} !< {early}");
    }

    #[test]
    fn conv_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv1d::new(2, 10, 4, 3, 1, 0.01, &mut rng);
        assert_eq!(conv.output_size(), 4 * 8);
        let x = vec![0.5; 20];
        let out = conv.forward(&x, false);
        assert_eq!(out.len(), 32);
        let gx = conv.backward(&vec![1.0; 32]);
        assert_eq!(gx.len(), 20);
    }

    #[test]
    fn conv_net_trains_on_patterns() {
        // Class by whether the spike is in the first or second half.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..60 {
            let mut v = vec![0.0; 16];
            let pos = if k % 2 == 0 { k % 6 } else { 8 + k % 6 };
            v[pos] = 1.0;
            x.push(v);
            y.push(k % 2);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let conv = Conv1d::new(1, 16, 4, 5, 1, 0.01, &mut rng);
        let c_out = conv.output_size();
        let pool = MaxPool1d::new(4, 12, 2);
        let p_out = pool.output_size();
        let mut net = Net {
            layers: vec![
                Box::new(conv),
                Box::new(Relu::default()),
                Box::new(pool),
                Box::new(Dense::new(p_out, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        };
        assert_eq!(c_out, 4 * 12);
        net.fit(&x, &y, 60, 8, 1);
        let pred: Vec<usize> = x.iter().map(|v| net.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.9);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let mut pool = MaxPool1d::new(1, 4, 2);
        let out = pool.forward(&[1.0, 5.0, 2.0, 0.5], false);
        assert_eq!(out, vec![5.0, 2.0]);
        let gx = pool.backward(&[1.0, 1.0]);
        assert_eq!(gx, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn dropout_is_identity_at_eval() {
        let mut d = Dropout::new(0.5, 0);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn param_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Net {
            layers: vec![
                Box::new(Dense::new(10, 5, 0.01, &mut rng)),
                Box::new(Relu::default()),
                Box::new(Dense::new(5, 3, 0.01, &mut rng)),
            ],
            n_classes: 3,
        };
        assert_eq!(net.num_params(), 10 * 5 + 5 + 5 * 3 + 3);
    }
}
