//! Neural-network building blocks with manual backpropagation: dense,
//! ReLU, dropout, 1-D convolution, and 1-D max pooling, plus a small
//! sequential trainer with a softmax cross-entropy head.
//!
//! The `mlp`, `cnn`, and `dgcnn` models are all assembled from these
//! layers.
//!
//! # Batched, pure training passes
//!
//! Layers process whole minibatches as row-major [`Matrix`] values, so the
//! heavy passes are single GEMM calls on the blocked kernels in
//! [`crate::linalg`]: a dense forward is one fused `X·Wᵀ + b`, a
//! convolution is an im2col pack followed by the same fused product, and
//! the backward passes are the matching transposed products. `forward` and
//! `backward` take `&self` and keep their activations in an explicit
//! [`Cache`]; parameter gradients accumulate into caller-owned
//! [`LayerGrads`] buffers. Because a training pass never mutates the
//! network, minibatches can be split into fixed micro-batches whose
//! gradients are computed on worker threads and merged in index order —
//! [`Net::fit`] produces byte-identical weights at any thread count.
//!
//! Stochastic behaviour (dropout) draws from per-sample seeds carried in
//! [`BatchCtx`], derived from `(fit seed, epoch, dataset index)` — never
//! from a sequential RNG stream — so the masks a sample sees do not depend
//! on how the batch was scheduled.

use crate::linalg::{argmax, axpy, dot, softmax_inplace, Adam, Matrix};
use crate::serialize::{ByteReader, ByteWriter};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Samples per micro-batch. The decomposition of a minibatch into
/// micro-batches is fixed (independent of thread count), so merging
/// micro-gradients in index order makes training deterministic under
/// parallelism.
pub(crate) const MICRO_BATCH: usize = 8;

/// Minimum `num_params × minibatch` product before a training step fans
/// micro-batches out to worker threads; below it, thread-spawn overhead
/// outweighs the GEMM work and the step runs inline (same decomposition,
/// same result).
pub(crate) const PAR_MIN_WORK: usize = 200_000;

/// One round of the splitmix64 finalizer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two words into one seed.
pub(crate) fn mix2(a: u64, b: u64) -> u64 {
    splitmix(splitmix(a) ^ b)
}

/// Derives the per-sample seed for `(fit seed, epoch, dataset index)`.
pub(crate) fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix(mix2(a, b) ^ c)
}

/// A non-negative f64 in units of 1/1000, saturated into a u64 for the
/// observability histograms (loss values are reported, never consumed, so
/// the rounding cannot perturb training).
pub(crate) fn to_millis(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        (v * 1000.0).round() as u64
    } else {
        0
    }
}

/// Picks the worker count for one training step of `work = params × batch`
/// split into `n_micros` micro-batches.
pub(crate) fn step_threads(requested: usize, n_micros: usize, work: usize) -> usize {
    if n_micros > 1 && work >= PAR_MIN_WORK {
        requested
    } else {
        1
    }
}

/// Per-batch context for a training forward pass.
pub struct BatchCtx {
    /// Training mode: enables stochastic behaviour (dropout).
    pub train: bool,
    /// One seed per batch row, a pure function of `(fit seed, epoch,
    /// dataset index)` — see [`mix3`]. Empty in eval mode.
    pub seeds: Vec<u64>,
}

impl BatchCtx {
    /// Eval-mode context: deterministic layers only.
    pub fn eval() -> BatchCtx {
        BatchCtx {
            train: false,
            seeds: Vec::new(),
        }
    }

    /// Training-mode context with per-row sample seeds.
    pub fn train(seeds: Vec<u64>) -> BatchCtx {
        BatchCtx { train: true, seeds }
    }
}

/// Caller-owned gradient accumulators for one layer's parameters.
#[derive(Clone, Debug, Default)]
pub struct LayerGrads {
    /// Weight gradient, same layout as the layer's weights.
    pub gw: Vec<f64>,
    /// Bias gradient.
    pub gb: Vec<f64>,
}

impl LayerGrads {
    /// Zeroed buffers for a layer reporting `dims = (w_len, b_len)`.
    pub fn new(dims: (usize, usize)) -> LayerGrads {
        LayerGrads {
            gw: vec![0.0; dims.0],
            gb: vec![0.0; dims.1],
        }
    }

    /// Accumulates `other` into `self` (fixed order, so merging
    /// micro-gradients index-by-index is deterministic).
    pub fn add(&mut self, other: &LayerGrads) {
        axpy(1.0, &other.gw, &mut self.gw);
        axpy(1.0, &other.gb, &mut self.gb);
    }

    /// Zeroes the buffers in place (no reallocation).
    pub fn clear(&mut self) {
        self.gw.iter_mut().for_each(|g| *g = 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Activation stash from one layer's batched forward pass, consumed by the
/// matching backward pass. Layers use the fields as they see fit (`m` for
/// an input/mask matrix, `idx` for routing indices); unused fields stay
/// empty.
#[derive(Default)]
pub struct Cache {
    /// Matrix stash (layer input, im2col pack, or dropout mask).
    pub m: Matrix,
    /// Index stash (max-pool argmax routing).
    pub idx: Vec<usize>,
}

/// A differentiable layer processing minibatches of flat `f64` rows.
///
/// Training uses [`Layer::forward`]/[`Layer::backward`], which are **pure**
/// (`&self`): activations live in the returned [`Cache`] and parameter
/// gradients accumulate into caller-owned [`LayerGrads`]. That purity is
/// what lets the trainer compute micro-batch gradients on many threads at
/// once. [`Layer::step`] applies accumulated gradients. Inference uses
/// [`Layer::infer`], a single-sample eval-mode pass.
pub trait Layer: Send + Sync {
    /// Batched forward pass over `x` (one sample per row); returns the
    /// output batch and the activation cache for [`Layer::backward`].
    fn forward(&self, x: Matrix, ctx: &BatchCtx) -> (Matrix, Cache);
    /// Pure eval-mode forward pass over one sample.
    fn infer(&self, x: &[f64]) -> Vec<f64>;
    /// Batched backward pass: receives ∂L/∂output, accumulates parameter
    /// gradients into `grads`, returns ∂L/∂input.
    fn backward(&self, cache: &Cache, grad: &Matrix, grads: &mut LayerGrads) -> Matrix;
    /// Applies gradients scaled by `1/batch`. Does not clear `grads`.
    fn step(&mut self, grads: &LayerGrads, batch: usize);
    /// Gradient buffer sizes `(w_len, b_len)`.
    fn grad_dims(&self) -> (usize, usize);
    /// Number of trainable parameters.
    fn num_params(&self) -> usize;
    /// Serializes the layer (tag plus parameters) for the model store.
    fn write(&self, out: &mut ByteWriter);
    /// The `(weights, bias)` of a dense layer — what the reduced-precision
    /// `lowp` classifiers narrow to `f32`/int8. `None` for every other
    /// layer kind.
    fn dense_params(&self) -> Option<(&Matrix, &[f64])> {
        None
    }
}

const TAG_DENSE: u8 = 1;
const TAG_RELU: u8 = 2;
const TAG_DROPOUT: u8 = 3;
const TAG_CONV1D: u8 = 4;
const TAG_MAXPOOL1D: u8 = 5;

/// Reads one layer back from a model-store blob.
///
/// # Panics
///
/// Panics on an unknown layer tag (a serializer bug, not an input error).
pub fn read_layer(r: &mut ByteReader) -> Box<dyn Layer> {
    match r.get_u8() {
        TAG_DENSE => Box::new(Dense::read(r)),
        TAG_RELU => Box::new(Relu),
        TAG_DROPOUT => Box::new(Dropout {
            p: r.get_f64(),
            salt: r.get_u64(),
        }),
        TAG_CONV1D => Box::new(Conv1d::read(r)),
        TAG_MAXPOOL1D => Box::new(MaxPool1d::new(
            r.get_usize(),
            r.get_usize(),
            r.get_usize(),
        )),
        tag => panic!("unknown layer tag {tag} in model blob"),
    }
}

/// Fully connected layer: `y = x · Wᵀ + b` with `W` stored `out × in`.
pub struct Dense {
    w: Matrix, // out × in
    b: Vec<f64>,
    opt_w: Adam,
    opt_b: Adam,
}

impl Dense {
    /// Creates a dense layer with Xavier-ish initialization.
    pub fn new(n_in: usize, n_out: usize, lr: f64, rng: &mut impl Rng) -> Dense {
        let scale = (2.0 / (n_in + n_out) as f64).sqrt();
        Dense {
            w: Matrix {
                rows: n_out,
                cols: n_in,
                data: (0..n_in * n_out)
                    .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
                    .collect(),
            },
            b: vec![0.0; n_out],
            opt_w: Adam::new(n_in * n_out, lr),
            opt_b: Adam::new(n_out, lr),
        }
    }

    fn read(r: &mut ByteReader) -> Dense {
        let lr = r.get_f64();
        let w = r.get_matrix();
        let b = r.get_f64s();
        // Optimizer moments are not serialized: cached models are loaded
        // for inference, and a fresh Adam state is what a retrain would
        // also start from.
        let (opt_w, opt_b) = (Adam::new(w.data.len(), lr), Adam::new(b.len(), lr));
        Dense { w, b, opt_w, opt_b }
    }
}

impl Layer for Dense {
    fn forward(&self, x: Matrix, _ctx: &BatchCtx) -> (Matrix, Cache) {
        let y = x.matmul_t_bias(&self.w, &self.b);
        (y, Cache { m: x, idx: Vec::new() })
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        (0..self.w.rows)
            .map(|o| self.b[o] + dot(self.w.row(o), x))
            .collect()
    }

    fn backward(&self, cache: &Cache, grad: &Matrix, grads: &mut LayerGrads) -> Matrix {
        // gW += Gᵀ · X, gb += column sums of G, gX = G · W.
        let gm = grad.t_matmul(&cache.m);
        axpy(1.0, &gm.data, &mut grads.gw);
        grad.add_col_sums(&mut grads.gb);
        grad.matmul(&self.w)
    }

    fn step(&mut self, grads: &LayerGrads, batch: usize) {
        let s = 1.0 / batch.max(1) as f64;
        self.opt_w.step_scaled(&mut self.w.data, &grads.gw, s);
        self.opt_b.step_scaled(&mut self.b, &grads.gb, s);
    }

    fn grad_dims(&self) -> (usize, usize) {
        (self.w.data.len(), self.b.len())
    }

    fn num_params(&self) -> usize {
        self.w.data.len() + self.b.len()
    }

    fn write(&self, out: &mut ByteWriter) {
        out.put_u8(TAG_DENSE);
        out.put_f64(self.opt_w.lr);
        out.put_matrix(&self.w);
        out.put_f64s(&self.b);
    }

    fn dense_params(&self) -> Option<(&Matrix, &[f64])> {
        Some((&self.w, &self.b))
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu;

impl Layer for Relu {
    fn forward(&self, mut x: Matrix, _ctx: &BatchCtx) -> (Matrix, Cache) {
        x.map_inplace(|v| v.max(0.0));
        // The output doubles as the mask: y > 0 exactly where x > 0.
        let cache = Cache {
            m: x.clone(),
            idx: Vec::new(),
        };
        (x, cache)
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| v.max(0.0)).collect()
    }

    fn backward(&self, cache: &Cache, grad: &Matrix, _grads: &mut LayerGrads) -> Matrix {
        let mut gx = grad.clone();
        for (g, &y) in gx.data.iter_mut().zip(&cache.m.data) {
            if y <= 0.0 {
                *g = 0.0;
            }
        }
        gx
    }

    fn step(&mut self, _grads: &LayerGrads, _batch: usize) {}

    fn grad_dims(&self) -> (usize, usize) {
        (0, 0)
    }

    fn num_params(&self) -> usize {
        0
    }

    fn write(&self, out: &mut ByteWriter) {
        out.put_u8(TAG_RELU);
    }
}

/// Inverted dropout. Masks are a pure function of the per-sample seed in
/// [`BatchCtx`] and this layer's `salt`, so a sample's mask for a given
/// epoch does not depend on batch scheduling or thread count.
pub struct Dropout {
    p: f64,
    salt: u64,
}

impl Dropout {
    /// Drops activations with probability `p` during training; `seed`
    /// salts this layer's masks so stacked dropout layers decorrelate.
    pub fn new(p: f64, seed: u64) -> Dropout {
        Dropout { p, salt: seed }
    }
}

impl Layer for Dropout {
    fn forward(&self, mut x: Matrix, ctx: &BatchCtx) -> (Matrix, Cache) {
        if !ctx.train || self.p <= 0.0 {
            return (x, Cache::default());
        }
        let keep = 1.0 - self.p;
        let mut mask = Matrix::zeros(x.rows, x.cols);
        for r in 0..x.rows {
            let mut rng = ChaCha8Rng::seed_from_u64(mix2(ctx.seeds[r], self.salt));
            for m in mask.row_mut(r) {
                *m = if rng.gen::<f64>() < keep { 1.0 / keep } else { 0.0 };
            }
        }
        for (v, &m) in x.data.iter_mut().zip(&mask.data) {
            *v *= m;
        }
        (x, Cache { m: mask, idx: Vec::new() })
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        // Eval-mode dropout is the identity (inverted dropout rescales at
        // train time).
        x.to_vec()
    }

    fn backward(&self, cache: &Cache, grad: &Matrix, _grads: &mut LayerGrads) -> Matrix {
        if cache.m.data.is_empty() {
            return grad.clone();
        }
        let mut gx = grad.clone();
        for (g, &m) in gx.data.iter_mut().zip(&cache.m.data) {
            *g *= m;
        }
        gx
    }

    fn step(&mut self, _grads: &LayerGrads, _batch: usize) {}

    fn grad_dims(&self) -> (usize, usize) {
        (0, 0)
    }

    fn num_params(&self) -> usize {
        0
    }

    fn write(&self, out: &mut ByteWriter) {
        out.put_u8(TAG_DROPOUT);
        out.put_f64(self.p);
        out.put_u64(self.salt);
    }
}

/// 1-D convolution over `(channels, length)` data stored channel-major.
///
/// The batched passes run as GEMM: forward packs the batch into an im2col
/// matrix `C` (one row per output position, one column per `(channel,
/// tap)`) and computes the fused `C · Wᵀ + b`; backward reuses `C` for the
/// weight gradient and scatter-adds `G · W` back through the pack
/// (col2im).
pub struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    in_len: usize,
    out_len: usize,
    w: Matrix, // out_ch × (in_ch · kernel)
    b: Vec<f64>,
    opt_w: Adam,
    opt_b: Adam,
}

impl Conv1d {
    /// Creates a convolution for inputs of `in_ch` channels and length
    /// `in_len`.
    ///
    /// # Panics
    ///
    /// Panics when the kernel does not fit the input.
    pub fn new(
        in_ch: usize,
        in_len: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        lr: f64,
        rng: &mut impl Rng,
    ) -> Conv1d {
        assert!(kernel <= in_len, "kernel {kernel} exceeds input {in_len}");
        let out_len = (in_len - kernel) / stride + 1;
        let n = out_ch * in_ch * kernel;
        let scale = (2.0 / (in_ch * kernel + out_ch) as f64).sqrt();
        Conv1d {
            in_ch,
            out_ch,
            kernel,
            stride,
            in_len,
            out_len,
            w: Matrix {
                rows: out_ch,
                cols: in_ch * kernel,
                data: (0..n).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale).collect(),
            },
            b: vec![0.0; out_ch],
            opt_w: Adam::new(n, lr),
            opt_b: Adam::new(out_ch, lr),
        }
    }

    fn read(r: &mut ByteReader) -> Conv1d {
        let in_ch = r.get_usize();
        let in_len = r.get_usize();
        let out_ch = r.get_usize();
        let kernel = r.get_usize();
        let stride = r.get_usize();
        let lr = r.get_f64();
        let w = r.get_matrix();
        let b = r.get_f64s();
        let (opt_w, opt_b) = (Adam::new(w.data.len(), lr), Adam::new(b.len(), lr));
        Conv1d {
            in_ch,
            out_ch,
            kernel,
            stride,
            in_len,
            out_len: (in_len - kernel) / stride + 1,
            w,
            b,
            opt_w,
            opt_b,
        }
    }

    /// Output size (`out_ch * out_len`).
    pub fn output_size(&self) -> usize {
        self.out_ch * self.out_len
    }

    /// Packs the batch into the im2col matrix: row `s·out_len + p` holds
    /// the receptive field of output position `p` of sample `s`.
    fn im2col(&self, x: &Matrix) -> Matrix {
        let mut cmat = Matrix::zeros(x.rows * self.out_len, self.in_ch * self.kernel);
        for s in 0..x.rows {
            let xrow = x.row(s);
            for p in 0..self.out_len {
                let crow = cmat.row_mut(s * self.out_len + p);
                let base = p * self.stride;
                for c in 0..self.in_ch {
                    let src = &xrow[c * self.in_len + base..c * self.in_len + base + self.kernel];
                    crow[c * self.kernel..(c + 1) * self.kernel].copy_from_slice(src);
                }
            }
        }
        cmat
    }
}

impl Layer for Conv1d {
    fn forward(&self, x: Matrix, _ctx: &BatchCtx) -> (Matrix, Cache) {
        let cmat = self.im2col(&x);
        let yf = cmat.matmul_t_bias(&self.w, &self.b); // (n·out_len) × out_ch
        let mut out = Matrix::zeros(x.rows, self.out_ch * self.out_len);
        for s in 0..x.rows {
            let orow = out.row_mut(s);
            for p in 0..self.out_len {
                let yrow = yf.row(s * self.out_len + p);
                for (o, &v) in yrow.iter().enumerate() {
                    orow[o * self.out_len + p] = v;
                }
            }
        }
        (out, Cache { m: cmat, idx: Vec::new() })
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_ch * self.in_len);
        let mut out = vec![0.0; self.out_ch * self.out_len];
        for o in 0..self.out_ch {
            let wrow = self.w.row(o);
            for p in 0..self.out_len {
                let mut acc = self.b[o];
                let base = p * self.stride;
                for c in 0..self.in_ch {
                    let xs = &x[c * self.in_len + base..c * self.in_len + base + self.kernel];
                    acc += dot(&wrow[c * self.kernel..(c + 1) * self.kernel], xs);
                }
                out[o * self.out_len + p] = acc;
            }
        }
        out
    }

    fn backward(&self, cache: &Cache, grad: &Matrix, grads: &mut LayerGrads) -> Matrix {
        let n = grad.rows;
        // Gather the channel-major gradient into im2col row order.
        let mut gf = Matrix::zeros(n * self.out_len, self.out_ch);
        for s in 0..n {
            let grow = grad.row(s);
            for p in 0..self.out_len {
                let frow = gf.row_mut(s * self.out_len + p);
                for (o, f) in frow.iter_mut().enumerate() {
                    *f = grow[o * self.out_len + p];
                }
            }
        }
        // gW += Gᵀ · C, gb += column sums of G.
        let gm = gf.t_matmul(&cache.m);
        axpy(1.0, &gm.data, &mut grads.gw);
        gf.add_col_sums(&mut grads.gb);
        // gX: col2im scatter-add of gC = G · W.
        let gc = gf.matmul(&self.w);
        let mut gx = Matrix::zeros(n, self.in_ch * self.in_len);
        for s in 0..n {
            let xrow = gx.row_mut(s);
            for p in 0..self.out_len {
                let crow = gc.row(s * self.out_len + p);
                let base = p * self.stride;
                for c in 0..self.in_ch {
                    axpy(
                        1.0,
                        &crow[c * self.kernel..(c + 1) * self.kernel],
                        &mut xrow[c * self.in_len + base..c * self.in_len + base + self.kernel],
                    );
                }
            }
        }
        gx
    }

    fn step(&mut self, grads: &LayerGrads, batch: usize) {
        let s = 1.0 / batch.max(1) as f64;
        self.opt_w.step_scaled(&mut self.w.data, &grads.gw, s);
        self.opt_b.step_scaled(&mut self.b, &grads.gb, s);
    }

    fn grad_dims(&self) -> (usize, usize) {
        (self.w.data.len(), self.b.len())
    }

    fn num_params(&self) -> usize {
        self.w.data.len() + self.b.len()
    }

    fn write(&self, out: &mut ByteWriter) {
        out.put_u8(TAG_CONV1D);
        out.put_usize(self.in_ch);
        out.put_usize(self.in_len);
        out.put_usize(self.out_ch);
        out.put_usize(self.kernel);
        out.put_usize(self.stride);
        out.put_f64(self.opt_w.lr);
        out.put_matrix(&self.w);
        out.put_f64s(&self.b);
    }
}

/// 1-D max pooling over `(channels, length)` channel-major data.
pub struct MaxPool1d {
    ch: usize,
    in_len: usize,
    size: usize,
    out_len: usize,
}

impl MaxPool1d {
    /// Pools windows of `size` (stride = size). The final window is
    /// truncated when `size` does not divide `in_len`, so the output is
    /// never empty.
    pub fn new(ch: usize, in_len: usize, size: usize) -> MaxPool1d {
        MaxPool1d {
            ch,
            in_len,
            size,
            out_len: in_len.div_ceil(size).max(1),
        }
    }

    /// Output size (`ch * out_len`).
    pub fn output_size(&self) -> usize {
        self.ch * self.out_len
    }

    /// Pools one sample; appends within-row argmax indices to `arg`.
    fn pool_row(&self, x: &[f64], out: &mut [f64], arg: &mut Vec<usize>) {
        for c in 0..self.ch {
            for p in 0..self.out_len {
                let start = p * self.size;
                let end = ((p + 1) * self.size).min(self.in_len);
                let base = c * self.in_len + start;
                let mut best = base;
                for k in 1..end.saturating_sub(start) {
                    if x[base + k] > x[best] {
                        best = base + k;
                    }
                }
                out[c * self.out_len + p] = x[best];
                arg.push(best);
            }
        }
    }
}

impl Layer for MaxPool1d {
    fn forward(&self, x: Matrix, _ctx: &BatchCtx) -> (Matrix, Cache) {
        let mut out = Matrix::zeros(x.rows, self.output_size());
        let mut arg = Vec::with_capacity(x.rows * self.output_size());
        for s in 0..x.rows {
            self.pool_row(x.row(s), out.row_mut(s), &mut arg);
        }
        (out, Cache { m: Matrix::zeros(x.rows, 0), idx: arg })
    }

    fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.output_size()];
        let mut arg = Vec::new();
        self.pool_row(x, &mut out, &mut arg);
        out
    }

    fn backward(&self, cache: &Cache, grad: &Matrix, _grads: &mut LayerGrads) -> Matrix {
        let mut gx = Matrix::zeros(grad.rows, self.ch * self.in_len);
        let per_row = self.output_size();
        for s in 0..grad.rows {
            let grow = grad.row(s);
            let xrow = gx.row_mut(s);
            for (i, &a) in cache.idx[s * per_row..(s + 1) * per_row].iter().enumerate() {
                xrow[a] += grow[i];
            }
        }
        gx
    }

    fn step(&mut self, _grads: &LayerGrads, _batch: usize) {}

    fn grad_dims(&self) -> (usize, usize) {
        (0, 0)
    }

    fn num_params(&self) -> usize {
        0
    }

    fn write(&self, out: &mut ByteWriter) {
        out.put_u8(TAG_MAXPOOL1D);
        out.put_usize(self.ch);
        out.put_usize(self.in_len);
        out.put_usize(self.size);
    }
}

/// A sequential network trained with softmax cross-entropy.
pub struct Net {
    /// The layer stack; the final layer must output `n_classes` logits.
    pub layers: Vec<Box<dyn Layer>>,
    /// Number of classes.
    pub n_classes: usize,
}

impl Net {
    /// Batched forward pass through all layers; returns the logits batch
    /// and per-layer activation caches for [`Net::backward_batch`].
    pub fn forward_batch(&self, x: Matrix, ctx: &BatchCtx) -> (Matrix, Vec<Cache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut cur = x;
        for l in &self.layers {
            let (y, c) = l.forward(cur, ctx);
            caches.push(c);
            cur = y;
        }
        (cur, caches)
    }

    /// Batched backward pass from the logits gradient; accumulates
    /// parameter gradients into `grads` and returns the input gradient.
    pub fn backward_batch(
        &self,
        caches: &[Cache],
        grad: Matrix,
        grads: &mut [LayerGrads],
    ) -> Matrix {
        let mut cur = grad;
        for (li, l) in self.layers.iter().enumerate().rev() {
            cur = l.backward(&caches[li], &cur, &mut grads[li]);
        }
        cur
    }

    /// Eval-mode batched logits: [`Net::forward_batch`] with an eval
    /// context, caches discarded — the inference fast path through the
    /// blocked GEMM kernels. Pure; safe from many threads at once.
    pub fn logits_batch(&self, x: Matrix) -> Matrix {
        self.forward_batch(x, &BatchCtx::eval()).0
    }

    /// Argmax label per row of the eval-mode batched logits.
    pub fn predict_rows(&self, x: Matrix) -> Vec<usize> {
        let logits = self.logits_batch(x);
        (0..logits.rows).map(|r| argmax(logits.row(r))).collect()
    }

    /// Softmax probabilities per row of the eval-mode batched logits.
    pub fn proba_rows(&self, x: Matrix) -> Vec<Vec<f64>> {
        let mut logits = self.logits_batch(x);
        let mut out = Vec::with_capacity(logits.rows);
        for r in 0..logits.rows {
            let row = logits.row_mut(r);
            softmax_inplace(row);
            out.push(row.to_vec());
        }
        out
    }

    /// Pure eval-mode forward pass; safe to call from many threads at once.
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for l in &self.layers {
            cur = l.infer(&cur);
        }
        cur
    }

    /// Allocates zeroed gradient accumulators, one per layer.
    pub fn grad_buffers(&self) -> Vec<LayerGrads> {
        self.layers.iter().map(|l| LayerGrads::new(l.grad_dims())).collect()
    }

    /// Applies accumulated gradients (scaled by `1/batch`) and clears
    /// `grads` in place for the next minibatch.
    pub fn step(&mut self, grads: &mut [LayerGrads], batch: usize) {
        for (l, g) in self.layers.iter_mut().zip(grads.iter_mut()) {
            l.step(g, batch);
            g.clear();
        }
    }

    /// Computes the cross-entropy gradient at the logits of one sample;
    /// returns `(loss, grad)`.
    pub fn ce_grad(logits: &[f64], y: usize) -> (f64, Vec<f64>) {
        let mut probs = logits.to_vec();
        softmax_inplace(&mut probs);
        let loss = -(probs[y].max(1e-12)).ln();
        let mut grad = probs;
        grad[y] -= 1.0;
        (loss, grad)
    }

    /// Batched cross-entropy: returns the summed loss and the per-row
    /// logits gradient.
    pub fn batch_loss_grad(logits: &Matrix, ys: &[usize]) -> (f64, Matrix) {
        let mut grad = logits.clone();
        let mut total = 0.0;
        for (r, &y) in ys.iter().enumerate() {
            let row = grad.row_mut(r);
            softmax_inplace(row);
            total += -(row[y].max(1e-12)).ln();
            row[y] -= 1.0;
        }
        (total, grad)
    }

    /// Computes the summed loss and parameter gradients of one micro-batch
    /// (`idxs` indexes into the dataset). Pure (`&self`), so micro-batches
    /// run on worker threads; dropout seeds derive from
    /// `(seed, epoch, dataset index)` and are scheduling-independent.
    pub fn micro_grads(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        idxs: &[usize],
        epoch: usize,
        seed: u64,
    ) -> (f64, Vec<LayerGrads>) {
        let rows: Vec<&[f64]> = idxs.iter().map(|&i| x[i].as_slice()).collect();
        let input = Matrix::from_rows(&rows);
        let ctx = BatchCtx::train(
            idxs.iter().map(|&i| mix3(seed, epoch as u64, i as u64)).collect(),
        );
        let (logits, caches) = self.forward_batch(input, &ctx);
        let ys: Vec<usize> = idxs.iter().map(|&i| y[i]).collect();
        let (loss, grad) = Net::batch_loss_grad(&logits, &ys);
        let mut grads = self.grad_buffers();
        self.backward_batch(&caches, grad, &mut grads);
        (loss, grads)
    }

    /// Trains on `(x, y)` and returns the final epoch's mean loss, using
    /// [`yali_par::worker_count`] threads.
    pub fn fit(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        epochs: usize,
        batch: usize,
        seed: u64,
    ) -> f64 {
        self.fit_with_threads(x, y, epochs, batch, seed, yali_par::worker_count())
    }

    /// [`Net::fit`] with an explicit thread count. Each minibatch is split
    /// into fixed [`MICRO_BATCH`]-sample micro-batches whose gradients are
    /// computed in parallel and merged in index order, so the trained
    /// weights are byte-identical at every `threads` value.
    pub fn fit_with_threads(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        epochs: usize,
        batch: usize,
        seed: u64,
        threads: usize,
    ) -> f64 {
        if x.is_empty() {
            return f64::INFINITY;
        }
        let _fit_span = yali_obs::span!("ml.net.fit");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut acc = self.grad_buffers();
        let mut last = f64::INFINITY;
        let params = self.num_params();
        for epoch in 0..epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for chunk in order.chunks(batch.max(1)) {
                let micros: Vec<&[usize]> = chunk.chunks(MICRO_BATCH).collect();
                let t = step_threads(threads, micros.len(), params * chunk.len());
                let results = yali_par::par_map_with(t, &micros, |_, m| {
                    self.micro_grads(x, y, m, epoch, seed)
                });
                for (loss, gs) in results {
                    total += loss;
                    for (a, g) in acc.iter_mut().zip(&gs) {
                        a.add(g);
                    }
                }
                self.step(&mut acc, chunk.len());
            }
            last = total / x.len() as f64;
            // Epoch-loss accounting in milli-nats: a histogram gives the
            // count (epochs run) and the loss trajectory's sum/max without
            // perturbing the f64 loss itself.
            yali_obs::count!("ml.net.epochs", 1);
            yali_obs::record!("ml.net.epoch_loss_millis", to_millis(last));
        }
        last
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.infer(x))
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Serializes the network for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_usize(self.n_classes);
        out.put_usize(self.layers.len());
        for l in &self.layers {
            l.write(out);
        }
    }

    /// Reads a network back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> Net {
        let n_classes = r.get_usize();
        let n_layers = r.get_usize();
        let layers = (0..n_layers).map(|_| read_layer(r)).collect();
        Net { layers, n_classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Class 0 inside radius 1, class 1 outside — not linearly separable.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..80 {
            let a = k as f64 * 0.6;
            let r = if k % 2 == 0 { 0.5 } else { 2.0 };
            x.push(vec![r * a.cos(), r * a.sin()]);
            y.push(k % 2);
        }
        (x, y)
    }

    // Wide enough that `params × batch` crosses PAR_MIN_WORK at batch 32,
    // so the byte-identity proptest exercises the threaded path for real.
    fn ring_mlp(seed: u64) -> Net {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Net {
            layers: vec![
                Box::new(Dense::new(2, 96, 0.01, &mut rng)),
                Box::new(Relu),
                Box::new(Dropout::new(0.1, 7)),
                Box::new(Dense::new(96, 96, 0.01, &mut rng)),
                Box::new(Relu),
                Box::new(Dense::new(96, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        }
    }

    fn net_bytes(net: &Net) -> Vec<u8> {
        let mut w = ByteWriter::new();
        net.write(&mut w);
        w.into_bytes()
    }

    #[test]
    fn mlp_learns_a_ring() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Net {
            layers: vec![
                Box::new(Dense::new(2, 32, 0.01, &mut rng)),
                Box::new(Relu),
                Box::new(Dense::new(32, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        };
        let (x, y) = ring_data();
        net.fit(&x, &y, 120, 16, 1);
        let pred: Vec<usize> = x.iter().map(|v| net.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.95);
    }

    #[test]
    fn loss_decreases() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Net {
            layers: vec![
                Box::new(Dense::new(2, 16, 0.01, &mut rng)),
                Box::new(Relu),
                Box::new(Dense::new(16, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        };
        let (x, y) = ring_data();
        let early = net.fit(&x, &y, 3, 16, 1);
        let late = net.fit(&x, &y, 100, 16, 1);
        assert!(late < early, "{late} !< {early}");
    }

    #[test]
    fn conv_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let conv = Conv1d::new(2, 10, 4, 3, 1, 0.01, &mut rng);
        assert_eq!(conv.output_size(), 4 * 8);
        let x = Matrix::from_fn(3, 20, |r, c| 0.5 + (r * 20 + c) as f64 * 0.01);
        let (out, cache) = conv.forward(x, &BatchCtx::eval());
        assert_eq!((out.rows, out.cols), (3, 32));
        let mut grads = LayerGrads::new(conv.grad_dims());
        let gx = conv.backward(&cache, &Matrix::from_fn(3, 32, |_, _| 1.0), &mut grads);
        assert_eq!((gx.rows, gx.cols), (3, 20));
    }

    #[test]
    fn batched_forward_matches_per_sample_infer() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let conv = Conv1d::new(1, 16, 4, 5, 1, 0.01, &mut rng);
        let pool = MaxPool1d::new(4, 12, 2);
        let p_out = pool.output_size();
        let net = Net {
            layers: vec![
                Box::new(conv),
                Box::new(Relu),
                Box::new(pool),
                Box::new(Dense::new(p_out, 3, 0.01, &mut rng)),
            ],
            n_classes: 3,
        };
        let x = Matrix::from_fn(5, 16, |r, c| ((r * 7 + c * 3) % 11) as f64 * 0.1 - 0.4);
        let (batched, _) = net.forward_batch(x.clone(), &BatchCtx::eval());
        for r in 0..x.rows {
            let single = net.infer(x.row(r));
            for (a, b) in batched.row(r).iter().zip(&single) {
                assert!((a - b).abs() < 1e-12, "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn conv_net_trains_on_patterns() {
        // Class by whether the spike is in the first or second half.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..60 {
            let mut v = vec![0.0; 16];
            let pos = if k % 2 == 0 { k % 6 } else { 8 + k % 6 };
            v[pos] = 1.0;
            x.push(v);
            y.push(k % 2);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let conv = Conv1d::new(1, 16, 4, 5, 1, 0.01, &mut rng);
        let c_out = conv.output_size();
        let pool = MaxPool1d::new(4, 12, 2);
        let p_out = pool.output_size();
        let mut net = Net {
            layers: vec![
                Box::new(conv),
                Box::new(Relu),
                Box::new(pool),
                Box::new(Dense::new(p_out, 2, 0.01, &mut rng)),
            ],
            n_classes: 2,
        };
        assert_eq!(c_out, 4 * 12);
        net.fit(&x, &y, 60, 8, 1);
        let pred: Vec<usize> = x.iter().map(|v| net.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.9);
    }

    #[test]
    fn maxpool_routes_gradient_to_argmax() {
        let pool = MaxPool1d::new(1, 4, 2);
        let x = Matrix::from_rows(&[&[1.0, 5.0, 2.0, 0.5]]);
        let (out, cache) = pool.forward(x, &BatchCtx::eval());
        assert_eq!(out.data, vec![5.0, 2.0]);
        let mut grads = LayerGrads::default();
        let gx = pool.backward(&cache, &Matrix::from_rows(&[&[1.0, 1.0]]), &mut grads);
        assert_eq!(gx.data, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn dropout_is_identity_at_eval() {
        let d = Dropout::new(0.5, 0);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let (out, _) = d.forward(x.clone(), &BatchCtx::eval());
        assert_eq!(out, x);
        assert_eq!(d.infer(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_masks_depend_only_on_sample_seed() {
        let d = Dropout::new(0.5, 3);
        let x = Matrix::from_fn(2, 64, |_, _| 1.0);
        // The same sample seeds give the same masks regardless of row
        // position or batch composition.
        let (a, _) = d.forward(x.clone(), &BatchCtx::train(vec![11, 22]));
        let (b, _) = d.forward(x.clone(), &BatchCtx::train(vec![22, 11]));
        assert_eq!(a.row(0), b.row(1));
        assert_eq!(a.row(1), b.row(0));
        // Different layer salts decorrelate.
        let d2 = Dropout::new(0.5, 4);
        let (c, _) = d2.forward(x, &BatchCtx::train(vec![11, 22]));
        assert_ne!(a.row(0), c.row(0));
    }

    #[test]
    fn param_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let net = Net {
            layers: vec![
                Box::new(Dense::new(10, 5, 0.01, &mut rng)),
                Box::new(Relu),
                Box::new(Dense::new(5, 3, 0.01, &mut rng)),
            ],
            n_classes: 3,
        };
        assert_eq!(net.num_params(), 10 * 5 + 5 + 5 * 3 + 3);
    }

    #[test]
    fn serialization_round_trips_predictions() {
        let (x, y) = ring_data();
        let mut net = ring_mlp(1);
        net.fit(&x, &y, 20, 16, 2);
        let bytes = net_bytes(&net);
        let restored = Net::read(&mut ByteReader::new(&bytes));
        assert_eq!(restored.n_classes, 2);
        for v in &x {
            assert_eq!(net.infer(v), restored.infer(v), "logits must match exactly");
        }
        assert_eq!(net_bytes(&restored), bytes, "re-serialization is stable");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        // The determinism contract of the data-parallel trainer: fixed
        // decomposition + index-order merge makes the trained weights
        // byte-identical at every thread count.
        #[test]
        fn fixed_seed_training_is_byte_identical_across_thread_counts(seed in 0u64..512) {
            let (x, y) = ring_data();
            let mut serial = ring_mlp(seed);
            serial.fit_with_threads(&x, &y, 4, 32, seed ^ 1, 1);
            let want = net_bytes(&serial);
            for threads in [2usize, 8] {
                let mut par = ring_mlp(seed);
                par.fit_with_threads(&x, &y, 4, 32, seed ^ 1, threads);
                prop_assert_eq!(&net_bytes(&par), &want, "threads={}", threads);
            }
        }
    }
}
