//! Linear models: multinomial logistic regression (`lr`) and a one-vs-rest
//! linear SVM (`svm`), both trained with mini-batch Adam on standardized
//! features.

use crate::linalg::{argmax, dot, softmax_inplace, Adam, Matrix};
use crate::serialize::{ByteReader, ByteWriter};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Feature standardization parameters (mean/std per column), shared by the
/// gradient-trained models — raw opcode counts span orders of magnitude.
#[derive(Debug, Clone)]
pub struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    /// Fits per-column mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics on an empty set.
    pub fn fit(x: &[Vec<f64>]) -> Scaler {
        assert!(!x.is_empty());
        let d = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; d];
        for row in x {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; d];
        for row in x {
            for k in 0..d {
                std[k] += (row[k] - mean[k]).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt();
            if *s < 1e-9 {
                *s = 1.0;
            }
        }
        Scaler { mean, std }
    }

    /// Standardizes one row.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Serializes the scaler for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_f64s(&self.mean);
        out.put_f64s(&self.std);
    }

    /// Reads a scaler back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> Scaler {
        Scaler {
            mean: r.get_f64s(),
            std: r.get_f64s(),
        }
    }
}

/// Shared training hyperparameters for the linear models.
#[derive(Debug, Clone)]
pub struct LinearConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            epochs: 60,
            batch: 32,
            lr: 0.05,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// Which loss the linear model trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearLoss {
    /// Multinomial cross-entropy (logistic regression).
    Softmax,
    /// One-vs-rest hinge loss (linear SVM).
    Hinge,
}

/// A fitted linear classifier: weights `W (classes × features)` + bias.
/// The weights live in one flattened row-major [`Matrix`] so a whole
/// batch of standardized rows scores in a single
/// [`Matrix::matmul_t_bias`] pass.
#[derive(Debug, Clone)]
pub struct LinearModel {
    w: Matrix,
    b: Vec<f64>,
    scaler: Scaler,
    loss: LinearLoss,
}

impl LinearModel {
    /// Trains a linear classifier.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        loss: LinearLoss,
        config: &LinearConfig,
    ) -> LinearModel {
        assert!(!x.is_empty(), "empty training set");
        let scaler = Scaler::fit(x);
        let xs: Vec<Vec<f64>> = x.iter().map(|r| scaler.transform(r)).collect();
        let d = xs[0].len();
        let mut w = vec![vec![0.0; d]; n_classes];
        let mut b = vec![0.0; n_classes];
        let mut opt_w: Vec<Adam> = (0..n_classes).map(|_| Adam::new(d, config.lr)).collect();
        let mut opt_b = Adam::new(n_classes, config.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..xs.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch) {
                let mut gw = vec![vec![0.0; d]; n_classes];
                let mut gb = vec![0.0; n_classes];
                for &i in chunk {
                    let xi = &xs[i];
                    let yi = y[i];
                    match loss {
                        LinearLoss::Softmax => {
                            let mut scores: Vec<f64> =
                                (0..n_classes).map(|c| dot(&w[c], xi) + b[c]).collect();
                            softmax_inplace(&mut scores);
                            for c in 0..n_classes {
                                let err = scores[c] - if c == yi { 1.0 } else { 0.0 };
                                for k in 0..d {
                                    gw[c][k] += err * xi[k];
                                }
                                gb[c] += err;
                            }
                        }
                        LinearLoss::Hinge => {
                            for c in 0..n_classes {
                                let t = if c == yi { 1.0 } else { -1.0 };
                                let margin = t * (dot(&w[c], xi) + b[c]);
                                if margin < 1.0 {
                                    for k in 0..d {
                                        gw[c][k] -= t * xi[k];
                                    }
                                    gb[c] -= t;
                                }
                            }
                        }
                    }
                }
                let scale = 1.0 / chunk.len() as f64;
                for c in 0..n_classes {
                    for k in 0..d {
                        gw[c][k] = gw[c][k] * scale + config.l2 * w[c][k];
                    }
                    gb[c] *= scale;
                    opt_w[c].step(&mut w[c], &gw[c]);
                }
                opt_b.step(&mut b, &gb);
            }
        }
        let rows: Vec<&[f64]> = w.iter().map(|r| r.as_slice()).collect();
        LinearModel {
            w: Matrix::from_rows(&rows),
            b,
            scaler,
            loss,
        }
    }

    /// Predicts the highest-scoring class, through the same batched GEMM
    /// kernel as [`LinearModel::predict_chunk`] on a one-row chunk.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_chunk(&[x])[0]
    }

    /// Raw class scores `X·Wᵀ + b` for one chunk of samples.
    fn scores_chunk(&self, xs: &[&[f64]]) -> Matrix {
        let scaled: Vec<Vec<f64>> = xs.iter().map(|x| self.scaler.transform(x)).collect();
        let refs: Vec<&[f64]> = scaled.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs).matmul_t_bias(&self.w, &self.b)
    }

    /// Labels for one chunk of samples (argmax score per row).
    pub(crate) fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        if xs.is_empty() {
            return Vec::new();
        }
        let scores = self.scores_chunk(xs);
        (0..scores.rows).map(|r| argmax(scores.row(r))).collect()
    }

    /// Softmax probabilities for one chunk of samples. Only meaningful
    /// for [`LinearLoss::Softmax`]; hinge margins are not probabilities,
    /// and the public batch API returns `None` for the svm instead of
    /// calling this.
    pub(crate) fn proba_chunk(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        if xs.is_empty() {
            return Vec::new();
        }
        let mut scores = self.scores_chunk(xs);
        let mut out = Vec::with_capacity(scores.rows);
        for r in 0..scores.rows {
            let row = scores.row_mut(r);
            softmax_inplace(row);
            out.push(row.to_vec());
        }
        out
    }

    /// Which loss this model was trained with.
    pub fn loss(&self) -> LinearLoss {
        self.loss
    }

    /// Raw parts — `(weights, bias, scaler)` — for the reduced-precision
    /// `lowp` classifiers to narrow.
    pub(crate) fn lowp_parts(&self) -> (&Matrix, &[f64], &Scaler) {
        (&self.w, &self.b, &self.scaler)
    }

    /// Approximate resident bytes (weights + biases + scaler).
    pub fn memory_bytes(&self) -> usize {
        self.w.data.len() * 8 + self.b.len() * 8 + self.scaler.mean.len() * 16
    }

    /// Serializes the fitted model for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_u8(match self.loss {
            LinearLoss::Softmax => 0,
            LinearLoss::Hinge => 1,
        });
        out.put_usize(self.w.rows);
        for r in 0..self.w.rows {
            out.put_f64s(self.w.row(r));
        }
        out.put_f64s(&self.b);
        self.scaler.write(out);
    }

    /// Reads a fitted model back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> LinearModel {
        let loss = match r.get_u8() {
            0 => LinearLoss::Softmax,
            _ => LinearLoss::Hinge,
        };
        let n = r.get_usize();
        let rows: Vec<Vec<f64>> = (0..n).map(|_| r.get_f64s()).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let w = Matrix::from_rows(&refs);
        let b = r.get_f64s();
        let scaler = Scaler::read(r);
        LinearModel { w, b, scaler, loss }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..3 {
            for k in 0..30 {
                let j = (k as f64 * 0.37).fract() - 0.5;
                x.push(vec![c as f64 * 4.0 + j, -(c as f64) * 3.0 + j * 0.5]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn logistic_regression_separates_blobs() {
        let (x, y) = blobs();
        let m = LinearModel::fit(&x, &y, 3, LinearLoss::Softmax, &LinearConfig::default());
        let pred: Vec<usize> = x.iter().map(|v| m.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.97);
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = blobs();
        let m = LinearModel::fit(&x, &y, 3, LinearLoss::Hinge, &LinearConfig::default());
        let pred: Vec<usize> = x.iter().map(|v| m.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.97);
        assert_eq!(m.loss(), LinearLoss::Hinge);
    }

    #[test]
    fn scaler_standardizes() {
        let x = vec![vec![0.0, 100.0], vec![2.0, 300.0]];
        let s = Scaler::fit(&x);
        let t0 = s.transform(&x[0]);
        let t1 = s.transform(&x[1]);
        assert!((t0[0] + t1[0]).abs() < 1e-9);
        assert!((t0[1] + t1[1]).abs() < 1e-9);
    }

    #[test]
    fn constant_features_do_not_explode() {
        let x = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let y = vec![0, 1, 1];
        let m = LinearModel::fit(&x, &y, 2, LinearLoss::Softmax, &LinearConfig::default());
        assert!(m.predict(&[5.0, 1.0]) < 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = blobs();
        let cfg = LinearConfig {
            seed: 9,
            epochs: 10,
            ..Default::default()
        };
        let m1 = LinearModel::fit(&x, &y, 3, LinearLoss::Softmax, &cfg);
        let m2 = LinearModel::fit(&x, &y, 3, LinearLoss::Softmax, &cfg);
        let p1: Vec<usize> = x.iter().map(|v| m1.predict(v)).collect();
        let p2: Vec<usize> = x.iter().map(|v| m2.predict(v)).collect();
        assert_eq!(p1, p2);
    }
}
