//! The `dgcnn` model: Zhang et al.'s Deep Graph Convolutional Neural
//! Network (paper, Section 3.2), the only model that consumes graph-shaped
//! program embeddings.
//!
//! Architecture, as in the paper:
//!
//! 1. four graph-convolution layers with 32, 32, 32 and 1 units, tanh
//!    activation (`Z_i = tanh(D⁻¹(A+I) Z_{i-1} W_i)`);
//! 2. SortPooling: nodes sorted by the final 1-unit channel, the top `k`
//!    kept (zero-padded), channels concatenated;
//! 3. a 1-D convolution with stride = total channel count (one step per
//!    node), max pooling, a second 1-D convolution;
//! 4. a dense layer with dropout and a final dense classifier.
//!
//! Everything is trained end to end with manual backpropagation.

use crate::linalg::{argmax, Adam, Matrix};
use crate::nn::{Conv1d, Dense, Dropout, Layer, MaxPool1d, Net, Relu};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A graph sample: node features plus an edge list (directions are
/// symmetrized internally).
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Per-node feature rows (uniform length).
    pub feats: Vec<Vec<f64>>,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(usize, usize)>,
}

impl GraphSample {
    /// Converts a `yali-embed` program graph (dropping edge kinds).
    pub fn from_program_graph(feats: Vec<Vec<f64>>, edges: Vec<(usize, usize)>) -> GraphSample {
        GraphSample { feats, edges }
    }
}

/// DGCNN hyperparameters.
#[derive(Debug, Clone)]
pub struct DgcnnConfig {
    /// Units per graph-convolution layer (the paper's 32/32/32/1).
    pub channels: Vec<usize>,
    /// SortPooling size.
    pub k: usize,
    /// Dense width in the tail.
    pub dense: usize,
    /// Dropout probability.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DgcnnConfig {
    fn default() -> Self {
        DgcnnConfig {
            channels: vec![32, 32, 32, 1],
            k: 12,
            dense: 128,
            dropout: 0.5,
            epochs: 30,
            batch: 16,
            lr: 0.003,
            seed: 0,
        }
    }
}

struct GraphConv {
    w: Matrix, // d_in × d_out
    gw: Matrix,
    opt: Adam,
}

/// A fitted DGCNN.
pub struct Dgcnn {
    convs: Vec<GraphConv>,
    tail: Net,
    k: usize,
    total_ch: usize,
    in_dim: usize,
}

/// Row-normalized aggregation: `out[v] = (x[v] + Σ_{u∈N(v)} x[u]) / (1+|N(v)|)`.
#[allow(clippy::needless_range_loop)] // index form mirrors the formula
fn aggregate(x: &Matrix, neigh: &[Vec<usize>]) -> Matrix {
    let mut out = Matrix::zeros(x.rows, x.cols);
    for v in 0..x.rows {
        let row = x.row(v).to_vec();
        let o = out.row_mut(v);
        for (oo, &xv) in o.iter_mut().zip(&row) {
            *oo = xv;
        }
        for &u in &neigh[v] {
            for (oo, &xu) in o.iter_mut().zip(x.row(u)) {
                *oo += xu;
            }
        }
        let norm = 1.0 / (1 + neigh[v].len()) as f64;
        for oo in o.iter_mut() {
            *oo *= norm;
        }
    }
    out
}

/// Transpose of [`aggregate`] for backprop: routes each node's gradient to
/// itself and its neighbours with the *receiver's* normalization.
#[allow(clippy::needless_range_loop)] // index form mirrors the formula
fn aggregate_t(g: &Matrix, neigh: &[Vec<usize>]) -> Matrix {
    let mut out = Matrix::zeros(g.rows, g.cols);
    for v in 0..g.rows {
        let norm = 1.0 / (1 + neigh[v].len()) as f64;
        let grow: Vec<f64> = g.row(v).iter().map(|x| x * norm).collect();
        for (oo, gg) in out.row_mut(v).iter_mut().zip(&grow) {
            *oo += gg;
        }
        for &u in &neigh[v] {
            for (oo, gg) in out.row_mut(u).iter_mut().zip(&grow) {
                *oo += gg;
            }
        }
    }
    out
}

fn neighbours(g: &GraphSample) -> Vec<Vec<usize>> {
    let n = g.feats.len();
    let mut neigh = vec![Vec::new(); n];
    for &(s, d) in &g.edges {
        if s < n && d < n && s != d {
            neigh[s].push(d);
            neigh[d].push(s);
        }
    }
    for l in &mut neigh {
        l.sort_unstable();
        l.dedup();
    }
    neigh
}

struct ForwardCache {
    neigh: Vec<Vec<usize>>,
    /// Aggregated inputs per layer (`S_i = Â H_{i-1}`).
    aggs: Vec<Matrix>,
    /// Activations per layer (`Z_i = tanh(S_i W_i)`).
    zs: Vec<Matrix>,
    /// Selected node order after SortPooling.
    order: Vec<usize>,
    flat: Vec<f64>,
}

impl Dgcnn {
    /// Trains a DGCNN on graph samples with labels in `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set or inconsistent feature widths.
    pub fn fit(graphs: &[GraphSample], y: &[usize], n_classes: usize, config: &DgcnnConfig) -> Dgcnn {
        assert!(!graphs.is_empty(), "empty training set");
        assert_eq!(graphs.len(), y.len());
        let in_dim = graphs[0].feats.first().map(Vec::len).unwrap_or(1);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut convs = Vec::new();
        let mut d = in_dim;
        for &c in &config.channels {
            let scale = (2.0 / (d + c) as f64).sqrt();
            convs.push(GraphConv {
                w: Matrix::from_fn(d, c, |_, _| (rng.gen::<f64>() * 2.0 - 1.0) * scale),
                gw: Matrix::zeros(d, c),
                opt: Adam::new(d * c, config.lr),
            });
            d = c;
        }
        let total_ch: usize = config.channels.iter().sum();
        // Tail: conv over the k sorted nodes (kernel = channel count,
        // stride = channel count), pool, conv, dense, dropout, classifier.
        let flat_len = config.k * total_ch;
        let conv1 = Conv1d::new(1, flat_len, 16, total_ch, total_ch, config.lr, &mut rng);
        let len1 = conv1.output_size() / 16; // == k
        let pool = MaxPool1d::new(16, len1, 2);
        let len2 = len1.div_ceil(2).max(1);
        let k2 = 5.min(len2);
        let conv2 = Conv1d::new(16, len2, 32, k2, 1, config.lr, &mut rng);
        let flat2 = conv2.output_size();
        let tail_layers: Vec<Box<dyn Layer>> = vec![
            Box::new(conv1),
            Box::new(Relu::default()),
            Box::new(pool),
            Box::new(conv2),
            Box::new(Relu::default()),
            Box::new(Dense::new(flat2, config.dense, config.lr, &mut rng)),
            Box::new(Relu::default()),
            Box::new(Dropout::new(config.dropout, config.seed ^ 0xD6)),
            Box::new(Dense::new(config.dense, n_classes, config.lr, &mut rng)),
        ];
        let mut model = Dgcnn {
            convs,
            tail: Net {
                layers: tail_layers,
                n_classes,
            },
            k: config.k,
            total_ch,
            in_dim,
        };
        // Training loop.
        let mut order: Vec<usize> = (0..graphs.len()).collect();
        let mut rng2 = ChaCha8Rng::seed_from_u64(config.seed ^ 0xBEEF);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng2);
            for chunk in order.chunks(config.batch) {
                for &i in chunk {
                    let cache = model.forward(&graphs[i], true);
                    let logits = model.tail.forward(&cache.flat, true);
                    let (_, grad) = Net::ce_grad(&logits, y[i]);
                    let dflat = model.tail.backward(&grad);
                    model.backward_graph(&cache, &dflat);
                }
                model.tail.step(chunk.len());
                for conv in &mut model.convs {
                    let n = conv.gw.data.len();
                    let s = 1.0 / chunk.len().max(1) as f64;
                    for g in &mut conv.gw.data {
                        *g *= s;
                    }
                    let mut w = std::mem::take(&mut conv.w.data);
                    conv.opt.step(&mut w, &conv.gw.data);
                    conv.w.data = w;
                    conv.gw.data = vec![0.0; n];
                }
            }
        }
        model
    }

    fn forward(&self, g: &GraphSample, _train: bool) -> ForwardCache {
        let n = g.feats.len().max(1);
        let neigh = if g.feats.is_empty() {
            vec![Vec::new()]
        } else {
            neighbours(g)
        };
        let mut h = Matrix::zeros(n, self.in_dim);
        for (r, row) in g.feats.iter().enumerate() {
            for (c, &v) in row.iter().enumerate().take(self.in_dim) {
                h.set(r, c, v);
            }
        }
        let mut aggs = Vec::with_capacity(self.convs.len());
        let mut zs = Vec::with_capacity(self.convs.len());
        for conv in &self.convs {
            let s = aggregate(&h, &neigh);
            let mut z = s.matmul(&conv.w);
            z.map_inplace(f64::tanh);
            aggs.push(s);
            h = z.clone();
            zs.push(z);
        }
        // SortPooling on the final single-channel layer.
        let last = zs.last().expect("at least one conv layer");
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| last.get(b, 0).total_cmp(&last.get(a, 0)).then(a.cmp(&b)));
        idx.truncate(self.k);
        let mut flat = vec![0.0; self.k * self.total_ch];
        for (slot, &node) in idx.iter().enumerate() {
            let mut off = 0;
            for z in &zs {
                for c in 0..z.cols {
                    flat[slot * self.total_ch + off + c] = z.get(node, c);
                }
                off += z.cols;
            }
        }
        ForwardCache {
            neigh,
            aggs,
            zs,
            order: idx,
            flat,
        }
    }

    /// Backprop from the flattened SortPooling gradient into the graph
    /// convolution weights.
    fn backward_graph(&mut self, cache: &ForwardCache, dflat: &[f64]) {
        let n = cache.zs[0].rows;
        // Per-layer pooled gradients.
        let mut dz: Vec<Matrix> = self
            .convs
            .iter()
            .map(|c| Matrix::zeros(n, c.w.cols))
            .collect();
        for (slot, &node) in cache.order.iter().enumerate() {
            let mut off = 0;
            for (li, z) in cache.zs.iter().enumerate() {
                for c in 0..z.cols {
                    let g = dflat[slot * self.total_ch + off + c];
                    if g != 0.0 {
                        let cur = dz[li].get(node, c);
                        dz[li].set(node, c, cur + g);
                    }
                }
                off += z.cols;
            }
        }
        // Walk layers backwards, adding the chained gradient into dz[i-1].
        for li in (0..self.convs.len()).rev() {
            // ds = dz ∘ (1 - z²)
            let mut ds = dz[li].clone();
            for (d, z) in ds.data.iter_mut().zip(&cache.zs[li].data) {
                *d *= 1.0 - z * z;
            }
            // gW += S^T ds
            let gw = cache.aggs[li].t_matmul(&ds);
            for (acc, g) in self.convs[li].gw.data.iter_mut().zip(&gw.data) {
                *acc += g;
            }
            if li > 0 {
                // dH_{i-1} = Â^T (ds W^T)
                let dh = ds.matmul_t(&self.convs[li].w);
                let routed = aggregate_t(&dh, &cache.neigh);
                for (acc, g) in dz[li - 1].data.iter_mut().zip(&routed.data) {
                    *acc += g;
                }
            }
        }
    }

    /// Predicts the class of one graph. Pure: safe to call concurrently.
    pub fn predict(&self, g: &GraphSample) -> usize {
        let cache = self.forward(g, false);
        argmax(&self.tail.infer(&cache.flat))
    }

    /// Approximate resident bytes (parameters + Adam moments).
    pub fn memory_bytes(&self) -> usize {
        let conv_params: usize = self.convs.iter().map(|c| c.w.data.len()).sum();
        (conv_params + self.tail.num_params()) * 8 * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class 0: a path graph; class 1: a star graph. Node features carry a
    /// bias and the node degree (as the `yali-embed` program graphs do) —
    /// with mean aggregation over *constant* features, paths and stars
    /// would be indistinguishable.
    fn structured_graphs(n_per_class: usize) -> (Vec<GraphSample>, Vec<usize>) {
        let mut gs = Vec::new();
        let mut y = Vec::new();
        let with_degree = |n: usize, edges: &[(usize, usize)]| -> Vec<Vec<f64>> {
            let mut deg = vec![0.0; n];
            for &(s, d) in edges {
                deg[s] += 1.0;
                deg[d] += 1.0;
            }
            deg.into_iter().map(|d| vec![1.0, d / 4.0]).collect()
        };
        for k in 0..n_per_class {
            let n = 6 + (k % 3);
            let path: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            gs.push(GraphSample {
                feats: with_degree(n, &path),
                edges: path,
            });
            y.push(0);
            let star: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
            gs.push(GraphSample {
                feats: with_degree(n, &star),
                edges: star,
            });
            y.push(1);
        }
        (gs, y)
    }

    #[test]
    fn separates_paths_from_stars() {
        let (gs, y) = structured_graphs(12);
        let cfg = DgcnnConfig {
            epochs: 40,
            k: 6,
            channels: vec![8, 8, 8, 1],
            dense: 32,
            dropout: 0.1,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let pred: Vec<usize> = gs.iter().map(|g| m.predict(g)).collect();
        let acc = crate::metrics::accuracy(&pred, &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn handles_graphs_smaller_than_k() {
        let (gs, y) = structured_graphs(4);
        let cfg = DgcnnConfig {
            epochs: 2,
            k: 32, // larger than any graph: zero padding kicks in
            channels: vec![4, 1],
            dense: 16,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let _ = m.predict(&gs[0]);
    }

    #[test]
    fn empty_edge_lists_are_fine() {
        let gs = vec![
            GraphSample {
                feats: vec![vec![1.0], vec![2.0]],
                edges: vec![],
            },
            GraphSample {
                feats: vec![vec![-1.0], vec![-2.0]],
                edges: vec![],
            },
        ];
        let y = vec![0, 1];
        let cfg = DgcnnConfig {
            epochs: 5,
            k: 2,
            channels: vec![4, 1],
            dense: 8,
            dropout: 0.0,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let _ = m.predict(&gs[0]);
    }

    #[test]
    fn aggregate_and_transpose_are_adjoint() {
        // <Âx, y> == <x, Â^T y> for random-ish data.
        let neigh = vec![vec![1], vec![0, 2], vec![1]];
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64 + 0.5);
        let y = Matrix::from_fn(3, 2, |r, c| (r as f64 - c as f64) * 1.25);
        let ax = aggregate(&x, &neigh);
        let aty = aggregate_t(&y, &neigh);
        let lhs: f64 = ax.data.iter().zip(&y.data).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.data.iter().zip(&aty.data).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn memory_counts_parameters() {
        let (gs, y) = structured_graphs(2);
        let cfg = DgcnnConfig {
            epochs: 1,
            k: 4,
            channels: vec![4, 1],
            dense: 8,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        assert!(m.memory_bytes() > 0);
    }
}
