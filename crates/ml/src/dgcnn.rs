//! The `dgcnn` model: Zhang et al.'s Deep Graph Convolutional Neural
//! Network (paper, Section 3.2), the only model that consumes graph-shaped
//! program embeddings.
//!
//! Architecture, as in the paper:
//!
//! 1. four graph-convolution layers with 32, 32, 32 and 1 units, tanh
//!    activation (`Z_i = tanh(D⁻¹(A+I) Z_{i-1} W_i)`);
//! 2. SortPooling: nodes sorted by the final 1-unit channel, the top `k`
//!    kept (zero-padded), channels concatenated;
//! 3. a 1-D convolution with stride = total channel count (one step per
//!    node), max pooling, a second 1-D convolution;
//! 4. a dense layer with dropout and a final dense classifier.
//!
//! Everything is trained end to end with manual backpropagation. Training
//! follows the same deterministic data-parallel scheme as [`Net::fit`]:
//! minibatches split into fixed micro-batches, per-micro gradients computed
//! purely (`&self`) on worker threads — graph passes per sample, the tail
//! as one batched GEMM pass — and merged in index order, so the fitted
//! model is byte-identical at every thread count.

use crate::linalg::{axpy, Adam, Matrix};
use crate::nn::{
    mix3, step_threads, BatchCtx, Conv1d, Dense, Dropout, Layer, LayerGrads, MaxPool1d, Net, Relu,
    MICRO_BATCH,
};
use crate::serialize::{ByteReader, ByteWriter};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A graph sample: node features plus an edge list (directions are
/// symmetrized internally).
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Per-node feature rows (uniform length).
    pub feats: Vec<Vec<f64>>,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(usize, usize)>,
}

impl GraphSample {
    /// Converts a `yali-embed` program graph (dropping edge kinds).
    pub fn from_program_graph(feats: Vec<Vec<f64>>, edges: Vec<(usize, usize)>) -> GraphSample {
        GraphSample { feats, edges }
    }
}

/// DGCNN hyperparameters.
#[derive(Debug, Clone)]
pub struct DgcnnConfig {
    /// Units per graph-convolution layer (the paper's 32/32/32/1).
    pub channels: Vec<usize>,
    /// SortPooling size.
    pub k: usize,
    /// Dense width in the tail.
    pub dense: usize,
    /// Dropout probability.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DgcnnConfig {
    fn default() -> Self {
        DgcnnConfig {
            channels: vec![32, 32, 32, 1],
            k: 12,
            dense: 128,
            dropout: 0.5,
            epochs: 30,
            batch: 16,
            lr: 0.003,
            seed: 0,
        }
    }
}

/// One graph-convolution layer. Gradients live in trainer-owned buffers
/// (like [`LayerGrads`] for the tail); the optimizer's moment buffers are
/// hoisted in [`Adam`], so a training step allocates nothing.
struct GraphConv {
    w: Matrix, // d_in × d_out
    opt: Adam,
}

/// Compressed-sparse-row adjacency: the neighbours of node `v` are
/// `indices[offsets[v]..offsets[v+1]]`, sorted ascending and deduplicated.
/// Two flat arrays instead of a `Vec` per node, so the aggregation inner
/// loops walk contiguous memory — and a chunk of graphs stacks into one
/// block-diagonal `Csr` for the batched forward.
struct Csr {
    offsets: Vec<usize>,
    indices: Vec<usize>,
}

impl Csr {
    /// Packs per-node adjacency lists (kept in their given order).
    fn from_adj(adj: &[Vec<usize>]) -> Csr {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        offsets.push(0);
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut indices = Vec::with_capacity(total);
        for l in adj {
            indices.extend_from_slice(l);
            offsets.push(indices.len());
        }
        Csr { offsets, indices }
    }

    /// The (sorted) neighbour slice of node `v`.
    fn neighbours(&self, v: usize) -> &[usize] {
        &self.indices[self.offsets[v]..self.offsets[v + 1]]
    }
}

/// A fitted DGCNN.
pub struct Dgcnn {
    convs: Vec<GraphConv>,
    tail: Net,
    k: usize,
    total_ch: usize,
    in_dim: usize,
}

/// Row-normalized aggregation: `out[v] = (x[v] + Σ_{u∈N(v)} x[u]) / (1+|N(v)|)`.
#[allow(clippy::needless_range_loop)] // index form mirrors the formula
fn aggregate(x: &Matrix, adj: &Csr) -> Matrix {
    let mut out = Matrix::zeros(x.rows, x.cols);
    for v in 0..x.rows {
        let row = x.row(v).to_vec();
        let o = out.row_mut(v);
        for (oo, &xv) in o.iter_mut().zip(&row) {
            *oo = xv;
        }
        let neigh = adj.neighbours(v);
        for &u in neigh {
            for (oo, &xu) in o.iter_mut().zip(x.row(u)) {
                *oo += xu;
            }
        }
        let norm = 1.0 / (1 + neigh.len()) as f64;
        for oo in o.iter_mut() {
            *oo *= norm;
        }
    }
    out
}

/// Transpose of [`aggregate`] for backprop: routes each node's gradient to
/// itself and its neighbours with the *receiver's* normalization.
#[allow(clippy::needless_range_loop)] // index form mirrors the formula
fn aggregate_t(g: &Matrix, adj: &Csr) -> Matrix {
    let mut out = Matrix::zeros(g.rows, g.cols);
    for v in 0..g.rows {
        let neigh = adj.neighbours(v);
        let norm = 1.0 / (1 + neigh.len()) as f64;
        let grow: Vec<f64> = g.row(v).iter().map(|x| x * norm).collect();
        for (oo, gg) in out.row_mut(v).iter_mut().zip(&grow) {
            *oo += gg;
        }
        for &u in neigh {
            for (oo, gg) in out.row_mut(u).iter_mut().zip(&grow) {
                *oo += gg;
            }
        }
    }
    out
}

fn neighbours(g: &GraphSample) -> Vec<Vec<usize>> {
    let n = g.feats.len();
    let mut neigh = vec![Vec::new(); n];
    for &(s, d) in &g.edges {
        if s < n && d < n && s != d {
            neigh[s].push(d);
            neigh[d].push(s);
        }
    }
    for l in &mut neigh {
        l.sort_unstable();
        l.dedup();
    }
    neigh
}

/// Symmetrized, deduplicated adjacency as CSR; a feature-less graph gets
/// one padded zero node (matching the forward pass).
fn adjacency(g: &GraphSample) -> Csr {
    if g.feats.is_empty() {
        Csr::from_adj(&[Vec::new()])
    } else {
        Csr::from_adj(&neighbours(g))
    }
}

struct ForwardCache {
    neigh: Csr,
    /// Aggregated inputs per layer (`S_i = Â H_{i-1}`).
    aggs: Vec<Matrix>,
    /// Activations per layer (`Z_i = tanh(S_i W_i)`).
    zs: Vec<Matrix>,
    /// Selected node order after SortPooling.
    order: Vec<usize>,
    flat: Vec<f64>,
}

impl Dgcnn {
    /// Trains a DGCNN on graph samples with labels in `0..n_classes`,
    /// using [`yali_par::worker_count`] threads.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set or inconsistent feature widths.
    pub fn fit(graphs: &[GraphSample], y: &[usize], n_classes: usize, config: &DgcnnConfig) -> Dgcnn {
        Dgcnn::fit_with_threads(graphs, y, n_classes, config, yali_par::worker_count())
    }

    /// [`Dgcnn::fit`] with an explicit thread count; the fitted model is
    /// byte-identical at every `threads` value.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set or inconsistent feature widths.
    pub fn fit_with_threads(
        graphs: &[GraphSample],
        y: &[usize],
        n_classes: usize,
        config: &DgcnnConfig,
        threads: usize,
    ) -> Dgcnn {
        assert!(!graphs.is_empty(), "empty training set");
        assert_eq!(graphs.len(), y.len());
        let in_dim = graphs[0].feats.first().map(Vec::len).unwrap_or(1);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut convs = Vec::new();
        let mut d = in_dim;
        for &c in &config.channels {
            let scale = (2.0 / (d + c) as f64).sqrt();
            convs.push(GraphConv {
                w: Matrix::from_fn(d, c, |_, _| (rng.gen::<f64>() * 2.0 - 1.0) * scale),
                opt: Adam::new(d * c, config.lr),
            });
            d = c;
        }
        let total_ch: usize = config.channels.iter().sum();
        // Tail: conv over the k sorted nodes (kernel = channel count,
        // stride = channel count), pool, conv, dense, dropout, classifier.
        let flat_len = config.k * total_ch;
        let conv1 = Conv1d::new(1, flat_len, 16, total_ch, total_ch, config.lr, &mut rng);
        let len1 = conv1.output_size() / 16; // == k
        let pool = MaxPool1d::new(16, len1, 2);
        let len2 = len1.div_ceil(2).max(1);
        let k2 = 5.min(len2);
        let conv2 = Conv1d::new(16, len2, 32, k2, 1, config.lr, &mut rng);
        let flat2 = conv2.output_size();
        let tail_layers: Vec<Box<dyn Layer>> = vec![
            Box::new(conv1),
            Box::new(Relu),
            Box::new(pool),
            Box::new(conv2),
            Box::new(Relu),
            Box::new(Dense::new(flat2, config.dense, config.lr, &mut rng)),
            Box::new(Relu),
            Box::new(Dropout::new(config.dropout, config.seed ^ 0xD6)),
            Box::new(Dense::new(config.dense, n_classes, config.lr, &mut rng)),
        ];
        let mut model = Dgcnn {
            convs,
            tail: Net {
                layers: tail_layers,
                n_classes,
            },
            k: config.k,
            total_ch,
            in_dim,
        };
        // Deterministic data-parallel training: the minibatch decomposition
        // into MICRO_BATCH-sample micro-batches is fixed, micro-gradients
        // are computed purely on worker threads, and the merge walks them
        // in index order — so the weights do not depend on `threads`.
        let seed = config.seed ^ 0xBEEF;
        let mut order: Vec<usize> = (0..graphs.len()).collect();
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let mut tail_acc = model.tail.grad_buffers();
        let mut conv_acc: Vec<Matrix> = model
            .convs
            .iter()
            .map(|c| Matrix::zeros(c.w.rows, c.w.cols))
            .collect();
        let params = model.num_params();
        let _fit_span = yali_obs::span!("ml.dgcnn.fit");
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng2);
            let mut total = 0.0;
            for chunk in order.chunks(config.batch.max(1)) {
                let micros: Vec<&[usize]> = chunk.chunks(MICRO_BATCH).collect();
                let t = step_threads(threads, micros.len(), params * chunk.len());
                let results = yali_par::par_map_with(t, &micros, |_, m| {
                    model.micro_grads(graphs, y, m, epoch, seed)
                });
                for (loss, tg, cg) in results {
                    total += loss;
                    for (a, g) in tail_acc.iter_mut().zip(&tg) {
                        a.add(g);
                    }
                    for (a, g) in conv_acc.iter_mut().zip(&cg) {
                        axpy(1.0, &g.data, &mut a.data);
                    }
                }
                let s = 1.0 / chunk.len().max(1) as f64;
                model.tail.step(&mut tail_acc, chunk.len());
                for (conv, acc) in model.convs.iter_mut().zip(conv_acc.iter_mut()) {
                    // The fused step folds the 1/batch scale into the Adam
                    // update and the accumulator is zeroed in place — no
                    // per-step reallocation.
                    conv.opt.step_scaled(&mut conv.w.data, &acc.data, s);
                    acc.data.iter_mut().for_each(|g| *g = 0.0);
                }
            }
            yali_obs::count!("ml.dgcnn.epochs", 1);
            yali_obs::record!(
                "ml.dgcnn.epoch_loss_millis",
                crate::nn::to_millis(total / graphs.len() as f64)
            );
        }
        model
    }

    /// Gradients of one micro-batch: per-sample graph passes, one batched
    /// tail pass. Pure (`&self`), so micro-batches run on worker threads.
    fn micro_grads(
        &self,
        graphs: &[GraphSample],
        y: &[usize],
        idxs: &[usize],
        epoch: usize,
        seed: u64,
    ) -> (f64, Vec<LayerGrads>, Vec<Matrix>) {
        let caches: Vec<ForwardCache> = idxs.iter().map(|&i| self.forward_graph(&graphs[i])).collect();
        let flats: Vec<&[f64]> = caches.iter().map(|c| c.flat.as_slice()).collect();
        let input = Matrix::from_rows(&flats);
        let ctx = BatchCtx::train(
            idxs.iter().map(|&i| mix3(seed, epoch as u64, i as u64)).collect(),
        );
        let (logits, tail_caches) = self.tail.forward_batch(input, &ctx);
        let ys: Vec<usize> = idxs.iter().map(|&i| y[i]).collect();
        let (loss, grad) = Net::batch_loss_grad(&logits, &ys);
        let mut tail_grads = self.tail.grad_buffers();
        let dflat = self.tail.backward_batch(&tail_caches, grad, &mut tail_grads);
        let mut conv_grads: Vec<Matrix> = self
            .convs
            .iter()
            .map(|c| Matrix::zeros(c.w.rows, c.w.cols))
            .collect();
        for (r, cache) in caches.iter().enumerate() {
            self.graph_grads(cache, dflat.row(r), &mut conv_grads);
        }
        (loss, tail_grads, conv_grads)
    }

    /// Pure forward pass of the graph half (graph convolutions plus
    /// SortPooling); the tail consumes `flat`.
    fn forward_graph(&self, g: &GraphSample) -> ForwardCache {
        let n = g.feats.len().max(1);
        let neigh = adjacency(g);
        let mut h = Matrix::zeros(n, self.in_dim);
        for (r, row) in g.feats.iter().enumerate() {
            for (c, &v) in row.iter().enumerate().take(self.in_dim) {
                h.set(r, c, v);
            }
        }
        let mut aggs = Vec::with_capacity(self.convs.len());
        let mut zs = Vec::with_capacity(self.convs.len());
        for conv in &self.convs {
            let s = aggregate(&h, &neigh);
            let mut z = s.matmul(&conv.w);
            z.map_inplace(f64::tanh);
            aggs.push(s);
            h = z.clone();
            zs.push(z);
        }
        // SortPooling on the final single-channel layer.
        let last = zs.last().expect("at least one conv layer");
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| last.get(b, 0).total_cmp(&last.get(a, 0)).then(a.cmp(&b)));
        idx.truncate(self.k);
        let mut flat = vec![0.0; self.k * self.total_ch];
        for (slot, &node) in idx.iter().enumerate() {
            let mut off = 0;
            for z in &zs {
                for c in 0..z.cols {
                    flat[slot * self.total_ch + off + c] = z.get(node, c);
                }
                off += z.cols;
            }
        }
        ForwardCache {
            neigh,
            aggs,
            zs,
            order: idx,
            flat,
        }
    }

    /// Backprop from the flattened SortPooling gradient into per-layer
    /// graph-convolution weight gradients, accumulated into `acc`. Pure
    /// (`&self`): the trainer owns the accumulators.
    fn graph_grads(&self, cache: &ForwardCache, dflat: &[f64], acc: &mut [Matrix]) {
        let n = cache.zs[0].rows;
        // Per-layer pooled gradients.
        let mut dz: Vec<Matrix> = self
            .convs
            .iter()
            .map(|c| Matrix::zeros(n, c.w.cols))
            .collect();
        for (slot, &node) in cache.order.iter().enumerate() {
            let mut off = 0;
            for (li, z) in cache.zs.iter().enumerate() {
                for c in 0..z.cols {
                    let g = dflat[slot * self.total_ch + off + c];
                    if g != 0.0 {
                        let cur = dz[li].get(node, c);
                        dz[li].set(node, c, cur + g);
                    }
                }
                off += z.cols;
            }
        }
        // Walk layers backwards, adding the chained gradient into dz[i-1].
        for li in (0..self.convs.len()).rev() {
            // ds = dz ∘ (1 - z²)
            let mut ds = dz[li].clone();
            for (d, z) in ds.data.iter_mut().zip(&cache.zs[li].data) {
                *d *= 1.0 - z * z;
            }
            // gW += S^T ds
            let gw = cache.aggs[li].t_matmul(&ds);
            axpy(1.0, &gw.data, &mut acc[li].data);
            if li > 0 {
                // dH_{i-1} = Â^T (ds W^T)
                let dh = ds.matmul_t(&self.convs[li].w);
                let routed = aggregate_t(&dh, &cache.neigh);
                axpy(1.0, &routed.data, &mut dz[li - 1].data);
            }
        }
    }

    /// Predicts the class of one graph, through the same stacked batched
    /// forward as [`Dgcnn::predict_batch`] on a one-graph chunk. Pure:
    /// safe to call concurrently.
    pub fn predict(&self, g: &GraphSample) -> usize {
        self.predict_chunk(&[g])[0]
    }

    /// Predicts a whole batch of graphs: fixed-size chunks dispatched on
    /// `yali-par` workers and merged in index order, each chunk stacked
    /// into one block-diagonal CSR forward — byte-identical to a
    /// per-graph [`Dgcnn::predict`] loop at any `YALI_THREADS`.
    pub fn predict_batch(&self, gs: &[GraphSample]) -> Vec<usize> {
        self.predict_batch_with_threads(gs, yali_par::worker_count())
    }

    /// [`Dgcnn::predict_batch`] with an explicit worker count; the chunk
    /// decomposition is fixed, so results do not depend on `threads`.
    pub fn predict_batch_with_threads(&self, gs: &[GraphSample], threads: usize) -> Vec<usize> {
        let refs: Vec<&GraphSample> = gs.iter().collect();
        crate::chunked_map(refs.len(), threads, |lo, hi| self.predict_chunk(&refs[lo..hi]))
    }

    /// Labels for one chunk of graphs: stack all nodes into one matrix
    /// with a block-diagonal CSR adjacency, run every graph convolution
    /// as a single pass over the stacked nodes, SortPool per graph, and
    /// classify the chunk through one batched tail pass. Every per-node
    /// value matches the per-graph forward bit-for-bit (row-independent
    /// kernels), so predictions equal the per-sample path exactly.
    pub(crate) fn predict_chunk(&self, gs: &[&GraphSample]) -> Vec<usize> {
        if gs.is_empty() {
            return Vec::new();
        }
        let flat = self.sort_pooled_chunk(gs);
        self.tail.predict_rows(flat)
    }

    /// The stacked graph-half forward: one SortPooled feature row per
    /// graph in the chunk, ready for the batched tail.
    fn sort_pooled_chunk(&self, gs: &[&GraphSample]) -> Matrix {
        // Feature-less graphs pad to one zero node, as in forward_graph.
        let counts: Vec<usize> = gs.iter().map(|g| g.feats.len().max(1)).collect();
        let mut starts = Vec::with_capacity(gs.len() + 1);
        starts.push(0usize);
        for &c in &counts {
            starts.push(starts.last().unwrap() + c);
        }
        let total = *starts.last().unwrap();
        let mut h = Matrix::zeros(total, self.in_dim);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (b, g) in gs.iter().enumerate() {
            let lo = starts[b];
            for (r, row) in g.feats.iter().enumerate() {
                for (c, &v) in row.iter().enumerate().take(self.in_dim) {
                    h.set(lo + r, c, v);
                }
            }
            for (v, l) in neighbours(g).into_iter().enumerate() {
                adj[lo + v] = l.into_iter().map(|u| lo + u).collect();
            }
        }
        let csr = Csr::from_adj(&adj);
        let mut zs: Vec<Matrix> = Vec::with_capacity(self.convs.len());
        let mut cur = h;
        for conv in &self.convs {
            let s = aggregate(&cur, &csr);
            let mut z = s.matmul(&conv.w);
            z.map_inplace(f64::tanh);
            cur = z.clone();
            zs.push(z);
        }
        let last = zs.last().expect("at least one conv layer");
        let mut flat = Matrix::zeros(gs.len(), self.k * self.total_ch);
        for b in 0..gs.len() {
            let (lo, n) = (starts[b], counts[b]);
            // SortPooling on local node indices, same comparator as the
            // per-graph forward: descending final channel, ascending index.
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by(|&a, &c| {
                last.get(lo + c, 0).total_cmp(&last.get(lo + a, 0)).then(a.cmp(&c))
            });
            idx.truncate(self.k);
            let frow = flat.row_mut(b);
            for (slot, &node) in idx.iter().enumerate() {
                let mut off = 0;
                for z in &zs {
                    for c in 0..z.cols {
                        frow[slot * self.total_ch + off + c] = z.get(lo + node, c);
                    }
                    off += z.cols;
                }
            }
        }
        flat
    }

    /// Total trainable parameters (graph convolutions plus the tail).
    pub fn num_params(&self) -> usize {
        let conv_params: usize = self.convs.iter().map(|c| c.w.data.len()).sum();
        conv_params + self.tail.num_params()
    }

    /// Approximate resident bytes (parameters + Adam moments).
    pub fn memory_bytes(&self) -> usize {
        self.num_params() * 8 * 3
    }

    /// Serializes the fitted model for the experiment engine's model
    /// store. Weights round-trip via [`f64::to_bits`], so a deserialized
    /// model classifies byte-identically to the original.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.k);
        w.put_usize(self.total_ch);
        w.put_usize(self.in_dim);
        w.put_usize(self.convs.len());
        for c in &self.convs {
            w.put_f64(c.opt.lr);
            w.put_matrix(&c.w);
        }
        self.tail.write(&mut w);
        w.into_bytes()
    }

    /// Deserializes a model written by [`Dgcnn::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed blob (a model-store bug, not an input error).
    pub fn from_bytes(bytes: &[u8]) -> Dgcnn {
        let mut r = ByteReader::new(bytes);
        let k = r.get_usize();
        let total_ch = r.get_usize();
        let in_dim = r.get_usize();
        let n_convs = r.get_usize();
        let convs = (0..n_convs)
            .map(|_| {
                let lr = r.get_f64();
                let w = r.get_matrix();
                let opt = Adam::new(w.data.len(), lr);
                GraphConv { w, opt }
            })
            .collect();
        let tail = Net::read(&mut r);
        assert!(r.is_done(), "trailing bytes in model blob");
        Dgcnn {
            convs,
            tail,
            k,
            total_ch,
            in_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class 0: a path graph; class 1: a star graph. Node features carry a
    /// bias and the node degree (as the `yali-embed` program graphs do) —
    /// with mean aggregation over *constant* features, paths and stars
    /// would be indistinguishable.
    fn structured_graphs(n_per_class: usize) -> (Vec<GraphSample>, Vec<usize>) {
        let mut gs = Vec::new();
        let mut y = Vec::new();
        let with_degree = |n: usize, edges: &[(usize, usize)]| -> Vec<Vec<f64>> {
            let mut deg = vec![0.0; n];
            for &(s, d) in edges {
                deg[s] += 1.0;
                deg[d] += 1.0;
            }
            deg.into_iter().map(|d| vec![1.0, d / 4.0]).collect()
        };
        for k in 0..n_per_class {
            let n = 6 + (k % 3);
            let path: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            gs.push(GraphSample {
                feats: with_degree(n, &path),
                edges: path,
            });
            y.push(0);
            let star: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
            gs.push(GraphSample {
                feats: with_degree(n, &star),
                edges: star,
            });
            y.push(1);
        }
        (gs, y)
    }

    #[test]
    fn separates_paths_from_stars() {
        let (gs, y) = structured_graphs(12);
        let cfg = DgcnnConfig {
            epochs: 40,
            k: 6,
            channels: vec![8, 8, 8, 1],
            dense: 32,
            dropout: 0.1,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let pred: Vec<usize> = gs.iter().map(|g| m.predict(g)).collect();
        let acc = crate::metrics::accuracy(&pred, &y);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn handles_graphs_smaller_than_k() {
        let (gs, y) = structured_graphs(4);
        let cfg = DgcnnConfig {
            epochs: 2,
            k: 32, // larger than any graph: zero padding kicks in
            channels: vec![4, 1],
            dense: 16,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let _ = m.predict(&gs[0]);
    }

    #[test]
    fn empty_edge_lists_are_fine() {
        let gs = vec![
            GraphSample {
                feats: vec![vec![1.0], vec![2.0]],
                edges: vec![],
            },
            GraphSample {
                feats: vec![vec![-1.0], vec![-2.0]],
                edges: vec![],
            },
        ];
        let y = vec![0, 1];
        let cfg = DgcnnConfig {
            epochs: 5,
            k: 2,
            channels: vec![4, 1],
            dense: 8,
            dropout: 0.0,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let _ = m.predict(&gs[0]);
    }

    #[test]
    fn aggregate_and_transpose_are_adjoint() {
        // <Âx, y> == <x, Â^T y> for random-ish data.
        let neigh = Csr::from_adj(&[vec![1], vec![0, 2], vec![1]]);
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64 + 0.5);
        let y = Matrix::from_fn(3, 2, |r, c| (r as f64 - c as f64) * 1.25);
        let ax = aggregate(&x, &neigh);
        let aty = aggregate_t(&y, &neigh);
        let lhs: f64 = ax.data.iter().zip(&y.data).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.data.iter().zip(&aty.data).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    #[test]
    fn memory_counts_parameters() {
        let (gs, y) = structured_graphs(2);
        let cfg = DgcnnConfig {
            epochs: 1,
            k: 4,
            channels: vec![4, 1],
            dense: 8,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn training_is_byte_identical_across_thread_counts() {
        let (gs, y) = structured_graphs(12);
        // Heavy enough that params × batch crosses the PAR_MIN_WORK gate,
        // so the threaded runs really take the parallel path.
        let cfg = DgcnnConfig {
            epochs: 2,
            k: 6,
            batch: 24,
            dense: 128,
            dropout: 0.3,
            ..Default::default()
        };
        let want = Dgcnn::fit_with_threads(&gs, &y, 2, &cfg, 1).to_bytes();
        for threads in [2usize, 8] {
            let got = Dgcnn::fit_with_threads(&gs, &y, 2, &cfg, threads).to_bytes();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn serialization_round_trips_predictions() {
        let (gs, y) = structured_graphs(6);
        let cfg = DgcnnConfig {
            epochs: 5,
            k: 6,
            channels: vec![8, 8, 1],
            dense: 32,
            ..Default::default()
        };
        let m = Dgcnn::fit(&gs, &y, 2, &cfg);
        let restored = Dgcnn::from_bytes(&m.to_bytes());
        for g in &gs {
            assert_eq!(m.predict(g), restored.predict(g));
        }
        assert_eq!(restored.to_bytes(), m.to_bytes(), "re-serialization is stable");
    }
}
