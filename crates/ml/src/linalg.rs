//! Dense linear-algebra kernels: row-major matrices plus the GEMM and
//! optimizer primitives the neural models train on.
//!
//! The three products ([`Matrix::matmul`], [`Matrix::t_matmul`],
//! [`Matrix::matmul_t`]) all reduce to one register-blocked kernel in the
//! `i–k–j` (axpy) formulation: the inner loop accumulates
//! `C[i][·] += A[i][k] · B[k][·]` over two **contiguous** row slices, which
//! the vectorized [`axpy`] turns into straight vector work — unlike a
//! dot-product formulation, whose single serial accumulator chains every
//! add's latency. Summation over `k` runs in a fixed ascending order, so
//! results are bit-stable run to run. The kernel walks `A` four rows at a
//! time so each streamed `B` row is reused across four accumulator rows
//! from registers. `matmul` is the kernel's native layout and packs
//! nothing; `matmul_t` packs `Bᵀ` once per call with the tiled
//! [`Matrix::transpose`] — an `O(k·n)` copy against `O(m·k·n)` multiply
//! work — so its inner loop is contiguous too; `t_matmul` re-associates
//! to stream `A` rows directly, also pack-free.
//!
//! [`Matrix::matmul_t_bias`] is the fused inference/training path: it
//! seeds every output row with the bias vector instead of zero, saving a
//! full pass over the output (the `Dense` and `Conv1d` layers call it on
//! their batched forward).
//!
//! A naive triple-loop implementation of each product is kept under
//! `#[cfg(test)]` as the reference oracle; a property test checks the
//! blocked kernels against it on random (including degenerate 0×N and
//! 1×1) shapes.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data (`rows * cols` entries).
    pub data: Vec<f64>,
}

/// Shape-mismatch panic naming both operand shapes (kept out of line so
/// the kernels stay small).
#[cold]
#[inline(never)]
fn shape_panic(op: &str, rule: &str, a: (usize, usize), b: (usize, usize)) -> ! {
    panic!(
        "{op}: incompatible shapes {}x{} vs {}x{} ({rule})",
        a.0, a.1, b.0, b.1
    );
}

/// `y += alpha * x`: the GEMM inner loop, and the fused accumulate used
/// to merge gradient buffers and scatter conv gradients. Written as a
/// bounds-check-free slice zip so the compiler vectorizes it — every
/// `y[k]` is an independent accumulator, so vectorization needs no
/// reassociation and results stay bit-stable.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    for (yv, &xv) in y[..n].iter_mut().zip(&x[..n]) {
        *yv += alpha * xv;
    }
}

/// The register-blocked `C = A · B (+ bias)` kernel in the `i–k–j`
/// formulation: each output row is seeded (with zero or the bias) and
/// then built by streaming `axpy(A[i][k], B.row(k))` over ascending `k`,
/// so both the load and the store of the inner loop are contiguous and
/// the summation order is fixed. Rows of `A` are processed four at a time
/// so every streamed `B` row is reused from registers across four
/// accumulator rows; each output element still sums in ascending-`k`
/// order, so the blocking changes nothing bitwise. Zero `A` entries
/// (whole rows in the remainder loop) skip their multiply.
fn mul_rm(a: &Matrix, b: &Matrix, bias: Option<&[f64]>) -> Matrix {
    let n = b.cols;
    let k = a.cols;
    // GEMM-kernel accounting: one counter bump per kernel call (never per
    // element), so the disabled path costs one relaxed load.
    yali_obs::count!("ml.gemm.calls", 1);
    yali_obs::count!("ml.gemm.fmas", (a.rows * n * k) as u64);
    let mut out = Matrix::zeros(a.rows, n);
    if let Some(bv) = bias {
        for i in 0..a.rows {
            out.data[i * n..(i + 1) * n].copy_from_slice(bv);
        }
    }
    let mut i = 0;
    while i + 4 <= a.rows {
        let (o0, rest) = out.data[i * n..(i + 4) * n].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        for kk in 0..k {
            let brow = &b.data[kk * n..(kk + 1) * n];
            let a0 = a.data[i * k + kk];
            let a1 = a.data[(i + 1) * k + kk];
            let a2 = a.data[(i + 2) * k + kk];
            let a3 = a.data[(i + 3) * k + kk];
            for (j, &bj) in brow.iter().enumerate() {
                o0[j] += a0 * bj;
                o1[j] += a1 * bj;
                o2[j] += a2 * bj;
                o3[j] += a3 * bj;
            }
        }
        i += 4;
    }
    while i < a.rows {
        let arow = &a.data[i * k..(i + 1) * k];
        let orow = &mut out.data[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                axpy(av, &b.data[kk * n..(kk + 1) * n], orow);
            }
        }
        i += 1;
    }
    out
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix by copying `rows.len()` equally sized row slices.
    ///
    /// # Panics
    ///
    /// Panics when the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Matrix {
        let cols = rows.first().map_or(0, |r| r.len());
        let mut m = Matrix::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "from_rows: ragged row {r}");
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The transpose, packed with cache-friendly tiles.
    pub fn transpose(&self) -> Matrix {
        const T: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(T) {
            let rend = (rb + T).min(self.rows);
            for cb in (0..self.cols).step_by(T) {
                let cend = (cb + T).min(self.cols);
                for r in rb..rend {
                    for c in cb..cend {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch, naming both shapes.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        if self.cols != other.rows {
            shape_panic(
                "matmul",
                "A.cols must equal B.rows",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        mul_rm(self, other, None)
    }

    /// `self^T * other`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch, naming both shapes.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        if self.rows != other.rows {
            shape_panic(
                "t_matmul",
                "A.rows must equal B.rows",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        // `(AᵀB)[i][·] = Σ_r A[r][i] · B[r][·]`: streaming the rows of both
        // operands hits the axpy kernel without packing either transpose.
        yali_obs::count!("ml.gemm.calls", 1);
        yali_obs::count!("ml.gemm.fmas", (self.rows * self.cols * other.cols) as u64);
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    axpy(av, brow, &mut out.data[i * other.cols..(i + 1) * other.cols]);
                }
            }
        }
        out
    }

    /// `self * other^T`.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch, naming both shapes.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        if self.cols != other.cols {
            shape_panic(
                "matmul_t",
                "A.cols must equal B.cols",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        mul_rm(self, &other.transpose(), None)
    }

    /// Fused `self * other^T + bias`: every output row starts from `bias`
    /// instead of zero. This is one batched dense/conv forward pass.
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch or when `bias.len() != other.rows`,
    /// naming the shapes.
    pub fn matmul_t_bias(&self, other: &Matrix, bias: &[f64]) -> Matrix {
        if self.cols != other.cols {
            shape_panic(
                "matmul_t_bias",
                "A.cols must equal B.cols",
                (self.rows, self.cols),
                (other.rows, other.cols),
            );
        }
        if bias.len() != other.rows {
            shape_panic(
                "matmul_t_bias",
                "bias length must equal B.rows",
                (bias.len(), 1),
                (other.rows, other.cols),
            );
        }
        mul_rm(self, &other.transpose(), Some(bias))
    }

    /// Accumulates each column's sum into `out` (`out[c] += Σ_r self[r][c]`),
    /// walking rows in order so the reduction is bit-stable.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.cols`, naming the shapes.
    pub fn add_col_sums(&self, out: &mut [f64]) {
        if out.len() != self.cols {
            shape_panic(
                "add_col_sums",
                "out length must equal cols",
                (self.rows, self.cols),
                (out.len(), 1),
            );
        }
        for r in 0..self.rows {
            axpy(1.0, self.row(r), out);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Softmax in place (numerically stabilized).
pub fn softmax_inplace(v: &mut [f64]) {
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// Index of the maximum vote count (first on ties) — the integer twin of
/// [`argmax`], used by the voting models (rf, knn).
pub fn argmax_counts(v: &[usize]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// The Adam optimizer state for one parameter tensor. The first/second
/// moment buffers are allocated once at construction and updated in place
/// — `step` never allocates.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Learning rate.
    pub lr: f64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters.
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    /// Applies one update step of gradients `g` to parameters `p`.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree with construction.
    pub fn step(&mut self, p: &mut [f64], g: &[f64]) {
        self.step_scaled(p, g, 1.0);
    }

    /// Applies one update step of `scale * g` to `p` without materializing
    /// the scaled gradient — the fused path the layers use to fold the
    /// `1/batch` normalization into the moment update.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree with construction.
    pub fn step_scaled(&mut self, p: &mut [f64], g: &[f64], scale: f64) {
        assert_eq!(p.len(), self.m.len());
        assert_eq!(g.len(), self.m.len());
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..p.len() {
            let gi = scale * g[i];
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * gi;
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * gi * gi;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            p[i] -= self.lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-blocking triple-loop products: the reference oracle the
    /// blocked kernels are property-tested against.
    mod naive {
        use super::Matrix;

        pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.rows, b.cols);
            for r in 0..a.rows {
                for k in 0..a.cols {
                    let av = a.get(r, k);
                    for c in 0..b.cols {
                        out.data[r * b.cols + c] += av * b.get(k, c);
                    }
                }
            }
            out
        }

        pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.cols, b.cols);
            for r in 0..a.rows {
                for i in 0..a.cols {
                    let av = a.get(r, i);
                    for j in 0..b.cols {
                        out.data[i * b.cols + j] += av * b.get(r, j);
                    }
                }
            }
            out
        }

        pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
            let mut out = Matrix::zeros(a.rows, b.rows);
            for r in 0..a.rows {
                for j in 0..b.rows {
                    let mut acc = 0.0;
                    for k in 0..a.cols {
                        acc += a.get(r, k) * b.get(j, k);
                    }
                    out.data[r * b.rows + j] = acc;
                }
            }
            out
        }
    }

    fn assert_close(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols), "{what} shape");
        for (i, (x, y)) in a.data.iter().zip(&b.data).enumerate() {
            assert!((x - y).abs() < 1e-9, "{what} entry {i}: {x} vs {y}");
        }
    }

    fn fill(rows: usize, cols: usize, vals: &[f64]) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            if vals.is_empty() {
                0.0
            } else {
                vals[(r * cols + c) % vals.len()]
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The tentpole contract: the blocked axpy kernels agree with the
        // naive triple loops on arbitrary shapes, including degenerate
        // 0xN and 1x1 operands.
        #[test]
        fn blocked_gemm_matches_the_naive_oracle(
            m in 0usize..9,
            k in 0usize..67,
            n in 0usize..41,
            vals in prop::collection::vec(-8.0f64..8.0, 1..48),
        ) {
            let a = fill(m, k, &vals);
            let b = fill(k, n, &vals[vals.len() / 2..]);
            assert_close(&a.matmul(&b), &naive::matmul(&a, &b), "matmul");

            let a2 = fill(k, m, &vals);
            assert_close(&a2.t_matmul(&b), &naive::t_matmul(&a2, &b), "t_matmul");

            let b2 = fill(n, k, &vals);
            assert_close(&a.matmul_t(&b2), &naive::matmul_t(&a, &b2), "matmul_t");

            let bias: Vec<f64> = (0..n).map(|j| j as f64 * 0.25 - 1.0).collect();
            let mut want = naive::matmul_t(&a, &b2);
            for r in 0..want.rows {
                axpy(1.0, &bias, want.row_mut(r));
            }
            assert_close(&a.matmul_t_bias(&b2, &bias), &want, "matmul_t_bias");
        }

        #[test]
        fn transpose_round_trips(
            m in 0usize..12,
            n in 0usize..12,
            vals in prop::collection::vec(-4.0f64..4.0, 1..16),
        ) {
            let a = fill(m, n, &vals);
            let t = a.transpose();
            prop_assert_eq!((t.rows, t.cols), (n, m));
            prop_assert_eq!(t.transpose(), a);
        }
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![10.0, 13.0, 28.0, 40.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 + 1.0);
        let a_t = a.transpose();
        assert_close(&a.t_matmul(&b), &a_t.matmul(&b), "t_matmul");

        let c = Matrix::from_fn(5, 2, |r, col| (r * 2 + col) as f64);
        let c_t = c.transpose();
        assert_close(&a.matmul_t(&c), &a.matmul(&c_t), "matmul_t");
    }

    #[test]
    #[should_panic(expected = "matmul: incompatible shapes 2x3 vs 4x2")]
    fn matmul_names_both_shapes_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "t_matmul: incompatible shapes 3x2 vs 4x5")]
    fn t_matmul_names_both_shapes_on_mismatch() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 5);
        let _ = a.t_matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_t: incompatible shapes 3x2 vs 4x5")]
    fn matmul_t_names_both_shapes_on_mismatch() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 5);
        let _ = a.matmul_t(&b);
    }

    #[test]
    fn from_rows_builds_and_col_sums_accumulate() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!((m.rows, m.cols), (3, 2));
        let mut sums = vec![0.5, 0.5];
        m.add_col_sums(&mut sums);
        assert_eq!(sums, vec![9.5, 12.5]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0; 7];
        axpy(2.0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize (p - 3)^2
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn step_scaled_equals_step_on_scaled_gradients() {
        let mut p1 = vec![1.0, -2.0, 0.5];
        let mut p2 = p1.clone();
        let mut o1 = Adam::new(3, 0.05);
        let mut o2 = Adam::new(3, 0.05);
        let g = vec![4.0, -6.0, 8.0];
        for _ in 0..20 {
            o1.step_scaled(&mut p1, &g, 0.25);
            let scaled: Vec<f64> = g.iter().map(|v| v * 0.25).collect();
            o2.step(&mut p2, &scaled);
        }
        assert_eq!(p1, p2);
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
