//! A minimal dense linear-algebra kernel: row-major matrices and the
//! handful of operations the neural models need.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data (`rows * cols` entries).
    pub data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.get(r, j);
                }
            }
        }
        out
    }

    /// `self * other^T`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += self.get(r, k) * other.get(j, k);
                }
                out.data[r * other.rows + j] = acc;
            }
        }
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Softmax in place (numerically stabilized).
pub fn softmax_inplace(v: &mut [f64]) {
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Index of the maximum element (first on ties).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// The Adam optimizer state for one parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
    /// Learning rate.
    pub lr: f64,
}

impl Adam {
    /// Creates an optimizer for `n` parameters.
    pub fn new(n: usize, lr: f64) -> Adam {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
            lr,
        }
    }

    /// Applies one update step of gradients `g` to parameters `p`.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree with construction.
    pub fn step(&mut self, p: &mut [f64], g: &[f64]) {
        assert_eq!(p.len(), self.m.len());
        assert_eq!(g.len(), self.m.len());
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t as i32);
        let bc2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..p.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * g[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * g[i] * g[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            p[i] -= self.lr * mhat / (vhat.sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![10.0, 13.0, 28.0, 40.0]);
    }

    #[test]
    fn transpose_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(3, 4, |r, c| (r * c) as f64 + 1.0);
        let a_t = Matrix::from_fn(2, 3, |r, c| a.get(c, r));
        assert_eq!(a.t_matmul(&b), a_t.matmul(&b));

        let c = Matrix::from_fn(5, 2, |r, col| (r * 2 + col) as f64);
        let c_t = Matrix::from_fn(2, 5, |r, col| c.get(col, r));
        assert_eq!(a.matmul_t(&c), a.matmul(&c_t));
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut v = vec![1000.0, 1001.0];
        softmax_inplace(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize (p - 3)^2
        let mut p = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - 3.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p = {}", p[0]);
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
