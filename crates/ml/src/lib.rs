//! # yali-ml
//!
//! From-scratch stochastic classification models for the yali reproduction
//! of "A Game-Based Framework to Compare Program Classifiers and Evaders"
//! (CGO 2023) — the paper's Figure 3 model column:
//!
//! | model | implementation |
//! |-------|----------------|
//! | `rf` | [`forest::RandomForest`] — bagged CART trees |
//! | `svm` | [`linear::LinearModel`] with hinge loss (one-vs-rest) |
//! | `knn` | [`knn::Knn`] |
//! | `lr` | [`linear::LinearModel`] with softmax loss |
//! | `mlp` | [`mlp::Mlp`] — one hidden layer of 100 ReLU units |
//! | `cnn` | [`cnn::Cnn`] — Zhang et al.'s array-input network |
//! | `dgcnn` | [`dgcnn::Dgcnn`] — graph convolutions + SortPooling |
//!
//! [`ModelKind`] + [`VectorClassifier`] give the six array-input models a
//! single train/predict interface; the DGCNN has its own graph API.
//!
//! # Example
//!
//! ```
//! use yali_ml::{ModelKind, VectorClassifier, TrainConfig};
//! let x = vec![vec![0.0], vec![0.1], vec![5.0], vec![5.1]];
//! let y = vec![0, 0, 1, 1];
//! let mut clf = VectorClassifier::fit(ModelKind::Rf, &x, &y, 2, &TrainConfig::default());
//! assert_eq!(clf.predict(&[0.05]), 0);
//! assert_eq!(clf.predict(&[4.9]), 1);
//! ```

#![warn(missing_docs)]

pub mod cnn;
pub mod dgcnn;
pub mod forest;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod lowp;
pub mod metrics;
pub mod mlp;
pub mod nn;
pub mod serialize;
pub mod tree;

pub use cnn::{Cnn, CnnConfig};
pub use dgcnn::{Dgcnn, DgcnnConfig, GraphSample};
pub use forest::{ForestConfig, RandomForest};
pub use knn::Knn;
pub use linalg::{active_kernel, GemmKernel, Matrix, Matrix32};
pub use linear::{LinearConfig, LinearLoss, LinearModel};
pub use lowp::{F32Classifier, Int8Classifier};
pub use metrics::{accuracy, confusion, macro_f1};
pub use mlp::{Mlp, MlpConfig};

/// One of the six array-input models (Figure 3's model column minus the
/// graph-only dgcnn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Random forest.
    Rf,
    /// Linear support-vector machine (one-vs-rest hinge).
    Svm,
    /// k-nearest neighbours.
    Knn,
    /// Multinomial logistic regression.
    Lr,
    /// Multi-layer perceptron (100 hidden ReLU units).
    Mlp,
    /// Zhang et al.'s CNN for array inputs.
    Cnn,
}

impl ModelKind {
    /// All six models, in the paper's usual display order.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Rf,
        ModelKind::Svm,
        ModelKind::Knn,
        ModelKind::Lr,
        ModelKind::Mlp,
        ModelKind::Cnn,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Rf => "rf",
            ModelKind::Svm => "svm",
            ModelKind::Knn => "knn",
            ModelKind::Lr => "lr",
            ModelKind::Mlp => "mlp",
            ModelKind::Cnn => "cnn",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Samples per chunk in the batched inference dispatch. The decomposition
/// of a batch into chunks is a function of the batch length alone — never
/// of the thread count — so `predict_batch` returns identical bits at any
/// `YALI_THREADS`.
pub const INFER_CHUNK: usize = 32;

/// Fixed-size chunk dispatch for batched inference: splits `n` items into
/// [`INFER_CHUNK`]-sized chunks, maps every chunk with `f(lo, hi)` on the
/// `yali-par` worker pool, and concatenates the per-chunk results in index
/// order. `f` must depend only on the chunk bounds, which makes the output
/// independent of `threads`.
pub(crate) fn chunked_map<R: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize, usize) -> Vec<R> + Sync,
) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let bounds: Vec<(usize, usize)> = (0..n)
        .step_by(INFER_CHUNK)
        .map(|lo| (lo, (lo + INFER_CHUNK).min(n)))
        .collect();
    yali_obs::count!("ml.infer.batches", 1);
    yali_obs::count!("ml.infer.samples", n as u64);
    // Per-chunk latency is timed only when observability is on; the chunk
    // decomposition itself never changes, so results stay bit-identical.
    let timed = |lo: usize, hi: usize| {
        if yali_obs::enabled() {
            let t0 = std::time::Instant::now();
            let out = f(lo, hi);
            yali_obs::record!("ml.infer.chunk_ns", t0.elapsed().as_nanos() as u64);
            out
        } else {
            f(lo, hi)
        }
    };
    if bounds.len() == 1 || threads <= 1 {
        return bounds.into_iter().flat_map(|(lo, hi)| timed(lo, hi)).collect();
    }
    yali_par::par_map_with(threads, &bounds, |_, &(lo, hi)| timed(lo, hi))
        .into_iter()
        .flatten()
        .collect()
}

/// Scale/seed knobs shared by every model's trainer. Hashable so the
/// experiment engine's trained-model store can key on it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrainConfig {
    /// RNG seed.
    pub seed: u64,
    /// Epoch count for the gradient-trained models.
    pub epochs: usize,
    /// Trees in the forest.
    pub n_trees: usize,
    /// Neighbours for knn.
    pub k: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            seed: 0,
            epochs: 40,
            n_trees: 40,
            k: 5,
        }
    }
}

/// A trained array-input classifier of any [`ModelKind`].
pub enum VectorClassifier {
    /// Random forest.
    Rf(RandomForest),
    /// Linear model (svm or lr).
    Linear(LinearModel),
    /// k-nearest neighbours.
    Knn(Knn),
    /// Multi-layer perceptron.
    Mlp(Mlp),
    /// Convolutional network.
    Cnn(Cnn),
}

impl VectorClassifier {
    /// Trains the chosen model on `(x, y)` with labels in `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(
        kind: ModelKind,
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        config: &TrainConfig,
    ) -> VectorClassifier {
        match kind {
            ModelKind::Rf => VectorClassifier::Rf(RandomForest::fit(
                x,
                y,
                n_classes,
                &ForestConfig {
                    n_trees: config.n_trees,
                    seed: config.seed,
                    ..Default::default()
                },
            )),
            ModelKind::Svm => VectorClassifier::Linear(LinearModel::fit(
                x,
                y,
                n_classes,
                LinearLoss::Hinge,
                &LinearConfig {
                    epochs: config.epochs,
                    seed: config.seed,
                    ..Default::default()
                },
            )),
            ModelKind::Lr => VectorClassifier::Linear(LinearModel::fit(
                x,
                y,
                n_classes,
                LinearLoss::Softmax,
                &LinearConfig {
                    epochs: config.epochs,
                    seed: config.seed,
                    ..Default::default()
                },
            )),
            ModelKind::Knn => VectorClassifier::Knn(Knn::fit(x, y, n_classes, config.k)),
            ModelKind::Mlp => VectorClassifier::Mlp(Mlp::fit(
                x,
                y,
                n_classes,
                &MlpConfig {
                    epochs: config.epochs,
                    seed: config.seed,
                    ..Default::default()
                },
            )),
            ModelKind::Cnn => VectorClassifier::Cnn(Cnn::fit(
                x,
                y,
                n_classes,
                &CnnConfig {
                    epochs: config.epochs,
                    seed: config.seed,
                    ..Default::default()
                },
            )),
        }
    }

    /// Predicts the class of one sample. Pure: a trained classifier can
    /// serve predictions from many threads at once. Every model routes
    /// this through its batched kernel on a one-sample chunk, so a
    /// [`VectorClassifier::predict_batch`] call and a loop of `predict`
    /// produce identical bits.
    pub fn predict(&self, x: &[f64]) -> usize {
        match self {
            VectorClassifier::Rf(m) => m.predict(x),
            VectorClassifier::Linear(m) => m.predict(x),
            VectorClassifier::Knn(m) => m.predict(x),
            VectorClassifier::Mlp(m) => m.predict(x),
            VectorClassifier::Cnn(m) => m.predict(x),
        }
    }

    /// Labels for one chunk of samples through the model's batched kernel.
    fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        match self {
            VectorClassifier::Rf(m) => m.predict_chunk(xs),
            VectorClassifier::Linear(m) => m.predict_chunk(xs),
            VectorClassifier::Knn(m) => m.predict_chunk(xs),
            VectorClassifier::Mlp(m) => m.predict_chunk(xs),
            VectorClassifier::Cnn(m) => m.predict_chunk(xs),
        }
    }

    /// Per-class probabilities for one chunk of samples.
    fn proba_chunk(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        match self {
            VectorClassifier::Rf(m) => m.proba_chunk(xs),
            VectorClassifier::Linear(m) => m.proba_chunk(xs),
            VectorClassifier::Knn(m) => m.proba_chunk(xs),
            VectorClassifier::Mlp(m) => m.proba_chunk(xs),
            VectorClassifier::Cnn(m) => m.proba_chunk(xs),
        }
    }

    /// Predicts a whole batch through the GEMM-backed batched kernels:
    /// dense models forward whole chunk matrices, knn forms a
    /// query×train distance matrix, and the forest votes tree-by-tree —
    /// all in fixed [`INFER_CHUNK`]-sample chunks dispatched on the
    /// `yali-par` worker pool and merged in index order. The returned
    /// labels are identical to a per-sample [`VectorClassifier::predict`]
    /// loop at any `YALI_THREADS`.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        self.predict_batch_with_threads(xs, yali_par::worker_count())
    }

    /// [`VectorClassifier::predict_batch`] with an explicit worker count;
    /// the chunk decomposition is fixed, so results do not depend on
    /// `threads`.
    pub fn predict_batch_with_threads(&self, xs: &[Vec<f64>], threads: usize) -> Vec<usize> {
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        self.predict_batch_refs(&refs, threads)
    }

    /// [`VectorClassifier::predict_batch`] over borrowed rows: the entry
    /// point for callers (the `yali-serve` batcher) whose queries arrive
    /// scattered across owners and must be batched without copying each
    /// feature vector into a fresh `Vec<Vec<f64>>`. Same contract: fixed
    /// [`INFER_CHUNK`]-sized chunks on the worker pool, merged in index
    /// order, labels bit-identical to a per-sample `predict` loop.
    pub fn predict_batch_refs(&self, xs: &[&[f64]], threads: usize) -> Vec<usize> {
        chunked_map(xs.len(), threads, |lo, hi| self.predict_chunk(&xs[lo..hi]))
    }

    /// Per-class probabilities for a whole batch, where the model defines
    /// them: vote shares for rf and knn, softmax scores for lr, mlp and
    /// cnn. Returns `None` for the hinge-loss svm — its margins are not
    /// probabilities. Batched and chunk-dispatched like
    /// [`VectorClassifier::predict_batch`].
    pub fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
        if matches!(self, VectorClassifier::Linear(m) if m.loss() == LinearLoss::Hinge) {
            return None;
        }
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        Some(chunked_map(refs.len(), yali_par::worker_count(), |lo, hi| {
            self.proba_chunk(&refs[lo..hi])
        }))
    }

    /// Predicts a whole test set (batched; see
    /// [`VectorClassifier::predict_batch`]).
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        self.predict_batch(xs)
    }

    /// Approximate resident bytes of the fitted model (Figure 7's memory
    /// comparison).
    pub fn memory_bytes(&self) -> usize {
        match self {
            VectorClassifier::Rf(m) => m.memory_bytes(),
            VectorClassifier::Linear(m) => m.memory_bytes(),
            VectorClassifier::Knn(m) => m.memory_bytes(),
            VectorClassifier::Mlp(m) => m.memory_bytes(),
            VectorClassifier::Cnn(m) => m.memory_bytes(),
        }
    }

    /// Serializes the trained classifier for the experiment engine's
    /// model store. Blobs are prefixed with [`serialize::CODEC_VERSION`];
    /// weights round-trip via [`f64::to_bits`], so a deserialized model
    /// classifies byte-identically to the original.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = serialize::ByteWriter::new();
        w.put_u8(serialize::CODEC_VERSION);
        match self {
            VectorClassifier::Rf(m) => {
                w.put_u8(1);
                m.write(&mut w);
            }
            VectorClassifier::Linear(m) => {
                w.put_u8(2);
                m.write(&mut w);
            }
            VectorClassifier::Knn(m) => {
                w.put_u8(3);
                m.write(&mut w);
            }
            VectorClassifier::Mlp(m) => {
                w.put_u8(4);
                m.write(&mut w);
            }
            VectorClassifier::Cnn(m) => {
                w.put_u8(5);
                m.write(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Deserializes a classifier written by [`VectorClassifier::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed blob (a model-store bug, not an input error).
    pub fn from_bytes(bytes: &[u8]) -> VectorClassifier {
        let mut r = serialize::ByteReader::new(bytes);
        let version = r.get_u8();
        assert_eq!(
            version,
            serialize::CODEC_VERSION,
            "model blob codec version {version} does not match this binary"
        );
        let out = match r.get_u8() {
            1 => VectorClassifier::Rf(RandomForest::read(&mut r)),
            2 => VectorClassifier::Linear(LinearModel::read(&mut r)),
            3 => VectorClassifier::Knn(Knn::read(&mut r)),
            4 => VectorClassifier::Mlp(Mlp::read(&mut r)),
            5 => VectorClassifier::Cnn(Cnn::read(&mut r)),
            tag => panic!("unknown classifier tag {tag} in model blob"),
        };
        assert!(r.is_done(), "trailing bytes in model blob");
        out
    }
}

/// Splits `(x, y)` into train/test by taking every sample whose index mod
/// `denom` is below `num` for training — a deterministic, class-stratified
/// 80/20-style split when samples are grouped by class.
pub fn train_test_split<T: Clone>(
    x: &[T],
    y: &[usize],
    train_fraction: f64,
    seed: u64,
) -> (Vec<T>, Vec<usize>, Vec<T>, Vec<usize>) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    // Stratify per class.
    let mut by_class: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &yi) in y.iter().enumerate() {
        by_class.entry(yi).or_default().push(i);
    }
    let (mut xtr, mut ytr, mut xte, mut yte) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for (_, mut idx) in by_class {
        idx.shuffle(&mut rng);
        let cut = ((idx.len() as f64) * train_fraction).round() as usize;
        for (pos, &i) in idx.iter().enumerate() {
            if pos < cut {
                xtr.push(x[i].clone());
                ytr.push(y[i]);
            } else {
                xte.push(x[i].clone());
                yte.push(y[i]);
            }
        }
    }
    (xtr, ytr, xte, yte)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, classes: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..classes {
            for k in 0..n_per {
                let j = (k as f64 * 0.77).fract() - 0.5;
                x.push(vec![c as f64 * 6.0 + j, (c * c) as f64 + j]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn all_six_models_learn_blobs() {
        let (x, y) = blobs(24, 3);
        for kind in ModelKind::ALL {
            let clf = VectorClassifier::fit(kind, &x, &y, 3, &TrainConfig::default());
            let pred = clf.predict_all(&x);
            let acc = accuracy(&pred, &y);
            assert!(acc > 0.9, "{kind} accuracy {acc}");
            assert!(clf.memory_bytes() > 0, "{kind} memory");
        }
    }

    #[test]
    fn split_is_stratified() {
        let (x, y) = blobs(10, 4);
        let (xtr, ytr, xte, yte) = train_test_split(&x, &y, 0.8, 1);
        assert_eq!(xtr.len(), 32);
        assert_eq!(xte.len(), 8);
        for c in 0..4 {
            assert_eq!(ytr.iter().filter(|&&v| v == c).count(), 8);
            assert_eq!(yte.iter().filter(|&&v| v == c).count(), 2);
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let (x, y) = blobs(10, 2);
        let a = train_test_split(&x, &y, 0.8, 7);
        let b = train_test_split(&x, &y, 0.8, 7);
        assert_eq!(a.1, b.1);
        assert_eq!(a.3, b.3);
    }

    #[test]
    fn serialization_round_trips_every_model_kind() {
        let (x, y) = blobs(24, 3);
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        for kind in ModelKind::ALL {
            let clf = VectorClassifier::fit(kind, &x, &y, 3, &cfg);
            let bytes = clf.to_bytes();
            let restored = VectorClassifier::from_bytes(&bytes);
            assert_eq!(
                clf.predict_all(&x),
                restored.predict_all(&x),
                "{kind} predictions must survive the round trip"
            );
            assert_eq!(restored.to_bytes(), bytes, "{kind} re-serialization is stable");
        }
    }

    #[test]
    fn model_names() {
        let names: Vec<&str> = ModelKind::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["rf", "svm", "knn", "lr", "mlp", "cnn"]);
    }
}
