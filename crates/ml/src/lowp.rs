//! Reduced-precision inference classifiers: `f32` and int8 twins of the
//! GEMM-backed models (lr, svm, mlp).
//!
//! Training always stays `f64` — ModelCache keys and the determinism
//! proptests depend on it. A [`F32Classifier`] or [`Int8Classifier`] is
//! built *from* a trained [`VectorClassifier`] by narrowing its weights
//! once:
//!
//! * **f32** — weights and activations stored and multiplied in `f32`
//!   through the dispatched [`Matrix32`] kernels: half the memory
//!   traffic and twice the SIMD lanes of the f64 path.
//! * **int8** — weights quantized once per model (per-row absmax codes,
//!   [`crate::linalg::quant`]); activations quantized dynamically per
//!   batch row; products accumulate exactly in `i32` and dequantize to
//!   `f64` for bias, ReLU and argmax. A quarter of the f32 traffic
//!   again, at the price of quantization noise.
//!
//! The int8 path is *opt-in* and gated: the property tests in this
//! module train models on generated corpora and require label agreement
//! with the f64 verdicts of at least 99.5%, and `BENCH_infer.json`
//! re-checks that agreement on its corpus at bench time. Only the
//! models whose inference is a pure dense pipeline get a reduced
//! twin — rf and knn have no weight matrix to narrow, and the cnn's
//! im2col path stays f64 — so [`F32Classifier::from_model`] returns
//! `None` for those.
//!
//! Both classifiers reuse the same fixed [`crate::INFER_CHUNK`]
//! decomposition as the f64 batch engine, so their labels are identical
//! at any `YALI_THREADS`.

use crate::linalg::quant::{matmul_t_dequant, QuantMatrix};
use crate::linalg::{argmax, Matrix, Matrix32};
use crate::linear::Scaler;
use crate::serialize::{ByteReader, ByteWriter, CODEC_VERSION};
use crate::{chunked_map, VectorClassifier};

const TAG_LINEAR: u8 = 1;
const TAG_MLP: u8 = 2;

/// One dense stage of a reduced-precision pipeline in `f32`.
struct DenseF32 {
    w: Matrix32,
    b: Vec<f32>,
}

/// One dense stage of a reduced-precision pipeline in int8.
struct DenseI8 {
    w: QuantMatrix,
    b: Vec<f64>,
}

enum F32Model {
    /// One dense stage, argmax over raw scores (lr / svm).
    Linear(DenseF32),
    /// Dense stages with ReLU between them (mlp).
    Mlp(Vec<DenseF32>),
}

enum Int8Model {
    Linear(DenseI8),
    Mlp(Vec<DenseI8>),
}

/// Collects the dense stages of a trained model as `(weights, bias)`
/// pairs in forward order — `None` when the model has no pure dense
/// pipeline to narrow.
#[allow(clippy::type_complexity)]
fn dense_stages(model: &VectorClassifier) -> Option<(&Scaler, Vec<(&Matrix, &[f64])>, bool)> {
    match model {
        VectorClassifier::Linear(m) => {
            let (w, b, scaler) = m.lowp_parts();
            Some((scaler, vec![(w, b)], false))
        }
        VectorClassifier::Mlp(m) => {
            let (scaler, net) = m.lowp_parts();
            let stages: Vec<(&Matrix, &[f64])> =
                net.layers.iter().filter_map(|l| l.dense_params()).collect();
            Some((scaler, stages, true))
        }
        _ => None,
    }
}

fn to_f32_vec(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

fn argmax32(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

fn put_quant(w: &mut ByteWriter, q: &QuantMatrix) {
    let (rows, cols, codes, scales) = q.parts();
    w.put_usize(rows);
    w.put_usize(cols);
    w.put_i8s(codes);
    w.put_f64s(scales);
}

fn get_quant(r: &mut ByteReader) -> QuantMatrix {
    let rows = r.get_usize();
    let cols = r.get_usize();
    let codes = r.get_i8s();
    let scales = r.get_f64s();
    QuantMatrix::from_parts(rows, cols, codes, scales)
}

/// Standardizes one chunk of queries into an `f32` matrix.
fn scaled32(scaler: &Scaler, xs: &[&[f64]]) -> Matrix32 {
    let cols = xs.first().map_or(0, |r| r.len());
    let mut m = Matrix32::zeros(xs.len(), cols);
    for (r, x) in xs.iter().enumerate() {
        let scaled = scaler.transform(x);
        for (dst, &v) in m.row_mut(r).iter_mut().zip(&scaled) {
            *dst = v as f32;
        }
    }
    m
}

/// Standardizes one chunk of queries into an `f64` matrix.
fn scaled64(scaler: &Scaler, xs: &[&[f64]]) -> Matrix {
    let rows: Vec<Vec<f64>> = xs.iter().map(|x| scaler.transform(x)).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    Matrix::from_rows(&refs)
}

/// An `f32` inference twin of a trained lr/svm/mlp: same scaler, weights
/// narrowed once, forward passes through the dispatched `f32` kernels.
pub struct F32Classifier {
    scaler: Scaler,
    model: F32Model,
}

impl F32Classifier {
    /// Narrows a trained model, or `None` when the model has no dense
    /// pipeline to narrow (rf, knn, cnn).
    pub fn from_model(model: &VectorClassifier) -> Option<F32Classifier> {
        let (scaler, stages, is_mlp) = dense_stages(model)?;
        let narrowed: Vec<DenseF32> = stages
            .into_iter()
            .map(|(w, b)| DenseF32 { w: Matrix32::from_f64(w), b: to_f32_vec(b) })
            .collect();
        let model = if is_mlp {
            F32Model::Mlp(narrowed)
        } else {
            let mut it = narrowed.into_iter();
            F32Model::Linear(it.next().expect("linear model has one dense stage"))
        };
        Some(F32Classifier { scaler: scaler.clone(), model })
    }

    /// Labels for one chunk of queries.
    fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        if xs.is_empty() {
            return Vec::new();
        }
        let x = scaled32(&self.scaler, xs);
        let scores = match &self.model {
            F32Model::Linear(d) => x.matmul_t_bias(&d.w, &d.b),
            F32Model::Mlp(stages) => {
                let mut cur = x;
                for (i, d) in stages.iter().enumerate() {
                    cur = cur.matmul_t_bias(&d.w, &d.b);
                    if i + 1 < stages.len() {
                        cur.map_inplace(|v| v.max(0.0));
                    }
                }
                cur
            }
        };
        (0..scores.rows).map(|r| argmax32(scores.row(r))).collect()
    }

    /// Labels for a whole batch, chunk-dispatched like
    /// [`VectorClassifier::predict_batch`] (identical at any thread
    /// count).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        self.predict_batch_with_threads(xs, yali_par::worker_count())
    }

    /// [`F32Classifier::predict_batch`] with an explicit worker count.
    pub fn predict_batch_with_threads(&self, xs: &[Vec<f64>], threads: usize) -> Vec<usize> {
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        chunked_map(refs.len(), threads, |lo, hi| self.predict_chunk(&refs[lo..hi]))
    }

    /// Approximate resident bytes (weights + biases).
    pub fn memory_bytes(&self) -> usize {
        let stages: &[DenseF32] = match &self.model {
            F32Model::Linear(d) => std::slice::from_ref(d),
            F32Model::Mlp(v) => v,
        };
        stages.iter().map(|d| d.w.memory_bytes() + d.b.len() * 4).sum()
    }

    /// Serializes the classifier (codec-versioned, `f32` bit patterns).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(CODEC_VERSION);
        let stages: &[DenseF32] = match &self.model {
            F32Model::Linear(d) => {
                w.put_u8(TAG_LINEAR);
                std::slice::from_ref(d)
            }
            F32Model::Mlp(v) => {
                w.put_u8(TAG_MLP);
                v
            }
        };
        self.scaler.write(&mut w);
        w.put_usize(stages.len());
        for d in stages {
            w.put_matrix32(&d.w);
            w.put_f32s(&d.b);
        }
        w.into_bytes()
    }

    /// Deserializes a classifier written by [`F32Classifier::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed blob or codec-version mismatch.
    pub fn from_bytes(bytes: &[u8]) -> F32Classifier {
        let mut r = ByteReader::new(bytes);
        let version = r.get_u8();
        assert_eq!(version, CODEC_VERSION, "f32 blob codec version {version} unsupported");
        let tag = r.get_u8();
        let scaler = Scaler::read(&mut r);
        let n = r.get_usize();
        let mut stages: Vec<DenseF32> = (0..n)
            .map(|_| DenseF32 { w: r.get_matrix32(), b: r.get_f32s() })
            .collect();
        assert!(r.is_done(), "trailing bytes in f32 model blob");
        let model = match tag {
            TAG_LINEAR => F32Model::Linear(stages.remove(0)),
            TAG_MLP => F32Model::Mlp(stages),
            tag => panic!("unknown f32 classifier tag {tag}"),
        };
        F32Classifier { scaler, model }
    }
}

/// An int8 inference twin of a trained lr/svm/mlp: weights quantized
/// once per row, activations quantized per batch row, exact `i32`
/// accumulation, dequantized `f64` bias/ReLU/argmax.
pub struct Int8Classifier {
    scaler: Scaler,
    model: Int8Model,
}

impl Int8Classifier {
    /// Quantizes a trained model, or `None` when the model has no dense
    /// pipeline to quantize (rf, knn, cnn).
    pub fn from_model(model: &VectorClassifier) -> Option<Int8Classifier> {
        let (scaler, stages, is_mlp) = dense_stages(model)?;
        let quantized: Vec<DenseI8> = stages
            .into_iter()
            .map(|(w, b)| DenseI8 { w: QuantMatrix::from_f64(w), b: b.to_vec() })
            .collect();
        let model = if is_mlp {
            Int8Model::Mlp(quantized)
        } else {
            let mut it = quantized.into_iter();
            Int8Model::Linear(it.next().expect("linear model has one dense stage"))
        };
        Some(Int8Classifier { scaler: scaler.clone(), model })
    }

    /// Labels for one chunk of queries.
    fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        if xs.is_empty() {
            return Vec::new();
        }
        let x = scaled64(&self.scaler, xs);
        let scores = match &self.model {
            Int8Model::Linear(d) => matmul_t_dequant(&QuantMatrix::from_f64(&x), &d.w, &d.b),
            Int8Model::Mlp(stages) => {
                let mut cur = x;
                for (i, d) in stages.iter().enumerate() {
                    cur = matmul_t_dequant(&QuantMatrix::from_f64(&cur), &d.w, &d.b);
                    if i + 1 < stages.len() {
                        cur.map_inplace(|v| v.max(0.0));
                    }
                }
                cur
            }
        };
        (0..scores.rows).map(|r| argmax(scores.row(r))).collect()
    }

    /// Labels for a whole batch, chunk-dispatched like
    /// [`VectorClassifier::predict_batch`] (identical at any thread
    /// count).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        self.predict_batch_with_threads(xs, yali_par::worker_count())
    }

    /// [`Int8Classifier::predict_batch`] with an explicit worker count.
    pub fn predict_batch_with_threads(&self, xs: &[Vec<f64>], threads: usize) -> Vec<usize> {
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        chunked_map(refs.len(), threads, |lo, hi| self.predict_chunk(&refs[lo..hi]))
    }

    /// Approximate resident bytes (codes + scales + biases).
    pub fn memory_bytes(&self) -> usize {
        let stages: &[DenseI8] = match &self.model {
            Int8Model::Linear(d) => std::slice::from_ref(d),
            Int8Model::Mlp(v) => v,
        };
        stages.iter().map(|d| d.w.memory_bytes() + d.b.len() * 8).sum()
    }

    /// Serializes the classifier (codec-versioned, i8 codes + f64
    /// scales).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(CODEC_VERSION);
        let stages: &[DenseI8] = match &self.model {
            Int8Model::Linear(d) => {
                w.put_u8(TAG_LINEAR);
                std::slice::from_ref(d)
            }
            Int8Model::Mlp(v) => {
                w.put_u8(TAG_MLP);
                v
            }
        };
        self.scaler.write(&mut w);
        w.put_usize(stages.len());
        for d in stages {
            put_quant(&mut w, &d.w);
            w.put_f64s(&d.b);
        }
        w.into_bytes()
    }

    /// Deserializes a classifier written by [`Int8Classifier::to_bytes`].
    ///
    /// # Panics
    ///
    /// Panics on a malformed blob or codec-version mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Int8Classifier {
        let mut r = ByteReader::new(bytes);
        let version = r.get_u8();
        assert_eq!(version, CODEC_VERSION, "int8 blob codec version {version} unsupported");
        let tag = r.get_u8();
        let scaler = Scaler::read(&mut r);
        let n = r.get_usize();
        let mut stages: Vec<DenseI8> = (0..n)
            .map(|_| DenseI8 { w: get_quant(&mut r), b: r.get_f64s() })
            .collect();
        assert!(r.is_done(), "trailing bytes in int8 model blob");
        let model = match tag {
            TAG_LINEAR => Int8Model::Linear(stages.remove(0)),
            TAG_MLP => Int8Model::Mlp(stages),
            tag => panic!("unknown int8 classifier tag {tag}"),
        };
        Int8Classifier { scaler, model }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, TrainConfig};
    use proptest::prelude::*;

    /// A labeled blob corpus: training points plus jittered queries.
    #[allow(clippy::type_complexity)]
    fn corpus(
        seed: u64,
        classes: usize,
        per_class: usize,
        spread: f64,
    ) -> (Vec<Vec<f64>>, Vec<usize>, Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut qx = Vec::new();
        let mut qy = Vec::new();
        for c in 0..classes {
            for k in 0..per_class {
                let j = ((seed.wrapping_mul(31).wrapping_add((c * per_class + k) as u64) % 97)
                    as f64
                    / 97.0
                    - 0.5)
                    * spread;
                let base = vec![
                    c as f64 * 6.0 + j,
                    -(c as f64) * 4.0 + j * 0.5,
                    (c * c) as f64 + j * 0.25,
                    j,
                ];
                x.push(base.clone());
                y.push(c);
                // Two jittered queries per training point.
                for q in 0..2 {
                    let mut v = base.clone();
                    v[q] += j * 0.3 + 0.05;
                    qx.push(v);
                    qy.push(c);
                }
            }
        }
        (x, y, qx, qy)
    }

    fn agreement(a: &[usize], b: &[usize]) -> f64 {
        assert_eq!(a.len(), b.len());
        if a.is_empty() {
            return 1.0;
        }
        a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
    }

    const REDUCIBLE: [ModelKind; 3] = [ModelKind::Lr, ModelKind::Svm, ModelKind::Mlp];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        // The int8 accuracy-delta gate: on generated corpora, quantized
        // verdicts agree with the f64 verdicts on at least 99.5% of
        // queries, for every model with an int8 twin. The f32 twin is
        // held to the same bar.
        #[test]
        fn reduced_precision_agrees_with_f64_verdicts(
            seed in 0u64..1000,
            spread in 0.5f64..2.0,
        ) {
            let (x, y, qx, _) = corpus(seed, 3, 35, spread);
            prop_assert!(qx.len() >= 200, "corpus must exercise many queries");
            let cfg = TrainConfig { epochs: 8, seed, ..Default::default() };
            for kind in REDUCIBLE {
                let clf = VectorClassifier::fit(kind, &x, &y, 3, &cfg);
                let want = clf.predict_batch(&qx);

                let q8 = Int8Classifier::from_model(&clf).expect("int8 twin");
                let a8 = agreement(&q8.predict_batch(&qx), &want);
                prop_assert!(a8 >= 0.995, "{kind} int8 agreement {a8}");

                let f32c = F32Classifier::from_model(&clf).expect("f32 twin");
                let a32 = agreement(&f32c.predict_batch(&qx), &want);
                prop_assert!(a32 >= 0.995, "{kind} f32 agreement {a32}");
            }
        }
    }

    #[test]
    fn reduced_twins_round_trip_and_shrink() {
        let (x, y, qx, _) = corpus(3, 3, 16, 1.0);
        let cfg = TrainConfig { epochs: 6, seed: 3, ..Default::default() };
        for kind in REDUCIBLE {
            let clf = VectorClassifier::fit(kind, &x, &y, 3, &cfg);

            let f = F32Classifier::from_model(&clf).unwrap();
            let f2 = F32Classifier::from_bytes(&f.to_bytes());
            assert_eq!(f.predict_batch(&qx), f2.predict_batch(&qx), "{kind} f32 round trip");
            assert_eq!(f2.to_bytes(), f.to_bytes(), "{kind} f32 re-serialization");

            let q = Int8Classifier::from_model(&clf).unwrap();
            let q2 = Int8Classifier::from_bytes(&q.to_bytes());
            assert_eq!(q.predict_batch(&qx), q2.predict_batch(&qx), "{kind} int8 round trip");
            assert_eq!(q2.to_bytes(), q.to_bytes(), "{kind} int8 re-serialization");

            // Narrower storage really is narrower: int8 <= f32 (per-row
            // f64 scales can make them tie on tiny weight matrices, as
            // for the 3x4 linear models here), and f32 is well under the
            // f64 model (which also counts its scaler and optimizer
            // state). The mlp's 100-unit hidden layer is big enough for
            // the int8 saving to show strictly.
            assert!(
                q.memory_bytes() <= f.memory_bytes(),
                "{kind}: int8 {} !<= f32 {}",
                q.memory_bytes(),
                f.memory_bytes()
            );
            if kind == ModelKind::Mlp {
                assert!(
                    q.memory_bytes() < f.memory_bytes(),
                    "mlp: int8 {} !< f32 {}",
                    q.memory_bytes(),
                    f.memory_bytes()
                );
            }
            assert!(
                f.memory_bytes() < clf.memory_bytes(),
                "{kind}: f32 {} !< f64 {}",
                f.memory_bytes(),
                clf.memory_bytes()
            );
        }
    }

    #[test]
    fn batch_labels_do_not_depend_on_threads() {
        let (x, y, qx, _) = corpus(5, 3, 16, 1.2);
        let cfg = TrainConfig { epochs: 6, seed: 5, ..Default::default() };
        let clf = VectorClassifier::fit(ModelKind::Mlp, &x, &y, 3, &cfg);
        let f = F32Classifier::from_model(&clf).unwrap();
        let q = Int8Classifier::from_model(&clf).unwrap();
        assert_eq!(
            f.predict_batch_with_threads(&qx, 1),
            f.predict_batch_with_threads(&qx, 4)
        );
        assert_eq!(
            q.predict_batch_with_threads(&qx, 1),
            q.predict_batch_with_threads(&qx, 4)
        );
    }

    #[test]
    fn models_without_a_dense_pipeline_have_no_twin() {
        let (x, y, _, _) = corpus(1, 2, 10, 1.0);
        let cfg = TrainConfig { epochs: 2, n_trees: 4, ..Default::default() };
        for kind in [ModelKind::Rf, ModelKind::Knn, ModelKind::Cnn] {
            let clf = VectorClassifier::fit(kind, &x, &y, 2, &cfg);
            assert!(F32Classifier::from_model(&clf).is_none(), "{kind}");
            assert!(Int8Classifier::from_model(&clf).is_none(), "{kind}");
        }
    }
}
