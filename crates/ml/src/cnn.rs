//! The `cnn` model: Zhang et al.'s DGCNN with the four graph-convolution
//! layers removed (paper, Section 3.2) — the tail that consumes array
//! embeddings directly:
//!
//! 1-D convolution → max pooling → 1-D convolution → dense → dropout →
//! dense classifier.

use crate::linalg::Matrix;
use crate::linear::Scaler;
use crate::nn::{Conv1d, Dense, Dropout, MaxPool1d, Net, Relu};
use crate::serialize::{ByteReader, ByteWriter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// CNN hyperparameters.
#[derive(Debug, Clone)]
pub struct CnnConfig {
    /// Filters in the first convolution.
    pub conv1_filters: usize,
    /// Kernel width of the first convolution.
    pub conv1_kernel: usize,
    /// Filters in the second convolution.
    pub conv2_filters: usize,
    /// Kernel width of the second convolution.
    pub conv2_kernel: usize,
    /// Width of the dense layer.
    pub dense: usize,
    /// Dropout probability.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CnnConfig {
    fn default() -> Self {
        CnnConfig {
            conv1_filters: 16,
            conv1_kernel: 5,
            conv2_filters: 32,
            conv2_kernel: 5,
            dense: 128,
            dropout: 0.5,
            epochs: 60,
            batch: 32,
            lr: 0.003,
            seed: 0,
        }
    }
}

/// A fitted CNN.
pub struct Cnn {
    net: Net,
    scaler: Scaler,
}

/// Builds the cnn/dgcnn tail for inputs of length `d` (1 channel) and `c`
/// classes; returns the layer stack.
pub(crate) fn build_tail(
    d: usize,
    n_classes: usize,
    config: &CnnConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<Box<dyn crate::nn::Layer>> {
    let k1 = config.conv1_kernel.min(d);
    let conv1 = Conv1d::new(1, d, config.conv1_filters, k1, 1, config.lr, rng);
    let len1 = conv1.output_size() / config.conv1_filters;
    let pool = MaxPool1d::new(config.conv1_filters, len1, 2);
    let len2 = len1.div_ceil(2).max(1);
    let k2 = config.conv2_kernel.min(len2);
    let conv2 = Conv1d::new(config.conv1_filters, len2, config.conv2_filters, k2, 1, config.lr, rng);
    let flat = conv2.output_size();
    vec![
        Box::new(conv1),
        Box::new(Relu),
        Box::new(pool),
        Box::new(conv2),
        Box::new(Relu),
        Box::new(Dense::new(flat, config.dense, config.lr, rng)),
        Box::new(Relu),
        Box::new(Dropout::new(config.dropout, config.seed ^ 0xD0)),
        Box::new(Dense::new(config.dense, n_classes, config.lr, rng)),
    ]
}

impl Cnn {
    /// Trains the CNN on array embeddings.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, config: &CnnConfig) -> Cnn {
        assert!(!x.is_empty(), "empty training set");
        let scaler = Scaler::fit(x);
        let xs: Vec<Vec<f64>> = x.iter().map(|r| scaler.transform(r)).collect();
        let d = xs[0].len();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut net = Net {
            layers: build_tail(d, n_classes, config, &mut rng),
            n_classes,
        };
        net.fit(&xs, y, config.epochs, config.batch, config.seed ^ 0xCE);
        Cnn { net, scaler }
    }

    /// Predicts one sample, through the same batched forward as
    /// [`Cnn::predict_chunk`] on a one-row chunk.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_chunk(&[x])[0]
    }

    /// Standardizes one chunk into a single matrix for the batched net.
    fn scaled(&self, xs: &[&[f64]]) -> Matrix {
        let rows: Vec<Vec<f64>> = xs.iter().map(|x| self.scaler.transform(x)).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    /// Labels for one chunk of samples via the batched GEMM forward.
    pub(crate) fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        if xs.is_empty() {
            return Vec::new();
        }
        self.net.predict_rows(self.scaled(xs))
    }

    /// Softmax probabilities for one chunk of samples.
    pub(crate) fn proba_chunk(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        if xs.is_empty() {
            return Vec::new();
        }
        self.net.proba_rows(self.scaled(xs))
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.net.num_params() * 8 * 3
    }

    /// Serializes the fitted CNN for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        self.net.write(out);
        self.scaler.write(out);
    }

    /// Reads a fitted CNN back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> Cnn {
        Cnn {
            net: Net::read(r),
            scaler: Scaler::read(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_data(d: usize, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..n {
            let mut v = vec![0.0; d];
            let cls = k % 3;
            v[cls * (d / 3) + k % (d / 3)] = 3.0;
            x.push(v);
            y.push(cls);
        }
        (x, y)
    }

    #[test]
    fn learns_spike_positions() {
        let (x, y) = spike_data(24, 90);
        let cfg = CnnConfig {
            epochs: 50,
            ..Default::default()
        };
        let m = Cnn::fit(&x, &y, 3, &cfg);
        let pred: Vec<usize> = x.iter().map(|v| m.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.9);
    }

    #[test]
    fn handles_small_inputs_without_panicking() {
        // Kernel bigger than the input clamps.
        let x = vec![vec![1.0, 2.0, 3.0]; 6];
        let y = vec![0, 1, 0, 1, 0, 1];
        let cfg = CnnConfig {
            epochs: 2,
            ..Default::default()
        };
        let m = Cnn::fit(&x, &y, 2, &cfg);
        let _ = m.predict(&x[0]);
    }

    #[test]
    fn uses_more_memory_than_a_plain_mlp_head() {
        let (x, y) = spike_data(63, 30);
        let cnn = Cnn::fit(&x, &y, 3, &CnnConfig { epochs: 1, ..Default::default() });
        let mlp = crate::mlp::Mlp::fit(
            &x,
            &y,
            3,
            &crate::mlp::MlpConfig { epochs: 1, hidden: 100, ..Default::default() },
        );
        // The paper's Figure 7 shows cnn ≫ mlp in memory.
        assert!(cnn.memory_bytes() > mlp.memory_bytes());
    }
}
