//! CART decision trees (Gini impurity), the base learner of the random
//! forest.

use crate::serialize::{ByteReader, ByteWriter};
use rand::seq::SliceRandom;
use rand::Rng;

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Number of classes seen at fit time.
    pub n_classes: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Tree-growing hyperparameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split (`None` = all; forests pass √d).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 32,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

impl DecisionTree {
    /// Fits a tree on `(x, y)` with labels in `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or rows have inconsistent lengths.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[usize],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut R,
    ) -> DecisionTree {
        assert!(!x.is_empty(), "empty training set");
        assert_eq!(x.len(), y.len());
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
        };
        let idx: Vec<usize> = (0..x.len()).collect();
        tree.grow(x, y, &idx, config, 0, rng);
        tree
    }

    fn grow<R: Rng>(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        idx: &[usize],
        config: &TreeConfig,
        depth: usize,
        rng: &mut R,
    ) -> usize {
        let mut counts = vec![0usize; self.n_classes];
        for &i in idx {
            counts[y[i]] += 1;
        }
        let majority = crate::linalg::argmax(&counts.iter().map(|&c| c as f64).collect::<Vec<_>>());
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= config.max_depth || idx.len() < config.min_samples_split {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        let n_features = x[0].len();
        let mut feats: Vec<usize> = (0..n_features).collect();
        feats.shuffle(rng);
        let take = config.max_features.unwrap_or(n_features).min(n_features);
        let mut best: Option<(f64, usize, f64)> = None; // (gini, feature, threshold)
        for &feat in feats.iter().take(take.max(1)) {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][feat]).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints; subsample when many.
            let step = (vals.len() / 16).max(1);
            for w in vals.windows(2).step_by(step) {
                let thr = (w[0] + w[1]) / 2.0;
                let g = self.split_gini(x, y, idx, feat, thr);
                if best.map(|(bg, _, _)| g < bg).unwrap_or(true) {
                    best = Some((g, feat, thr));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }
        // Reserve this node's slot before growing children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority });
        let left = self.grow(x, y, &li, config, depth + 1, rng);
        let right = self.grow(x, y, &ri, config, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    fn split_gini(&self, x: &[Vec<f64>], y: &[usize], idx: &[usize], feat: usize, thr: f64) -> f64 {
        let mut lc = vec![0usize; self.n_classes];
        let mut rc = vec![0usize; self.n_classes];
        for &i in idx {
            if x[i][feat] <= thr {
                lc[y[i]] += 1;
            } else {
                rc[y[i]] += 1;
            }
        }
        let gini = |c: &[usize]| -> f64 {
            let n: usize = c.iter().sum();
            if n == 0 {
                return 0.0;
            }
            let nf = n as f64;
            1.0 - c.iter().map(|&k| (k as f64 / nf).powi(2)).sum::<f64>()
        };
        let (ln, rn) = (lc.iter().sum::<usize>() as f64, rc.iter().sum::<usize>() as f64);
        let total = ln + rn;
        (ln / total) * gini(&lc) + (rn / total) * gini(&rc)
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        // The root is the first node grown (index 0 when the tree has any
        // node; `grow` reserves the root slot first).
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cur = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (a size/memory proxy).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Serializes the tree for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_usize(self.n_classes);
        out.put_usize(self.nodes.len());
        for node in &self.nodes {
            match node {
                Node::Leaf { class } => {
                    out.put_u8(0);
                    out.put_usize(*class);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.put_u8(1);
                    out.put_usize(*feature);
                    out.put_f64(*threshold);
                    out.put_usize(*left);
                    out.put_usize(*right);
                }
            }
        }
    }

    /// Reads a tree back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> DecisionTree {
        let n_classes = r.get_usize();
        let n = r.get_usize();
        let nodes = (0..n)
            .map(|_| match r.get_u8() {
                0 => Node::Leaf {
                    class: r.get_usize(),
                },
                _ => Node::Split {
                    feature: r.get_usize(),
                    threshold: r.get_f64(),
                    left: r.get_usize(),
                    right: r.get_usize(),
                },
            })
            .collect();
        DecisionTree { nodes, n_classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    x.push(vec![a as f64, b as f64]);
                    y.push((a ^ b) as usize);
                }
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = DecisionTree::fit(&x, &y, 2, &TreeConfig::default(), &mut rng);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), yi);
        }
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = xor_data();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = DecisionTree::fit(&x, &y, 2, &cfg, &mut rng);
        assert_eq!(t.num_nodes(), 1); // a single leaf
    }

    #[test]
    fn single_class_is_a_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1, 1, 1];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = DecisionTree::fit(&x, &y, 3, &TreeConfig::default(), &mut rng);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.predict(&[99.0]), 1);
    }

    #[test]
    fn multiclass_separable() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..4 {
            for k in 0..8 {
                x.push(vec![c as f64 * 10.0 + (k % 3) as f64]);
                y.push(c);
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = DecisionTree::fit(&x, &y, 4, &TreeConfig::default(), &mut rng);
        for (xi, &yi) in x.iter().zip(&y) {
            assert_eq!(t.predict(xi), yi);
        }
    }
}
