//! Random forest (`rf`): bagged CART trees with per-split feature
//! subsampling — the model the paper finds hardest to beat.

use crate::serialize::{ByteReader, ByteWriter};
use crate::tree::{DecisionTree, TreeConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random-forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growing configuration (feature subsampling defaults to √d
    /// when `max_features` is `None`).
    pub tree: TreeConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            tree: TreeConfig::default(),
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits a forest on `(x, y)` with labels in `0..n_classes`.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, config: &ForestConfig) -> RandomForest {
        assert!(!x.is_empty(), "empty training set");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let d = x[0].len();
        let mut tree_cfg = config.tree.clone();
        if tree_cfg.max_features.is_none() {
            tree_cfg.max_features = Some((d as f64).sqrt().ceil() as usize);
        }
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Bootstrap sample.
            let (bx, by): (Vec<Vec<f64>>, Vec<usize>) = (0..x.len())
                .map(|_| {
                    let k = rng.gen_range(0..x.len());
                    (x[k].clone(), y[k])
                })
                .unzip();
            trees.push(DecisionTree::fit(&bx, &by, n_classes, &tree_cfg, &mut rng));
        }
        RandomForest { trees, n_classes }
    }

    /// Majority-vote prediction.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(x)] += 1;
        }
        crate::linalg::argmax_counts(&votes)
    }

    /// Class vote counts for one chunk, walked tree-by-tree over the
    /// whole batch: each tree's nodes stay hot in cache while it scores
    /// every sample, instead of refaulting the full forest per sample.
    /// Votes are integers, so the tally (and the argmax) is identical to
    /// the per-sample loop.
    fn votes_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        let mut votes = vec![0usize; xs.len() * self.n_classes];
        for t in &self.trees {
            for (i, x) in xs.iter().enumerate() {
                votes[i * self.n_classes + t.predict(x)] += 1;
            }
        }
        votes
    }

    /// Labels for one chunk of samples.
    pub(crate) fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        self.votes_chunk(xs)
            .chunks(self.n_classes)
            .map(crate::linalg::argmax_counts)
            .collect()
    }

    /// Vote shares (votes / trees) for one chunk of samples.
    pub(crate) fn proba_chunk(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        let n = self.trees.len() as f64;
        self.votes_chunk(xs)
            .chunks(self.n_classes)
            .map(|row| row.iter().map(|&v| v as f64 / n).collect())
            .collect()
    }

    /// Total node count across trees (a memory proxy).
    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(DecisionTree::num_nodes).sum()
    }

    /// Approximate resident size in bytes (for the paper's Figure 7 memory
    /// comparison): ~40 bytes per tree node.
    pub fn memory_bytes(&self) -> usize {
        self.num_nodes() * 40
    }

    /// Serializes the forest for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        out.put_usize(self.n_classes);
        out.put_usize(self.trees.len());
        for t in &self.trees {
            t.write(out);
        }
    }

    /// Reads a forest back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> RandomForest {
        let n_classes = r.get_usize();
        let n = r.get_usize();
        let trees = (0..n).map(|_| DecisionTree::read(r)).collect();
        RandomForest { trees, n_classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, n_classes: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Deterministic well-separated clusters with mild jitter.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c in 0..n_classes {
            for k in 0..n_per {
                let jitter = (k as f64 * 0.618).fract() - 0.5;
                x.push(vec![c as f64 * 5.0 + jitter, (c % 3) as f64 * 4.0 - jitter]);
                y.push(c);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blobs(20, 5);
        let f = RandomForest::fit(&x, &y, 5, &ForestConfig::default());
        let pred: Vec<usize> = x.iter().map(|xi| f.predict(xi)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.98);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs(10, 3);
        let cfg = ForestConfig {
            n_trees: 7,
            seed: 42,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&x, &y, 3, &cfg);
        let f2 = RandomForest::fit(&x, &y, 3, &cfg);
        let p1: Vec<usize> = x.iter().map(|v| f1.predict(v)).collect();
        let p2: Vec<usize> = x.iter().map(|v| f2.predict(v)).collect();
        assert_eq!(p1, p2);
        assert_eq!(f1.num_nodes(), f2.num_nodes());
    }

    #[test]
    fn more_trees_grow_memory() {
        let (x, y) = blobs(10, 3);
        let small = RandomForest::fit(&x, &y, 3, &ForestConfig { n_trees: 2, ..Default::default() });
        let big = RandomForest::fit(&x, &y, 3, &ForestConfig { n_trees: 20, ..Default::default() });
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
