//! The `mlp` model: SciKit's default-ish multi-layer perceptron — one
//! hidden layer of 100 ReLU units (paper, Section 3.2).

use crate::linalg::Matrix;
use crate::linear::Scaler;
use crate::nn::{Dense, Net, Relu};
use crate::serialize::{ByteReader, ByteWriter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// MLP hyperparameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Hidden width (the paper's mlp uses 100).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 100,
            epochs: 60,
            batch: 32,
            lr: 0.005,
            seed: 0,
        }
    }
}

/// A fitted MLP.
pub struct Mlp {
    net: Net,
    scaler: Scaler,
}

impl Mlp {
    /// Trains the MLP.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, config: &MlpConfig) -> Mlp {
        assert!(!x.is_empty(), "empty training set");
        let scaler = Scaler::fit(x);
        let xs: Vec<Vec<f64>> = x.iter().map(|r| scaler.transform(r)).collect();
        let d = xs[0].len();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut net = Net {
            layers: vec![
                Box::new(Dense::new(d, config.hidden, config.lr, &mut rng)),
                Box::new(Relu),
                Box::new(Dense::new(config.hidden, n_classes, config.lr, &mut rng)),
            ],
            n_classes,
        };
        net.fit(&xs, y, config.epochs, config.batch, config.seed ^ 0x5f5f);
        Mlp { net, scaler }
    }

    /// Predicts one sample, through the same batched forward as
    /// [`Mlp::predict_chunk`] on a one-row chunk.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_chunk(&[x])[0]
    }

    /// Standardizes one chunk into a single matrix for the batched net.
    fn scaled(&self, xs: &[&[f64]]) -> Matrix {
        let rows: Vec<Vec<f64>> = xs.iter().map(|x| self.scaler.transform(x)).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Matrix::from_rows(&refs)
    }

    /// Labels for one chunk of samples via the batched GEMM forward.
    pub(crate) fn predict_chunk(&self, xs: &[&[f64]]) -> Vec<usize> {
        if xs.is_empty() {
            return Vec::new();
        }
        self.net.predict_rows(self.scaled(xs))
    }

    /// Softmax probabilities for one chunk of samples.
    pub(crate) fn proba_chunk(&self, xs: &[&[f64]]) -> Vec<Vec<f64>> {
        if xs.is_empty() {
            return Vec::new();
        }
        self.net.proba_rows(self.scaled(xs))
    }

    /// Raw parts — `(scaler, net)` — for the reduced-precision `lowp`
    /// classifiers to narrow (they walk the net's dense layers through
    /// [`crate::nn::Layer::dense_params`]).
    pub(crate) fn lowp_parts(&self) -> (&Scaler, &Net) {
        (&self.scaler, &self.net)
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.net.num_params() * 8 * 3 // weights + Adam moments
    }

    /// Serializes the fitted MLP for the model store.
    pub fn write(&self, out: &mut ByteWriter) {
        self.net.write(out);
        self.scaler.write(out);
    }

    /// Reads a fitted MLP back from a model-store blob.
    pub fn read(r: &mut ByteReader) -> Mlp {
        Mlp {
            net: Net::read(r),
            scaler: Scaler::read(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_nonlinear_labels() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for k in 0..120 {
            let a = (k as f64 * 0.21).sin() * 3.0;
            let b = (k as f64 * 0.13).cos() * 3.0;
            x.push(vec![a, b]);
            y.push(usize::from(a * b > 0.0));
        }
        let cfg = MlpConfig {
            epochs: 150,
            ..Default::default()
        };
        let m = Mlp::fit(&x, &y, 2, &cfg);
        let pred: Vec<usize> = x.iter().map(|v| m.predict(v)).collect();
        assert!(crate::metrics::accuracy(&pred, &y) > 0.9);
    }

    #[test]
    fn memory_tracks_width() {
        let x = vec![vec![1.0, 2.0]; 8];
        let y = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let small = Mlp::fit(&x, &y, 2, &MlpConfig { hidden: 10, epochs: 1, ..Default::default() });
        let big = Mlp::fit(&x, &y, 2, &MlpConfig { hidden: 200, epochs: 1, ..Default::default() });
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
